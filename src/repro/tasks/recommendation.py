"""Top-N recommendation evaluation (paper Section 6.3).

Protocol, mirrored from the paper:

1. Apply the 10-core setting and split edges 60/40 into train/test.
2. Fit an embedding method on the training graph.
3. Per user, the ground-truth list ranks the user's *test* neighbors by
   held-out edge weight; the recommendation list ranks all items by the
   embedding dot product ``U[u] . V[v]``, excluding items the user already
   interacted with in training.
4. Report F1, NDCG and MRR at N, macro-averaged over users.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..core.base import BipartiteEmbedder, EmbeddingResult
from ..graph import BipartiteGraph, k_core
from ..linalg.policy import DtypePolicy
from ..metrics import RankingScores
from .splits import EdgeSplit, split_edges
from .topk import TopKEngine

__all__ = [
    "RecommendationTask",
    "RecommendationReport",
    "ground_truth_lists",
    "recommend_top_n",
    "evaluate_recommendation",
]


@dataclass(frozen=True)
class RecommendationReport:
    """Scores of one method on one recommendation workload."""

    method: str
    n: int
    f1: float
    ndcg: float
    mrr: float
    precision: float
    recall: float
    num_users: int
    elapsed_seconds: float
    #: Wall time spent producing recommendation lists (GEMM scoring, masking,
    #: selection).  Separate from ``metrics_seconds`` so the serving-path
    #: speedup is visible without the metric arithmetic diluting it.
    scoring_seconds: float = 0.0
    #: Wall time spent accumulating F1/NDCG/MRR over the produced lists.
    metrics_seconds: float = 0.0

    def row(self) -> str:
        """A Table-4-style text row."""
        return (
            f"{self.method:<22} F1={self.f1:.3f}  NDCG={self.ndcg:.3f}  "
            f"MRR={self.mrr:.3f}  ({self.elapsed_seconds:.2f}s fit, "
            f"{self.scoring_seconds:.2f}s score)"
        )


def ground_truth_lists(split: EdgeSplit) -> Dict[int, List[int]]:
    """Per-user ground truth: test neighbors ranked by held-out weight.

    One lexsort over the test edges — keys ``(user, -weight, item)`` with the
    item id breaking weight ties — then one split at the user boundaries.
    Equivalent to sorting each user's ``(weight, item)`` pairs by
    ``(-weight, item)``, without the per-user Python loop.
    """
    test_u = np.asarray(split.test_u, dtype=np.int64)
    if test_u.size == 0:
        return {}
    test_v = np.asarray(split.test_v, dtype=np.int64)
    test_w = np.asarray(split.test_w, dtype=np.float64)
    order = np.lexsort((test_v, -test_w, test_u))
    sorted_u = test_u[order]
    sorted_v = test_v[order]
    boundaries = np.nonzero(np.diff(sorted_u))[0] + 1
    groups = np.split(sorted_v, boundaries)
    users = sorted_u[np.concatenate(([0], boundaries))]
    return {int(u): group.tolist() for u, group in zip(users, groups)}


def recommend_top_n(
    result: EmbeddingResult,
    train: BipartiteGraph,
    user: int,
    n: int,
) -> List[int]:
    """Top-N items for ``user`` by embedding score, excluding train edges."""
    return result.top_items(user, n, exclude=train.u_neighbors(user)).tolist()


def evaluate_recommendation(
    result: EmbeddingResult,
    split: EdgeSplit,
    n: int = 10,
    *,
    batched: bool = True,
    block_rows: Optional[int] = None,
    policy: Optional[DtypePolicy] = None,
) -> RecommendationReport:
    """Score fitted embeddings against a recommendation split.

    With ``batched`` (the default) recommendation lists come from the
    :class:`~repro.tasks.topk.TopKEngine` streaming read-out: users with test
    edges are scored ``block_rows`` at a time and each block's metrics are
    accumulated before the next block is produced, so peak extra memory is
    one block's score buffer — the full ``users x items`` matrix is never
    materialized.  ``batched=False`` selects the per-user reference path
    (pinned equal by the differential suite).  Either way the report splits
    ``scoring_seconds`` (producing the lists) from ``metrics_seconds``
    (F1/NDCG/MRR accumulation); ``elapsed_seconds`` remains the fit time.
    """
    truths = ground_truth_lists(split)
    scores = RankingScores()
    scoring_seconds = 0.0
    metrics_seconds = 0.0
    if batched:
        users = np.fromiter(truths.keys(), dtype=np.int64, count=len(truths))
        engine = TopKEngine.from_result(
            result, policy=policy, block_rows=block_rows
        )
        blocks = engine.iter_top_items(n, users=users, exclude=split.train)
        while True:
            started = time.perf_counter()
            block = next(blocks, None)
            scoring_seconds += time.perf_counter() - started
            if block is None:
                break
            block_users, items = block
            started = time.perf_counter()
            scores.update_batch(
                items.tolist(), [truths[int(u)] for u in block_users]
            )
            metrics_seconds += time.perf_counter() - started
    else:
        for user, truth in truths.items():
            started = time.perf_counter()
            recommended = recommend_top_n(result, split.train, user, n)
            scoring_seconds += time.perf_counter() - started
            started = time.perf_counter()
            scores.update(recommended, truth)
            metrics_seconds += time.perf_counter() - started
    summary = scores.summary()
    return RecommendationReport(
        method=result.method,
        n=n,
        f1=summary["f1"],
        ndcg=summary["ndcg"],
        mrr=summary["mrr"],
        precision=summary["precision"],
        recall=summary["recall"],
        num_users=scores.num_users,
        elapsed_seconds=result.elapsed_seconds,
        scoring_seconds=scoring_seconds,
        metrics_seconds=metrics_seconds,
    )


class RecommendationTask:
    """A reusable recommendation workload: core-filter once, split once.

    Parameters
    ----------
    graph:
        The full weighted interaction graph.
    n:
        Recommendation list length (paper default 10).
    train_fraction:
        Training share of edges (paper uses 0.6).
    core:
        The k-core threshold (paper uses 10; lower fits small synthetic
        graphs).
    seed:
        Controls the split; fixed per task so every method sees the same
        train/test partition.
    block_rows:
        Users per scoring block for the batched evaluation read-out
        (``None``: the engine default).
    """

    def __init__(
        self,
        graph: BipartiteGraph,
        *,
        n: int = 10,
        train_fraction: float = 0.6,
        core: int = 10,
        seed: Optional[int] = 0,
        block_rows: Optional[int] = None,
    ):
        if core > 0:
            graph = k_core(graph, core)
        if graph.num_u == 0 or graph.num_v == 0:
            raise ValueError("k-core filtering removed every node; lower `core`")
        self.graph = graph
        self.n = n
        self.block_rows = block_rows
        self.split = split_edges(graph, train_fraction, seed=seed)

    def run(self, method: BipartiteEmbedder) -> RecommendationReport:
        """Fit ``method`` on the training graph and evaluate top-N quality."""
        result = method.fit(self.split.train)
        return evaluate_recommendation(
            result, self.split, self.n, block_rows=self.block_rows
        )
