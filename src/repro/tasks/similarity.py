"""Blocked multi-source matrix-free MHS/MHP similarity queries.

The dense measures in :mod:`repro.core.measures` materialize ``H`` and
``P`` and stop at test-sized graphs; :class:`~repro.core.queries.MeasureQueries`
answers single rows exactly but allocates per call and never ranks.  This
module turns the same identities into a served query class:

* ``H[u, :] = H e_u``            (``H`` is symmetric, Eq. 3),
* ``P[u, :] = (H e_u)^T W``      (Eq. 5),
* ``s(u, :) = H[u, :] * scale[u] * scale``  with ``scale = diag(H)^{-1/2}``
  (Eq. 4; the diagonal is computed exactly once by blocked probing).

A *block* of one-hot sources becomes one PMF-weighted sparse-chain apply
through the workspace-reusing kernels (`GramKernel.pmf_apply` under the
engine's :class:`~repro.linalg.policy.DtypePolicy`), so a batch of ``b``
queries costs one ``O(tau |E| b)`` apply instead of ``b`` separate ones.
Columns evolve independently through the hop recurrence, so every per-source
row is bit-identical at every thread count and block size, and ranking goes
through the shared :func:`~repro.core.selection.select_topn` — lists are
fully lexicographic and element-identical to the dense reference.

Both same-side (MHS, ``mode="mhs"``) and opposite-side (MHP, ``mode="mhp"``)
neighbor rankings are supported; V-side sources run the engine over
:func:`transposed_graph`, which also handles store-backed (mmap) graphs via
the store's ``v2u`` orientation.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from ..core.pmf import PathLengthPMF
from ..core.preprocess import normalize_weights
from ..core.selection import select_topn
from ..graph import BipartiteGraph, StoreBackedGraph
from ..linalg import DtypePolicy, ProximityOperator
from ..obs import active as _obs_active

__all__ = [
    "DEFAULT_BLOCK_SOURCES",
    "SIMILARITY_MODES",
    "SimilarityEngine",
    "transposed_graph",
]

#: Default width of the one-hot source blocks (matches the top-k engine's
#: sweet spot: wide enough to amortize the sparse-chain setup, small enough
#: to keep the ``|U| x b`` workspace resident).
DEFAULT_BLOCK_SOURCES = 64

#: Supported neighbor rankings: same-side (Eq. 4) and opposite-side (Eq. 5).
SIMILARITY_MODES = ("mhs", "mhp")

GraphLike = Union[BipartiteGraph, StoreBackedGraph]


def transposed_graph(graph: GraphLike) -> GraphLike:
    """The V-side view of ``graph`` (sources become V-nodes).

    Resident graphs transpose in place; store-backed graphs reuse the
    store's ``v2u`` orientation so the flip stays memory-mapped.
    """
    if isinstance(graph, StoreBackedGraph):
        return StoreBackedGraph(graph.store, graph.store.csr("v2u"))
    return graph.transpose()


class SimilarityEngine:
    """Blocked multi-source matrix-free MHS/MHP top-k queries on one graph.

    Parameters
    ----------
    graph:
        The bipartite graph (resident or store-backed).  Sources are always
        U-side indices of *this* graph; pass :func:`transposed_graph` for
        V-side sources.
    pmf, tau:
        Instantiation and truncation of the underlying ``H`` series.
    normalization:
        Weight preprocessing (``"none"`` reproduces the raw Eq. 3-5
        definitions and matches the dense reference measures).
    policy:
        Dtype/kernel/thread policy; ``None`` means the default (float64,
        workspace-reusing kernels, bit-identical to the reference path).
    block_sources:
        Internal width of the one-hot blocks.  Any number of sources is
        accepted; they are chunked to this width.  Per-source results do
        not depend on the chunking.
    """

    def __init__(
        self,
        graph: GraphLike,
        pmf: PathLengthPMF,
        tau: int,
        *,
        normalization: str = "none",
        policy: Optional[DtypePolicy] = None,
        block_sources: int = DEFAULT_BLOCK_SOURCES,
    ):
        if tau < 0:
            raise ValueError("tau must be non-negative")
        if block_sources < 1:
            raise ValueError("block_sources must be >= 1")
        self.graph = graph
        self.pmf = pmf
        self.tau = int(tau)
        self.normalization = normalization
        self.policy = policy if policy is not None else DtypePolicy()
        self.block_sources = int(block_sources)
        self._w = normalize_weights(graph, normalization)
        self._weights = np.asarray(pmf.weights(tau), dtype=np.float64)
        # One ProximityOperator supplies both applies, so MHS and MHP share a
        # single GramKernel workspace and every op is counted at the linalg
        # layer: `_h.matmat` is the H-apply (GramKernel.pmf_apply counts its
        # 2*tau matvecs per column), `.T @ block` is W^T (H block) with the
        # extra W^T matvec counted by the operator itself.
        self._proximity = ProximityOperator(self._w, self._weights, policy=self.policy)
        self._operator = self._proximity._h
        self._onehot: Optional[np.ndarray] = None
        self._diag: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def num_u(self) -> int:
        """Number of source-side nodes."""
        return int(self._operator.w.shape[0])

    @property
    def num_v(self) -> int:
        """Number of opposite-side nodes."""
        return int(self._operator.w.shape[1])

    def clone_for_worker(self) -> "SimilarityEngine":
        """A clone for another thread: shared W/weights/diagonal, own buffers.

        The sparse matrix, PMF weights, and (if already computed) the exact
        H diagonal are shared read-only; the kernel workspaces and the
        one-hot block buffer are per-clone, so clones never contend.
        """
        clone = SimilarityEngine.__new__(SimilarityEngine)
        clone.graph = self.graph
        clone.pmf = self.pmf
        clone.tau = self.tau
        clone.normalization = self.normalization
        clone.policy = self.policy
        clone.block_sources = self.block_sources
        clone._w = self._w
        clone._weights = self._weights
        clone._proximity = ProximityOperator(
            self._operator.w, self._weights, policy=self.policy
        )
        clone._operator = clone._proximity._h
        clone._onehot = None
        clone._diag = self._diag
        return clone

    # ------------------------------------------------------------------
    # Row queries (blocked)
    # ------------------------------------------------------------------
    def _check_sources(self, sources: Sequence[int]) -> np.ndarray:
        arr = np.atleast_1d(np.asarray(sources, dtype=np.int64)).ravel()
        if arr.size and (arr.min() < 0 or arr.max() >= self.num_u):
            bad = arr[(arr < 0) | (arr >= self.num_u)][0]
            raise IndexError(f"source index {bad} out of range [0, {self.num_u})")
        return arr

    def _one_hot_block(self, sources: np.ndarray) -> np.ndarray:
        """A reused ``|U| x b`` one-hot block for ``sources`` (grow-once)."""
        b = sources.size
        width = max(b, self.block_sources)
        if self._onehot is None or self._onehot.shape[1] < b:
            self._onehot = np.zeros((self.num_u, width), dtype=np.float64)
            _obs_active().note_array(self._onehot.nbytes)
        block = self._onehot[:, :b]
        block.fill(0.0)
        block[sources, np.arange(b)] = 1.0
        return block

    def _blocks(self, sources: np.ndarray):
        for lo in range(0, sources.size, self.block_sources):
            yield lo, sources[lo : lo + self.block_sources]

    def h_rows(self, sources: Sequence[int]) -> np.ndarray:
        """Exact rows ``H[sources, :]``, shape ``(len(sources), |U|)``.

        One blocked PMF-weighted apply per ``block_sources`` chunk; ``H`` is
        symmetric, so the apply's columns *are* the requested rows.
        """
        sources = self._check_sources(sources)
        out = np.empty((sources.size, self.num_u), dtype=np.float64)
        for lo, chunk in self._blocks(sources):
            h = self._operator.matmat(self._one_hot_block(chunk))
            out[lo : lo + chunk.size] = h.T
        return out

    def mhp_rows(self, sources: Sequence[int]) -> np.ndarray:
        """Exact MHP rows ``P[sources, :]``, shape ``(len(sources), |V|)``.

        Evaluated as ``(P^T E)^T = (W^T (H E))^T`` against the one-hot block
        ``E`` — the transposed proximity operator's apply, which reuses the
        same workspace as :meth:`h_rows` and counts its ops identically.
        """
        sources = self._check_sources(sources)
        out = np.empty((sources.size, self.num_v), dtype=np.float64)
        for lo, chunk in self._blocks(sources):
            p = self._proximity.T @ self._one_hot_block(chunk)
            out[lo : lo + chunk.size] = p.T
        return out

    def mhs_rows(
        self, sources: Sequence[int], *, exclude_self: bool = False
    ) -> np.ndarray:
        """Exact MHS rows ``s(sources, :)`` via Eq. (4)'s diagonal scaling.

        Scaling replicates the dense reference's elementwise order
        (``(h * scale[u]) * scale``), and the self-similarity is pinned to
        1.0 per Lemma 2.1(ii) — or masked to ``-inf`` when ``exclude_self``
        so rankings skip the trivial self match.
        """
        sources = self._check_sources(sources)
        h = self.h_rows(sources)
        diag = self.h_diagonal()
        scale = np.zeros_like(diag)
        positive = diag > 0
        scale[positive] = 1.0 / np.sqrt(diag[positive])
        rows = (h * scale[sources][:, None]) * scale[None, :]
        own = 1.0 if not exclude_self else -np.inf
        rows[np.arange(sources.size), sources] = own
        return rows

    # ------------------------------------------------------------------
    # Diagonal
    # ------------------------------------------------------------------
    def h_diagonal(self, block_size: int = 64, *, seed: Optional[int] = None) -> np.ndarray:
        """Exact diagonal of ``H``, computed by blocked probing and cached.

        ``ceil(|U| / block_size)`` one-hot applies of width ``block_size``.
        Every diagonal entry comes from its own one-hot column, and columns
        evolve independently through the hop recurrence — the result is
        bit-identical for every ``block_size``, probe order, and thread
        count.  ``seed`` fixes the probe-block *schedule* (a seeded
        permutation of the blocks); it exists so the schedule is
        reproducible under randomized probing policies, not because the
        values depend on it.
        """
        if self._diag is None:
            if block_size < 1:
                raise ValueError("block_size must be >= 1")
            n = self.num_u
            diagonal = np.empty(n, dtype=np.float64)
            starts = np.arange(0, n, block_size)
            if seed is not None:
                starts = np.random.default_rng(seed).permutation(starts)
            for start in starts:
                stop = min(int(start) + block_size, n)
                chunk = np.arange(start, stop, dtype=np.int64)
                block = self._one_hot_block(chunk)
                result = self._operator.matmat(block)
                diagonal[chunk] = result[chunk, np.arange(chunk.size)]
            self._diag = diagonal
        return self._diag

    # ------------------------------------------------------------------
    # Top-k queries
    # ------------------------------------------------------------------
    def top_same(
        self,
        sources: Sequence[int],
        n: int,
        *,
        exclude_self: bool = True,
        with_scores: bool = False,
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Top-``n`` same-side neighbors per source, ranked by MHS.

        Returns ``(indices, scores)`` with shape ``(len(sources), n)``;
        ``scores`` is ``None`` unless ``with_scores``.  Lists are fully
        lexicographic (score descending, index ascending) via
        :func:`select_topn` and element-identical to ranking the dense
        ``mhs_matrix`` rows.
        """
        scores = self.mhs_rows(sources, exclude_self=exclude_self)
        items = select_topn(scores, n)
        if not with_scores:
            return items, None
        return items, np.take_along_axis(scores, items, axis=1)

    def top_opposite(
        self,
        sources: Sequence[int],
        n: int,
        *,
        with_scores: bool = False,
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Top-``n`` opposite-side neighbors per source, ranked by MHP."""
        scores = self.mhp_rows(sources)
        items = select_topn(scores, n)
        if not with_scores:
            return items, None
        return items, np.take_along_axis(scores, items, axis=1)

    def query(
        self,
        sources: Sequence[int],
        n: int,
        *,
        mode: str = "mhs",
        exclude_self: bool = True,
        with_scores: bool = False,
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Mode-dispatching top-``n`` query (``"mhs"`` or ``"mhp"``)."""
        if mode == "mhs":
            return self.top_same(
                sources, n, exclude_self=exclude_self, with_scores=with_scores
            )
        if mode == "mhp":
            return self.top_opposite(sources, n, with_scores=with_scores)
        raise ValueError(f"unknown similarity mode {mode!r}; expected one of "
                         f"{SIMILARITY_MODES}")

    # ------------------------------------------------------------------
    # Cost accounting
    # ------------------------------------------------------------------
    def matvecs_per_source(self, mode: str = "mhs") -> int:
        """Sparse matvecs one source costs: ``2*tau`` hops (+1 for MHP)."""
        if mode not in SIMILARITY_MODES:
            raise ValueError(f"unknown similarity mode {mode!r}; expected one of "
                             f"{SIMILARITY_MODES}")
        hops = 2 * (self._weights.size - 1)
        return hops + 1 if mode == "mhp" else hops

    def diagonal_matvecs(self) -> int:
        """Sparse matvecs the one-time exact-diagonal probe costs."""
        return 2 * (self._weights.size - 1) * self.num_u

    def workspace_bytes(self) -> int:
        """Reusable-buffer bytes held by this engine (kernels + one-hot)."""
        total = 0
        kernel = self._operator._kernel
        if kernel is not None:
            total += kernel.workspace_bytes()
        if self._onehot is not None:
            total += self._onehot.nbytes
        return total
