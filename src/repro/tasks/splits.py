"""Train/test edge splitting and negative sampling.

Implements the paper's two evaluation protocols:

* **Recommendation split** (Section 6.3) — 60% of edges for training, 40%
  held out as ground truth, after 10-core filtering.
* **Link-prediction split** (Section 6.4) — remove 40% of the edges to form
  a residual training graph, and pair the removed edges with an equal number
  of sampled non-edges as negatives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp

from ..graph import BipartiteGraph

__all__ = ["EdgeSplit", "split_edges", "sample_negative_edges", "LinkPredictionData", "link_prediction_split"]


@dataclass(frozen=True)
class EdgeSplit:
    """A train/test partition of a graph's edges.

    Attributes
    ----------
    train:
        Residual graph containing only the training edges (same node sets).
    test_u, test_v, test_w:
        Parallel arrays describing the held-out edges.
    """

    train: BipartiteGraph
    test_u: np.ndarray
    test_v: np.ndarray
    test_w: np.ndarray

    @property
    def num_test_edges(self) -> int:
        return self.test_u.size


def split_edges(
    graph: BipartiteGraph,
    train_fraction: float = 0.6,
    *,
    seed: Optional[int] = None,
) -> EdgeSplit:
    """Randomly partition edges into train/test (paper uses 60/40).

    The node sets are unchanged — test edges are zeroed out of the weight
    matrix, so nodes can become isolated in the training graph (as in the
    paper's protocol, embeddings must still be produced for them).
    """
    if not 0.0 < train_fraction < 1.0:
        raise ValueError("train_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    u_idx, v_idx, weights = graph.edge_array()
    order = rng.permutation(u_idx.size)
    num_train = int(round(train_fraction * u_idx.size))
    train_sel = order[:num_train]
    test_sel = order[num_train:]

    train_w = sp.coo_matrix(
        (weights[train_sel], (u_idx[train_sel], v_idx[train_sel])),
        shape=graph.w.shape,
    ).tocsr()
    train = BipartiteGraph(train_w, u_labels=graph.u_labels, v_labels=graph.v_labels)
    return EdgeSplit(
        train=train,
        test_u=u_idx[test_sel],
        test_v=v_idx[test_sel],
        test_w=weights[test_sel],
    )


def sample_negative_edges(
    graph: BipartiteGraph,
    count: int,
    *,
    seed: Optional[int] = None,
    exclude: Optional[Tuple[np.ndarray, np.ndarray]] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample ``count`` distinct node pairs that are NOT edges of ``graph``.

    Parameters
    ----------
    graph:
        The *full* graph (train + test edges) whose non-edges are sampled.
    count:
        Number of negatives; must leave room given the graph density.
    exclude:
        Extra ``(u_idx, v_idx)`` pairs to avoid (e.g. already-sampled sets).

    Returns
    -------
    (u_idx, v_idx):
        Parallel arrays of the sampled non-edges.
    """
    possible = graph.num_u * graph.num_v - graph.num_edges
    if count > possible:
        raise ValueError(f"cannot sample {count} negatives; only {possible} non-edges")
    rng = np.random.default_rng(seed)
    forbidden = set(zip(*graph.edge_array()[:2]))
    if exclude is not None:
        forbidden |= set(zip(np.asarray(exclude[0]), np.asarray(exclude[1])))

    out_u: list = []
    out_v: list = []
    seen: set = set()
    while len(out_u) < count:
        batch = max(256, int((count - len(out_u)) * 1.5))
        cand_u = rng.integers(0, graph.num_u, size=batch)
        cand_v = rng.integers(0, graph.num_v, size=batch)
        for i, j in zip(cand_u, cand_v):
            key = (int(i), int(j))
            if key in forbidden or key in seen:
                continue
            seen.add(key)
            out_u.append(key[0])
            out_v.append(key[1])
            if len(out_u) == count:
                break
    return np.asarray(out_u, dtype=np.int64), np.asarray(out_v, dtype=np.int64)


@dataclass(frozen=True)
class LinkPredictionData:
    """Everything needed to run the paper's link-prediction protocol.

    ``train`` is the residual graph methods are fit on.  The test set mixes
    the removed edges (label 1) with an equal number of non-edges (label 0).
    ``train_pos_u/v`` are the surviving training edges, used with sampled
    training negatives to fit the downstream classifier.
    """

    train: BipartiteGraph
    test_u: np.ndarray
    test_v: np.ndarray
    test_labels: np.ndarray
    train_pos_u: np.ndarray
    train_pos_v: np.ndarray
    train_neg_u: np.ndarray
    train_neg_v: np.ndarray


def link_prediction_split(
    graph: BipartiteGraph,
    holdout_fraction: float = 0.4,
    *,
    seed: Optional[int] = None,
) -> LinkPredictionData:
    """Build the Section 6.4 link-prediction split.

    Removes ``holdout_fraction`` of the edges, samples the same number of
    negative test pairs, and also samples training negatives (one per
    surviving positive edge) for classifier fitting.  All sampled negative
    sets are disjoint from the full edge set and from each other.
    """
    rng = np.random.default_rng(seed)
    split = split_edges(graph, 1.0 - holdout_fraction, seed=int(rng.integers(2**31)))
    num_test = split.num_test_edges
    neg_u, neg_v = sample_negative_edges(
        graph, num_test, seed=int(rng.integers(2**31))
    )
    test_u = np.concatenate([split.test_u, neg_u])
    test_v = np.concatenate([split.test_v, neg_v])
    test_labels = np.concatenate(
        [np.ones(num_test), np.zeros(num_test)]
    )

    train_pos_u, train_pos_v, _ = split.train.edge_array()
    train_neg_u, train_neg_v = sample_negative_edges(
        graph,
        train_pos_u.size,
        seed=int(rng.integers(2**31)),
        exclude=(neg_u, neg_v),
    )
    return LinkPredictionData(
        train=split.train,
        test_u=test_u,
        test_v=test_v,
        test_labels=test_labels,
        train_pos_u=train_pos_u,
        train_pos_v=train_pos_v,
        train_neg_u=train_neg_u,
        train_neg_v=train_neg_v,
    )
