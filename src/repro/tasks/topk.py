"""Batched top-k retrieval over fitted embeddings (the serving path).

Training reads the graph once; a recommendation service reads the
*embeddings* forever.  The paper's Top-N protocol (Section 6.3) and every
factorization-style baseline share the same read-out shape: score one side's
embedding rows against the whole other side (``U[u] . V[v]``), hide the
training edges, keep the best ``n``.  Done one user at a time that is one
GEMV plus one partial sort per user — the Python and BLAS call overhead
dwarfs the arithmetic at scale.

:class:`TopKEngine` is the batched engine:

* **Blocked GEMM scoring** — users are scored ``block_rows`` at a time with
  one ``U_block @ V.T`` product per block, column-sharded across the thread
  pool of :mod:`repro.linalg.parallel` when the configured
  :class:`~repro.linalg.DtypePolicy`'s executor allows (``--threads`` and
  ``REPRO_NUM_THREADS`` apply exactly as they do to the training kernels).
  Each output element is one whole ``k``-dot regardless of sharding, so the
  thread count never changes which items win.
* **CSR exclusion masking** — training edges are masked per block straight
  from the graph's ``indptr``/``indices`` arrays with one vectorized
  gather, not one ``u_neighbors`` call per user.
* **Deterministic selection** — items are kept with
  :func:`~repro.core.selection.select_topn`, the same primitive the
  per-user :meth:`~repro.core.base.EmbeddingResult.top_items` path uses, so
  batch and per-user lists are element-for-element identical (pinned by the
  differential suite in ``tests/test_topk.py``).
* **Bounded memory** — results stream block by block; the full
  ``num_users x num_items`` score matrix is never materialized.  Peak extra
  memory is one reusable ``block_rows x num_items`` score buffer (reported
  through the obs workspace watermark) plus selection temporaries of the
  same block footprint.

Observability: every block reports one GEMM (``count_gemm``) and its
scored-candidate coverage (``count_topk``) to the active collector; the
score buffer feeds the workspace watermark.  Counting happens once per
logical block in the calling thread — worker threads never touch the
collector.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple, Union

import numpy as np

from ..core.quantize import QUANT_DTYPES, dequantize_columns
from ..core.selection import select_topn
from ..graph import BipartiteGraph
from ..linalg.parallel import ParallelExecutor, column_shards
from ..linalg.policy import DtypePolicy
from ..obs import active as _obs_active

__all__ = [
    "TopKEngine",
    "QuantizedTopKEngine",
    "DEFAULT_BLOCK_ROWS",
    "neighbor_items",
]

#: Default users-per-GEMM.  256 rows keep the score buffer in the tens of
#: megabytes even for ~10^4 items while amortizing per-block Python and
#: BLAS dispatch overhead; see docs/SERVING.md for the measured tuning curve.
DEFAULT_BLOCK_ROWS = 256


def neighbor_items(graph: BipartiteGraph, user: int) -> np.ndarray:
    """The item ids adjacent to ``user`` — one CSR ``indptr`` slice.

    The per-user complement of :meth:`TopKEngine._mask_exclusions`: the ANN
    rerank (:mod:`repro.ann.ivf`) and the sharded merge work on candidate
    *subsets*, where a flat neighbor array to ``isin`` against beats a
    dense block mask.  Returned ascending (CSR column order), int64.
    """
    indptr = graph.w.indptr
    return graph.w.indices[indptr[user] : indptr[user + 1]].astype(np.int64)


class TopKEngine:
    """Batched ``U_block @ V.T`` scoring with masking and top-n selection.

    Parameters
    ----------
    u, v:
        The two embedding matrices (``|U| x k`` and ``|V| x k``), typically
        ``result.u`` / ``result.v`` of an
        :class:`~repro.core.base.EmbeddingResult` (see :meth:`from_result`).
        Cast once to the policy's compute dtype at construction.
    policy:
        The :class:`~repro.linalg.DtypePolicy` governing compute dtype,
        workspace reuse, and the executor's thread count (``None``: default
        policy — float64, workspace reuse, ``REPRO_NUM_THREADS`` threads).
    block_rows:
        Users scored per GEMM (``None``: :data:`DEFAULT_BLOCK_ROWS`).

    Notes
    -----
    With workspace reuse on (the policy default) the score buffer is grown
    once and overwritten by every block, so score views yielded by
    :meth:`iter_top_items` are only valid until the next block is produced —
    the standard streaming contract.  ``policy.workspace=False`` selects the
    allocation-per-block reference path (the bench A/B lever).

    **A single engine instance must not be shared across threads.**  The
    grow-once score workspace is overwritten by every block, so two threads
    scoring through one instance race on the buffer between scoring and
    selection and can hand each other's scores to ``select_topn`` (pinned by
    ``tests/test_serve_service.py``).  Concurrent callers — the serving tier
    in :mod:`repro.serve` — take one :meth:`clone_for_worker` per thread:
    clones share the immutable embedding arrays (no copy) but own their
    workspace.
    """

    def __init__(
        self,
        u: np.ndarray,
        v: np.ndarray,
        *,
        policy: Optional[DtypePolicy] = None,
        block_rows: Optional[int] = None,
    ):
        self.policy = policy if policy is not None else DtypePolicy()
        self.dtype = self.policy.compute_dtype
        u = np.asarray(u)
        v = np.asarray(v)
        if u.ndim != 2 or v.ndim != 2:
            raise ValueError("embeddings must be 2-D matrices")
        if u.shape[1] != v.shape[1]:
            raise ValueError(
                f"dimension mismatch: u is {u.shape}, v is {v.shape}"
            )
        if block_rows is None:
            block_rows = DEFAULT_BLOCK_ROWS
        if block_rows < 1:
            raise ValueError(f"block_rows must be >= 1, got {block_rows}")
        self.block_rows = int(block_rows)
        self._u = np.ascontiguousarray(u, dtype=self.dtype)
        # V.T staged C-contiguous once so every block GEMM streams it in
        # column-major-free layout; column shards slice it without copying.
        self._vt = np.ascontiguousarray(self._as_dtype(v).T)
        self._exec = ParallelExecutor(self.policy.exec_policy)
        self._scores_flat: Optional[np.ndarray] = None
        self.threads_used = 1

    def _as_dtype(self, block: np.ndarray) -> np.ndarray:
        return np.asarray(block, dtype=self.dtype)

    @classmethod
    def from_result(
        cls,
        result,
        *,
        policy: Optional[DtypePolicy] = None,
        block_rows: Optional[int] = None,
    ) -> "TopKEngine":
        """An engine over ``result.u`` / ``result.v`` (duck-typed)."""
        return cls(result.u, result.v, policy=policy, block_rows=block_rows)

    def clone_for_worker(self) -> "TopKEngine":
        """A worker-private engine sharing this engine's embedding arrays.

        The clone aliases the read-only ``U`` and staged ``V.T`` matrices —
        zero copy, so per-thread clones cost only the (lazily grown) score
        workspace — but owns a fresh workspace and executor handle.  This is
        the supported way to score concurrently: one clone per thread, never
        one shared instance (see the class notes on the workspace race).
        """
        clone = type(self).__new__(type(self))
        clone.policy = self.policy
        clone.dtype = self.dtype
        clone.block_rows = self.block_rows
        clone._u = self._u
        clone._vt = self._vt
        clone._exec = ParallelExecutor(self.policy.exec_policy)
        clone._scores_flat = None
        clone.threads_used = 1
        return clone

    # ------------------------------------------------------------------
    # Shapes and buffers
    # ------------------------------------------------------------------
    @property
    def num_users(self) -> int:
        """Rows of the U-side embedding."""
        return self._u.shape[0]

    @property
    def num_items(self) -> int:
        """Rows of the V-side embedding (the candidate set size)."""
        return self._vt.shape[1]

    @property
    def dimension(self) -> int:
        """The embedding dimensionality ``k``."""
        return self._u.shape[1]

    def workspace_bytes(self) -> int:
        """Bytes held in the reusable score buffer (0 before first use)."""
        return 0 if self._scores_flat is None else self._scores_flat.nbytes

    def resident_bytes(self) -> int:
        """Process-resident bytes this engine pins: staged arrays + workspace.

        Memory-mapped inputs are excluded — their pages live in the shared
        OS page cache, which is exactly the point of the quantized
        memory-mapped artifact tier (``/metrics`` reports this number as
        ``bytes_resident``).
        """

        def _nbytes(array: Optional[np.ndarray]) -> int:
            if array is None or isinstance(array, np.memmap):
                return 0
            return array.nbytes

        return _nbytes(self._u) + _nbytes(self._vt) + self.workspace_bytes()

    def _score_buffer(self, rows: int) -> np.ndarray:
        """A C-contiguous ``rows x num_items`` score block."""
        needed = rows * self.num_items
        if not self.policy.workspace:
            return np.empty((rows, self.num_items), dtype=self.dtype)
        if self._scores_flat is None or self._scores_flat.size < needed:
            self._scores_flat = np.empty(
                self.block_rows * self.num_items, dtype=self.dtype
            )
            _obs_active().note_array(self._scores_flat.nbytes)
        return self._scores_flat[:needed].reshape(rows, self.num_items)

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def _score_into(self, u_block: np.ndarray, out: np.ndarray) -> None:
        """``out[...] = u_block @ V.T``, column-sharded across the executor.

        Shards partition the *output columns*; every element is one whole
        ``k``-length dot product either way, so sharding affects wall time
        only.  ``np.matmul`` releases the GIL inside BLAS, which is what
        makes the thread pool effective here.
        """
        rows, k = u_block.shape
        m = self.num_items
        n_shards = self._exec.shards_for(rows * k * m, m)
        if n_shards == 1:
            np.matmul(u_block, self._vt, out=out)
            return
        self.threads_used = max(self.threads_used, n_shards)
        self._exec.run(
            [
                (
                    lambda lo=lo, hi=hi: np.matmul(
                        u_block, self._vt[:, lo:hi], out=out[:, lo:hi]
                    )
                )
                for lo, hi in column_shards(m, n_shards)
            ]
        )

    @staticmethod
    def _mask_exclusions(
        scores: np.ndarray, users: np.ndarray, graph: BipartiteGraph
    ) -> None:
        """Set ``scores[i, j] = -inf`` for every edge ``(users[i], j)``.

        One vectorized gather over the CSR ``indptr``/``indices`` arrays —
        the ragged per-user neighbor lists become flat ``(row, col)`` pairs
        without a Python-level loop.
        """
        indptr = graph.w.indptr
        starts = indptr[users].astype(np.int64)
        counts = indptr[users + 1].astype(np.int64) - starts
        total = int(counts.sum())
        if total == 0:
            return
        # Absolute CSR positions: starts[i] + arange(counts[i]), flattened.
        bases = np.repeat(starts - np.concatenate(([0], np.cumsum(counts)[:-1])), counts)
        cols = graph.w.indices[np.arange(total, dtype=np.int64) + bases]
        rows = np.repeat(np.arange(users.size, dtype=np.int64), counts)
        scores[rows, cols] = -np.inf

    def _check_exclude(
        self, exclude: Optional[BipartiteGraph], users: np.ndarray
    ) -> None:
        """Every masked ``(user, item)`` index must land inside the block.

        The exclusion graph may be *smaller* than the embeddings (e.g. a
        core-filtered training graph scored with embeddings fit elsewhere) —
        mirroring the per-user path, which only ever asks for the neighbors
        of users it scores — but never larger on the item side, and it must
        cover every requested user row.
        """
        if exclude is None:
            return
        if exclude.num_v > self.num_items:
            raise ValueError(
                f"exclusion graph has {exclude.num_v} items but the "
                f"embeddings score only {self.num_items}"
            )
        if users.size and int(users.max()) >= exclude.num_u:
            raise ValueError(
                f"user {int(users.max())} outside the exclusion graph's "
                f"{exclude.num_u} rows"
            )

    # ------------------------------------------------------------------
    # Retrieval
    # ------------------------------------------------------------------
    def iter_top_items(
        self,
        n: int,
        *,
        users: Optional[np.ndarray] = None,
        exclude: Optional[BipartiteGraph] = None,
        with_scores: bool = False,
    ) -> Iterator[Union[Tuple[np.ndarray, np.ndarray], Tuple[np.ndarray, np.ndarray, np.ndarray]]]:
        """Stream ``(users_block, items_block[, scores_block])`` per block.

        ``items_block`` is ``(B, min(n, num_items))`` int64, best first,
        ordered by ``(score desc, index asc)``.  With ``with_scores`` the
        selected scores come along as a freshly allocated float block (safe
        to keep across iterations, unlike the internal score buffer).
        """
        if users is None:
            users = np.arange(self.num_users, dtype=np.int64)
        else:
            users = np.asarray(users, dtype=np.int64)
            if users.ndim != 1:
                raise ValueError("users must be a 1-D index array")
            if users.size and (
                users.min() < 0 or users.max() >= self.num_users
            ):
                raise ValueError(
                    f"user indices must be in [0, {self.num_users})"
                )
        self._check_exclude(exclude, users)
        n_keep = max(0, min(int(n), self.num_items))
        if n_keep == 0:
            return
        for lo in range(0, users.size, self.block_rows):
            block_users = users[lo : lo + self.block_rows]
            collector = _obs_active()
            scores = self._score_buffer(block_users.size)
            self._score_into(self._u[block_users], scores)
            collector.count_gemm(
                block_users.size, self.dimension, self.num_items
            )
            collector.count_topk(block_users.size * self.num_items)
            if exclude is not None:
                self._mask_exclusions(scores, block_users, exclude)
            items = select_topn(scores, n_keep)
            collector.note_workspace(self.workspace_bytes())
            if with_scores:
                yield block_users, items, np.take_along_axis(
                    scores, items, axis=1
                ).copy()
            else:
                yield block_users, items

    def top_items(
        self,
        n: int,
        *,
        users: Optional[np.ndarray] = None,
        exclude: Optional[BipartiteGraph] = None,
    ) -> np.ndarray:
        """All requested users' top-``n`` lists as one ``(U, n')`` array.

        Streams through :meth:`iter_top_items`; only the *selected* indices
        are accumulated, never the score blocks.
        """
        count = self.num_users if users is None else np.asarray(users).size
        n_keep = max(0, min(int(n), self.num_items))
        blocks = [
            items
            for _, items in self.iter_top_items(n, users=users, exclude=exclude)
        ]
        if not blocks:
            return np.empty((count, n_keep), dtype=np.int64)
        return np.concatenate(blocks, axis=0)


class QuantizedTopKEngine(TopKEngine):
    """Top-``n`` retrieval over per-column-quantized embeddings, still exact.

    The engine of the quantized artifact tier
    (:meth:`repro.serve.artifacts.ArtifactStore.publish` with
    ``quantize="float16"|"int8"``): it never materializes the float64
    embedding matrices.  Instead it scores *approximately* and reranks a
    provably sufficient margin *exactly* — the same candidate-generation /
    verification split as the IVF index of :mod:`repro.ann.ivf`:

    1. **Approximate sweep** — one ``u_block @ V.T`` GEMM per block in
       float32 over a staged float32 ``V.T`` built from the codes and
       per-column scales (half the float64 staging footprint; the codes
       themselves usually stay memory-mapped).
    2. **Margin from the per-column error bound** — the scales bound every
       dequantized value per column (``scale_j`` for float16 codes in
       ``[-1, 1]``, ``127 * scale_j`` for int8), so the gap between the
       float32 approximate score and the exact float64 score of user ``i``
       is at most ``B_i = c * sum_j |u_ij| * colmax_j`` with
       ``c = 8 (k + 8) eps_f32`` (cast + staging + length-``k``
       accumulation error, with headroom).  Every item whose approximate
       score reaches within ``2 B_i`` of the block's ``n``-th best is a
       candidate; anything below is *provably* beaten by ``n`` items in
       exact score and can never appear in the exact list.
    3. **Exact rerank** — candidate rows are dequantized to float64 and
       rescored with a *fixed-order* dot product (``np.einsum``, ascending
       dimension index), then selected with
       :func:`~repro.core.selection.select_topn`; because candidates come
       out ascending by global id, the tie-break coincides with the exact
       engine's.

    The fixed-order rerank is deliberate: BLAS GEMM kernels change their
    per-element summation order with the operand *shape*, so a
    candidate-subset GEMM is not bit-reproducible against a full-width one.
    ``einsum`` accumulates every dot identically regardless of block size,
    candidate count, or thread count — the rerank scores are a pure
    function of the codes and scales.

    The result is **list-identical to a plain :class:`TopKEngine` over the
    dequantized embeddings** at every block size and thread count, for both
    codecs, all-ties included, and the returned scores are the exact
    float64 dot products of those dequantized embeddings (pinned
    bit-for-bit against an independent fixed-order evaluation by
    ``tests/test_quant.py``).  Relative to the exact engine's BLAS-computed
    scores the agreement is exact wherever the dots are exactly
    representable (the all-ties integer fixtures) and within one unit in
    the last place otherwise — summation-order noise far below the
    quantization error, and never enough to reorder a list unless two real
    scores are themselves sub-ulp ties.

    Parameters
    ----------
    u_codes, v_codes:
        Quantized embedding matrices (float16 or int8), typically the
        memory-mapped arrays of a quantized artifact.
    u_scales, v_scales:
        The matching per-column float64 scales.
    quant_dtype:
        ``"float16"`` or ``"int8"`` — must match the codes' dtype.
    policy, block_rows:
        As for :class:`TopKEngine`.  The approximate sweep always runs in
        float32 regardless of the policy's compute dtype; the rerank is
        always float64.
    """

    def __init__(
        self,
        u_codes: np.ndarray,
        u_scales: np.ndarray,
        v_codes: np.ndarray,
        v_scales: np.ndarray,
        *,
        quant_dtype: str,
        policy: Optional[DtypePolicy] = None,
        block_rows: Optional[int] = None,
    ):
        if quant_dtype not in QUANT_DTYPES:
            raise ValueError(
                f"quant_dtype must be one of {QUANT_DTYPES}, got {quant_dtype!r}"
            )
        self.policy = policy if policy is not None else DtypePolicy()
        self.quant_dtype = str(quant_dtype)
        self.dtype = np.dtype(np.float32)  # the approximate-sweep dtype
        u_codes = np.asarray(u_codes)
        v_codes = np.asarray(v_codes)
        if u_codes.ndim != 2 or v_codes.ndim != 2:
            raise ValueError("quantized embeddings must be 2-D matrices")
        if u_codes.shape[1] != v_codes.shape[1]:
            raise ValueError(
                f"dimension mismatch: u is {u_codes.shape}, v is {v_codes.shape}"
            )
        expected = np.dtype(quant_dtype)
        for name, codes in (("u", u_codes), ("v", v_codes)):
            if codes.dtype != expected:
                raise ValueError(
                    f"{name} codes are {codes.dtype}, expected {expected} "
                    f"for quant_dtype={quant_dtype!r}"
                )
        u_scales = np.ascontiguousarray(u_scales, dtype=np.float64)
        v_scales = np.ascontiguousarray(v_scales, dtype=np.float64)
        k = u_codes.shape[1]
        if u_scales.shape != (k,) or v_scales.shape != (k,):
            raise ValueError(
                f"scales must be ({k},), got u {u_scales.shape} / "
                f"v {v_scales.shape}"
            )
        if block_rows is None:
            block_rows = DEFAULT_BLOCK_ROWS
        if block_rows < 1:
            raise ValueError(f"block_rows must be >= 1, got {block_rows}")
        self.block_rows = int(block_rows)
        self._u = u_codes  # codes, possibly memory-mapped; dequantized per block
        self._u_scales = u_scales
        self._v_codes = v_codes
        self._v_scales = v_scales
        # The staged approximate V.T: float32 dequantized codes, C-contiguous
        # like the exact engine's staging so the sweep GEMM shards the same.
        self._vt = np.ascontiguousarray(
            (v_codes.astype(np.float32) * v_scales.astype(np.float32)).T
        )
        # Per-column bound on any |dequantized v| — from the scales alone.
        code_max = 1.0 if self.quant_dtype == "float16" else 127.0
        colmax = v_scales * code_max
        # Measured per-column staging error max_i |float32 staged - exact|,
        # computed in one chunked pass.  A column whose values fall outside
        # float32's graceful range inflates its entry (up to inf), which
        # only widens the margin toward a full rerank — never breaks
        # exactness.
        stage_err = np.zeros(k)
        chunk = max(1, (1 << 22) // max(1, k))
        for lo in range(0, v_codes.shape[0], chunk):
            exact_chunk = v_codes[lo : lo + chunk].astype(np.float64) * v_scales
            staged_chunk = self._vt[:, lo : lo + chunk].T.astype(np.float64)
            if exact_chunk.size:
                np.maximum(
                    stage_err,
                    np.abs(staged_chunk - exact_chunk).max(axis=0),
                    out=stage_err,
                )
        # Per-column score-error weights: staging error plus the float32
        # cast of u and the length-k accumulation (~k*eps each, 4x headroom).
        eps32 = float(np.finfo(np.float32).eps)
        self._colerr = stage_err + (4.0 * (k + 8) * eps32) * colmax
        # Absolute floor covering subnormal-u cast error (spacing 2^-149).
        self._abs_bound = (2.0 ** -140) * float(np.sum(colmax))
        self._exec = ParallelExecutor(self.policy.exec_policy)
        self._scores_flat: Optional[np.ndarray] = None
        self.threads_used = 1
        #: Cumulative (user, candidate) pairs reranked in float64 — the
        #: margin cost; the bench's quant axis and /metrics read this.
        self.reranked_candidates = 0

    def clone_for_worker(self) -> "QuantizedTopKEngine":
        """Per-thread clone; same contract as the exact engine's."""
        clone = super().clone_for_worker()
        clone.quant_dtype = self.quant_dtype
        clone._u_scales = self._u_scales
        clone._v_codes = self._v_codes
        clone._v_scales = self._v_scales
        clone._colerr = self._colerr
        clone._abs_bound = self._abs_bound
        clone.reranked_candidates = 0
        return clone

    def resident_bytes(self) -> int:
        base = super().resident_bytes()
        if not isinstance(self._v_codes, np.memmap):
            # _vt is staged from the codes; avoid double counting only the
            # mmap case (the resident copy is the staging, not the codes).
            base += self._v_codes.nbytes
        return base + self._u_scales.nbytes + self._v_scales.nbytes

    # ------------------------------------------------------------------
    # Dequantization (float64, bit-reproducible)
    # ------------------------------------------------------------------
    def _dequant_u(self, rows: np.ndarray) -> np.ndarray:
        """The exact float64 values of the requested user rows."""
        return self._u[rows].astype(np.float64) * self._u_scales

    def _dequant_v(self, rows: np.ndarray) -> np.ndarray:
        """The exact float64 values of the requested item rows, ``(c, k)``."""
        return self._v_codes[rows].astype(np.float64) * self._v_scales

    @staticmethod
    def _exact_dots(u_deq: np.ndarray, v_deq: np.ndarray) -> np.ndarray:
        """Fixed-order float64 dots: ``(b, k) x (c, k) -> (b, c)``.

        ``einsum`` (no ``optimize``) accumulates each dot in ascending
        dimension index whatever the operand shapes, so these scores are a
        pure function of the dequantized values — unlike a BLAS GEMM,
        whose summation order (and hence last bit) shifts with the block
        and candidate widths.  Every exact score the engine emits flows
        through here.
        """
        return np.einsum("bk,ck->bc", u_deq, v_deq)

    def user_scores(self, user: int) -> np.ndarray:
        """Exact float64 scores of one user against every item (chunked).

        Bit-identical to the scores :meth:`iter_top_items` emits for the
        same ``(user, item)`` pairs — both run :meth:`_exact_dots`.
        """
        row = self._dequant_u(np.asarray([int(user)], dtype=np.int64))
        out = np.empty(self.num_items, dtype=np.float64)
        chunk = max(1, (1 << 22) // max(1, self.dimension))
        for lo in range(0, self.num_items, chunk):
            rows = np.arange(lo, min(lo + chunk, self.num_items), dtype=np.int64)
            out[lo : lo + rows.size] = self._exact_dots(
                row, self._dequant_v(rows)
            )[0]
        return out

    # ------------------------------------------------------------------
    # Margin-reranked retrieval
    # ------------------------------------------------------------------
    def _mask_candidate_exclusions(
        self,
        scores: np.ndarray,
        users: np.ndarray,
        cand: np.ndarray,
        graph: BipartiteGraph,
    ) -> None:
        """``-inf`` the excluded ``(user, item)`` pairs *within* ``cand``.

        The candidate-subset complement of :meth:`_mask_exclusions`:
        global CSR columns are located in the ascending candidate array by
        binary search, misses (excluded items that did not make the
        margin) are simply dropped.
        """
        indptr = graph.w.indptr
        starts = indptr[users].astype(np.int64)
        counts = indptr[users + 1].astype(np.int64) - starts
        total = int(counts.sum())
        if total == 0:
            return
        bases = np.repeat(
            starts - np.concatenate(([0], np.cumsum(counts)[:-1])), counts
        )
        cols = graph.w.indices[np.arange(total, dtype=np.int64) + bases]
        rows = np.repeat(np.arange(users.size, dtype=np.int64), counts)
        pos = np.searchsorted(cand, cols)
        pos_clipped = np.minimum(pos, cand.size - 1)
        hit = cand[pos_clipped] == cols
        scores[rows[hit], pos_clipped[hit]] = -np.inf

    def iter_top_items(
        self,
        n: int,
        *,
        users: Optional[np.ndarray] = None,
        exclude: Optional[BipartiteGraph] = None,
        with_scores: bool = False,
    ) -> Iterator[Union[Tuple[np.ndarray, np.ndarray], Tuple[np.ndarray, np.ndarray, np.ndarray]]]:
        """Stream exact top-``n`` blocks; see the class notes for the proof.

        Yields exactly what the exact engine yields — int64 item blocks
        ordered by ``(score desc, id asc)`` and, when requested, their
        float64 scores at full precision.
        """
        if users is None:
            users = np.arange(self.num_users, dtype=np.int64)
        else:
            users = np.asarray(users, dtype=np.int64)
            if users.ndim != 1:
                raise ValueError("users must be a 1-D index array")
            if users.size and (
                users.min() < 0 or users.max() >= self.num_users
            ):
                raise ValueError(
                    f"user indices must be in [0, {self.num_users})"
                )
        self._check_exclude(exclude, users)
        n_keep = max(0, min(int(n), self.num_items))
        if n_keep == 0:
            return
        for lo in range(0, users.size, self.block_rows):
            block_users = users[lo : lo + self.block_rows]
            collector = _obs_active()
            u_deq = self._dequant_u(block_users)
            scores = self._score_buffer(block_users.size)
            self._score_into(u_deq.astype(np.float32), scores)
            collector.count_gemm(
                block_users.size, self.dimension, self.num_items
            )
            collector.count_topk(block_users.size * self.num_items)
            if exclude is not None:
                self._mask_exclusions(scores, block_users, exclude)
            approx_top = select_topn(scores, n_keep)
            # The selection boundary, widened by twice the per-user score
            # error bound: |exact - approx| <= B on both sides of any
            # comparison.  A -inf boundary (fewer than n unmasked items)
            # widens to everything — still exact, just a full rerank.
            kth = np.take_along_axis(
                scores, approx_top[:, -1:], axis=1
            ).astype(np.float64)
            bound = np.abs(u_deq) @ self._colerr + self._abs_bound
            # A nan bound (0 * inf from an overflowed staging column on a
            # zero coordinate) would silently shrink the candidate set;
            # widen it to inf (full rerank) instead.
            np.copyto(bound, np.inf, where=np.isnan(bound))
            cand_mask = scores >= (kth - 2.0 * bound[:, None])
            cand = np.flatnonzero(cand_mask.any(axis=0)).astype(np.int64)
            exact = self._exact_dots(u_deq, self._dequant_v(cand))
            collector.count_gemm(block_users.size, self.dimension, cand.size)
            self.reranked_candidates += int(block_users.size) * int(cand.size)
            if exclude is not None:
                self._mask_candidate_exclusions(
                    exact, block_users, cand, exclude
                )
            keep = select_topn(exact, n_keep)
            items = cand[keep]
            collector.note_workspace(self.workspace_bytes())
            if with_scores:
                yield block_users, items, np.take_along_axis(
                    exact, keep, axis=1
                ).copy()
            else:
                yield block_users, items

    def dequantized(self) -> Tuple[np.ndarray, np.ndarray]:
        """Materialized float64 ``(u, v)`` — the matrices this engine is
        exact against.  Test/tooling helper; serving never calls it."""
        return (
            dequantize_columns(np.asarray(self._u), self._u_scales),
            dequantize_columns(np.asarray(self._v_codes), self._v_scales),
        )
