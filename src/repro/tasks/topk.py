"""Batched top-k retrieval over fitted embeddings (the serving path).

Training reads the graph once; a recommendation service reads the
*embeddings* forever.  The paper's Top-N protocol (Section 6.3) and every
factorization-style baseline share the same read-out shape: score one side's
embedding rows against the whole other side (``U[u] . V[v]``), hide the
training edges, keep the best ``n``.  Done one user at a time that is one
GEMV plus one partial sort per user — the Python and BLAS call overhead
dwarfs the arithmetic at scale.

:class:`TopKEngine` is the batched engine:

* **Blocked GEMM scoring** — users are scored ``block_rows`` at a time with
  one ``U_block @ V.T`` product per block, column-sharded across the thread
  pool of :mod:`repro.linalg.parallel` when the configured
  :class:`~repro.linalg.DtypePolicy`'s executor allows (``--threads`` and
  ``REPRO_NUM_THREADS`` apply exactly as they do to the training kernels).
  Each output element is one whole ``k``-dot regardless of sharding, so the
  thread count never changes which items win.
* **CSR exclusion masking** — training edges are masked per block straight
  from the graph's ``indptr``/``indices`` arrays with one vectorized
  gather, not one ``u_neighbors`` call per user.
* **Deterministic selection** — items are kept with
  :func:`~repro.core.selection.select_topn`, the same primitive the
  per-user :meth:`~repro.core.base.EmbeddingResult.top_items` path uses, so
  batch and per-user lists are element-for-element identical (pinned by the
  differential suite in ``tests/test_topk.py``).
* **Bounded memory** — results stream block by block; the full
  ``num_users x num_items`` score matrix is never materialized.  Peak extra
  memory is one reusable ``block_rows x num_items`` score buffer (reported
  through the obs workspace watermark) plus selection temporaries of the
  same block footprint.

Observability: every block reports one GEMM (``count_gemm``) and its
scored-candidate coverage (``count_topk``) to the active collector; the
score buffer feeds the workspace watermark.  Counting happens once per
logical block in the calling thread — worker threads never touch the
collector.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple, Union

import numpy as np

from ..core.selection import select_topn
from ..graph import BipartiteGraph
from ..linalg.parallel import ParallelExecutor, column_shards
from ..linalg.policy import DtypePolicy
from ..obs import active as _obs_active

__all__ = ["TopKEngine", "DEFAULT_BLOCK_ROWS", "neighbor_items"]

#: Default users-per-GEMM.  256 rows keep the score buffer in the tens of
#: megabytes even for ~10^4 items while amortizing per-block Python and
#: BLAS dispatch overhead; see docs/SERVING.md for the measured tuning curve.
DEFAULT_BLOCK_ROWS = 256


def neighbor_items(graph: BipartiteGraph, user: int) -> np.ndarray:
    """The item ids adjacent to ``user`` — one CSR ``indptr`` slice.

    The per-user complement of :meth:`TopKEngine._mask_exclusions`: the ANN
    rerank (:mod:`repro.ann.ivf`) and the sharded merge work on candidate
    *subsets*, where a flat neighbor array to ``isin`` against beats a
    dense block mask.  Returned ascending (CSR column order), int64.
    """
    indptr = graph.w.indptr
    return graph.w.indices[indptr[user] : indptr[user + 1]].astype(np.int64)


class TopKEngine:
    """Batched ``U_block @ V.T`` scoring with masking and top-n selection.

    Parameters
    ----------
    u, v:
        The two embedding matrices (``|U| x k`` and ``|V| x k``), typically
        ``result.u`` / ``result.v`` of an
        :class:`~repro.core.base.EmbeddingResult` (see :meth:`from_result`).
        Cast once to the policy's compute dtype at construction.
    policy:
        The :class:`~repro.linalg.DtypePolicy` governing compute dtype,
        workspace reuse, and the executor's thread count (``None``: default
        policy — float64, workspace reuse, ``REPRO_NUM_THREADS`` threads).
    block_rows:
        Users scored per GEMM (``None``: :data:`DEFAULT_BLOCK_ROWS`).

    Notes
    -----
    With workspace reuse on (the policy default) the score buffer is grown
    once and overwritten by every block, so score views yielded by
    :meth:`iter_top_items` are only valid until the next block is produced —
    the standard streaming contract.  ``policy.workspace=False`` selects the
    allocation-per-block reference path (the bench A/B lever).

    **A single engine instance must not be shared across threads.**  The
    grow-once score workspace is overwritten by every block, so two threads
    scoring through one instance race on the buffer between scoring and
    selection and can hand each other's scores to ``select_topn`` (pinned by
    ``tests/test_serve_service.py``).  Concurrent callers — the serving tier
    in :mod:`repro.serve` — take one :meth:`clone_for_worker` per thread:
    clones share the immutable embedding arrays (no copy) but own their
    workspace.
    """

    def __init__(
        self,
        u: np.ndarray,
        v: np.ndarray,
        *,
        policy: Optional[DtypePolicy] = None,
        block_rows: Optional[int] = None,
    ):
        self.policy = policy if policy is not None else DtypePolicy()
        self.dtype = self.policy.compute_dtype
        u = np.asarray(u)
        v = np.asarray(v)
        if u.ndim != 2 or v.ndim != 2:
            raise ValueError("embeddings must be 2-D matrices")
        if u.shape[1] != v.shape[1]:
            raise ValueError(
                f"dimension mismatch: u is {u.shape}, v is {v.shape}"
            )
        if block_rows is None:
            block_rows = DEFAULT_BLOCK_ROWS
        if block_rows < 1:
            raise ValueError(f"block_rows must be >= 1, got {block_rows}")
        self.block_rows = int(block_rows)
        self._u = np.ascontiguousarray(u, dtype=self.dtype)
        # V.T staged C-contiguous once so every block GEMM streams it in
        # column-major-free layout; column shards slice it without copying.
        self._vt = np.ascontiguousarray(self._as_dtype(v).T)
        self._exec = ParallelExecutor(self.policy.exec_policy)
        self._scores_flat: Optional[np.ndarray] = None
        self.threads_used = 1

    def _as_dtype(self, block: np.ndarray) -> np.ndarray:
        return np.asarray(block, dtype=self.dtype)

    @classmethod
    def from_result(
        cls,
        result,
        *,
        policy: Optional[DtypePolicy] = None,
        block_rows: Optional[int] = None,
    ) -> "TopKEngine":
        """An engine over ``result.u`` / ``result.v`` (duck-typed)."""
        return cls(result.u, result.v, policy=policy, block_rows=block_rows)

    def clone_for_worker(self) -> "TopKEngine":
        """A worker-private engine sharing this engine's embedding arrays.

        The clone aliases the read-only ``U`` and staged ``V.T`` matrices —
        zero copy, so per-thread clones cost only the (lazily grown) score
        workspace — but owns a fresh workspace and executor handle.  This is
        the supported way to score concurrently: one clone per thread, never
        one shared instance (see the class notes on the workspace race).
        """
        clone = type(self).__new__(type(self))
        clone.policy = self.policy
        clone.dtype = self.dtype
        clone.block_rows = self.block_rows
        clone._u = self._u
        clone._vt = self._vt
        clone._exec = ParallelExecutor(self.policy.exec_policy)
        clone._scores_flat = None
        clone.threads_used = 1
        return clone

    # ------------------------------------------------------------------
    # Shapes and buffers
    # ------------------------------------------------------------------
    @property
    def num_users(self) -> int:
        """Rows of the U-side embedding."""
        return self._u.shape[0]

    @property
    def num_items(self) -> int:
        """Rows of the V-side embedding (the candidate set size)."""
        return self._vt.shape[1]

    @property
    def dimension(self) -> int:
        """The embedding dimensionality ``k``."""
        return self._u.shape[1]

    def workspace_bytes(self) -> int:
        """Bytes held in the reusable score buffer (0 before first use)."""
        return 0 if self._scores_flat is None else self._scores_flat.nbytes

    def _score_buffer(self, rows: int) -> np.ndarray:
        """A C-contiguous ``rows x num_items`` score block."""
        needed = rows * self.num_items
        if not self.policy.workspace:
            return np.empty((rows, self.num_items), dtype=self.dtype)
        if self._scores_flat is None or self._scores_flat.size < needed:
            self._scores_flat = np.empty(
                self.block_rows * self.num_items, dtype=self.dtype
            )
            _obs_active().note_array(self._scores_flat.nbytes)
        return self._scores_flat[:needed].reshape(rows, self.num_items)

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def _score_into(self, u_block: np.ndarray, out: np.ndarray) -> None:
        """``out[...] = u_block @ V.T``, column-sharded across the executor.

        Shards partition the *output columns*; every element is one whole
        ``k``-length dot product either way, so sharding affects wall time
        only.  ``np.matmul`` releases the GIL inside BLAS, which is what
        makes the thread pool effective here.
        """
        rows, k = u_block.shape
        m = self.num_items
        n_shards = self._exec.shards_for(rows * k * m, m)
        if n_shards == 1:
            np.matmul(u_block, self._vt, out=out)
            return
        self.threads_used = max(self.threads_used, n_shards)
        self._exec.run(
            [
                (
                    lambda lo=lo, hi=hi: np.matmul(
                        u_block, self._vt[:, lo:hi], out=out[:, lo:hi]
                    )
                )
                for lo, hi in column_shards(m, n_shards)
            ]
        )

    @staticmethod
    def _mask_exclusions(
        scores: np.ndarray, users: np.ndarray, graph: BipartiteGraph
    ) -> None:
        """Set ``scores[i, j] = -inf`` for every edge ``(users[i], j)``.

        One vectorized gather over the CSR ``indptr``/``indices`` arrays —
        the ragged per-user neighbor lists become flat ``(row, col)`` pairs
        without a Python-level loop.
        """
        indptr = graph.w.indptr
        starts = indptr[users].astype(np.int64)
        counts = indptr[users + 1].astype(np.int64) - starts
        total = int(counts.sum())
        if total == 0:
            return
        # Absolute CSR positions: starts[i] + arange(counts[i]), flattened.
        bases = np.repeat(starts - np.concatenate(([0], np.cumsum(counts)[:-1])), counts)
        cols = graph.w.indices[np.arange(total, dtype=np.int64) + bases]
        rows = np.repeat(np.arange(users.size, dtype=np.int64), counts)
        scores[rows, cols] = -np.inf

    def _check_exclude(
        self, exclude: Optional[BipartiteGraph], users: np.ndarray
    ) -> None:
        """Every masked ``(user, item)`` index must land inside the block.

        The exclusion graph may be *smaller* than the embeddings (e.g. a
        core-filtered training graph scored with embeddings fit elsewhere) —
        mirroring the per-user path, which only ever asks for the neighbors
        of users it scores — but never larger on the item side, and it must
        cover every requested user row.
        """
        if exclude is None:
            return
        if exclude.num_v > self.num_items:
            raise ValueError(
                f"exclusion graph has {exclude.num_v} items but the "
                f"embeddings score only {self.num_items}"
            )
        if users.size and int(users.max()) >= exclude.num_u:
            raise ValueError(
                f"user {int(users.max())} outside the exclusion graph's "
                f"{exclude.num_u} rows"
            )

    # ------------------------------------------------------------------
    # Retrieval
    # ------------------------------------------------------------------
    def iter_top_items(
        self,
        n: int,
        *,
        users: Optional[np.ndarray] = None,
        exclude: Optional[BipartiteGraph] = None,
        with_scores: bool = False,
    ) -> Iterator[Union[Tuple[np.ndarray, np.ndarray], Tuple[np.ndarray, np.ndarray, np.ndarray]]]:
        """Stream ``(users_block, items_block[, scores_block])`` per block.

        ``items_block`` is ``(B, min(n, num_items))`` int64, best first,
        ordered by ``(score desc, index asc)``.  With ``with_scores`` the
        selected scores come along as a freshly allocated float block (safe
        to keep across iterations, unlike the internal score buffer).
        """
        if users is None:
            users = np.arange(self.num_users, dtype=np.int64)
        else:
            users = np.asarray(users, dtype=np.int64)
            if users.ndim != 1:
                raise ValueError("users must be a 1-D index array")
            if users.size and (
                users.min() < 0 or users.max() >= self.num_users
            ):
                raise ValueError(
                    f"user indices must be in [0, {self.num_users})"
                )
        self._check_exclude(exclude, users)
        n_keep = max(0, min(int(n), self.num_items))
        if n_keep == 0:
            return
        for lo in range(0, users.size, self.block_rows):
            block_users = users[lo : lo + self.block_rows]
            collector = _obs_active()
            scores = self._score_buffer(block_users.size)
            self._score_into(self._u[block_users], scores)
            collector.count_gemm(
                block_users.size, self.dimension, self.num_items
            )
            collector.count_topk(block_users.size * self.num_items)
            if exclude is not None:
                self._mask_exclusions(scores, block_users, exclude)
            items = select_topn(scores, n_keep)
            collector.note_workspace(self.workspace_bytes())
            if with_scores:
                yield block_users, items, np.take_along_axis(
                    scores, items, axis=1
                ).copy()
            else:
                yield block_users, items

    def top_items(
        self,
        n: int,
        *,
        users: Optional[np.ndarray] = None,
        exclude: Optional[BipartiteGraph] = None,
    ) -> np.ndarray:
        """All requested users' top-``n`` lists as one ``(U, n')`` array.

        Streams through :meth:`iter_top_items`; only the *selected* indices
        are accumulated, never the score blocks.
        """
        count = self.num_users if users is None else np.asarray(users).size
        n_keep = max(0, min(int(n), self.num_items))
        blocks = [
            items
            for _, items in self.iter_top_items(n, users=users, exclude=exclude)
        ]
        if not blocks:
            return np.empty((count, n_keep), dtype=np.int64)
        return np.concatenate(blocks, axis=0)
