"""Random-walk substrate: alias sampling, walk corpora, SGNS training."""

from .alias import AliasTable
from .corpus import WalkSampler, walks_to_sentences
from .skipgram import SkipGramConfig, SkipGramTrainer, extract_window_pairs

__all__ = [
    "AliasTable",
    "WalkSampler",
    "walks_to_sentences",
    "SkipGramConfig",
    "SkipGramTrainer",
    "extract_window_pairs",
]
