"""Alias method for O(1) sampling from discrete distributions.

Random-walk baselines (DeepWalk, node2vec, LINE, BiNE, CSE) draw billions of
weighted neighbor/negative samples; the alias method [Walker 1977] gives
constant-time draws after linear-time setup, and is the standard trick in
all of those systems' reference implementations.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

__all__ = ["AliasTable"]


class AliasTable:
    """Preprocessed discrete distribution supporting O(1) sampling.

    Parameters
    ----------
    weights:
        Non-negative, not-all-zero weights; normalized internally.

    Examples
    --------
    >>> import numpy as np
    >>> table = AliasTable([1.0, 3.0])
    >>> draws = table.sample(10_000, rng=np.random.default_rng(0))
    >>> 0.70 < (draws == 1).mean() < 0.80
    True
    """

    def __init__(self, weights: Sequence[float]):
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 1 or weights.size == 0:
            raise ValueError("weights must be a non-empty 1-D sequence")
        if (weights < 0).any():
            raise ValueError("weights must be non-negative")
        total = weights.sum()
        if total <= 0:
            raise ValueError("weights must not all be zero")

        n = weights.size
        scaled = weights * (n / total)
        self.probability = np.zeros(n, dtype=np.float64)
        self.alias = np.zeros(n, dtype=np.int64)

        small = [i for i in range(n) if scaled[i] < 1.0]
        large = [i for i in range(n) if scaled[i] >= 1.0]
        scaled = scaled.copy()
        while small and large:
            s = small.pop()
            l = large.pop()
            self.probability[s] = scaled[s]
            self.alias[s] = l
            scaled[l] = scaled[l] - (1.0 - scaled[s])
            if scaled[l] < 1.0:
                small.append(l)
            else:
                large.append(l)
        for leftover in large + small:
            self.probability[leftover] = 1.0
            self.alias[leftover] = leftover

    def __len__(self) -> int:
        return self.probability.size

    def sample(
        self, count: int = 1, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """Draw ``count`` indices according to the stored distribution."""
        rng = np.random.default_rng() if rng is None else rng
        columns = rng.integers(0, len(self), size=count)
        coins = rng.random(count)
        use_alias = coins >= self.probability[columns]
        return np.where(use_alias, self.alias[columns], columns)

    def sample_one(self, rng: np.random.Generator) -> int:
        """Draw a single index (convenience for scalar walk loops)."""
        column = int(rng.integers(0, len(self)))
        if rng.random() < self.probability[column]:
            return column
        return int(self.alias[column])
