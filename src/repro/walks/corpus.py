"""Random-walk corpus generation over (bipartite or homogeneous) graphs.

Generates the walk corpora consumed by the skip-gram trainer.  Two walk
families cover all the walk-based baselines:

* **first-order walks** (DeepWalk, BiNE, CSE) — the next node is drawn from
  the current node's weighted neighbor distribution; all walks advance one
  step per vectorized operation, using flattened per-node alias tables.
* **second-order walks** (node2vec) — the proposal comes from the
  first-order distribution and is accepted with probability proportional to
  the node2vec bias (``1/p`` return, ``1`` triangle, ``1/q`` explore), i.e.
  rejection sampling, the standard trick for avoiding per-edge alias tables.

Walks operate on a homogeneous CSR adjacency; for bipartite graphs use
:meth:`repro.graph.BipartiteGraph.adjacency`, which places U-nodes at
``0..|U|-1`` and V-nodes after them.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np
import scipy.sparse as sp

from .alias import AliasTable

__all__ = ["WalkSampler"]


class WalkSampler:
    """Pre-processed graph supporting vectorized random-walk generation.

    Parameters
    ----------
    adjacency:
        Square CSR adjacency with non-negative weights.  Rows with no
        neighbors terminate walks early.
    """

    def __init__(self, adjacency: sp.spmatrix):
        adjacency = sp.csr_matrix(adjacency, dtype=np.float64)
        if adjacency.shape[0] != adjacency.shape[1]:
            raise ValueError("adjacency must be square")
        self.adjacency = adjacency
        self.num_nodes = adjacency.shape[0]
        self.degrees = np.diff(adjacency.indptr)

        # Flattened alias tables: probability/alias arrays aligned with the
        # CSR data layout, so one gather per step samples every walk at once.
        self._prob = np.ones(adjacency.nnz, dtype=np.float64)
        self._alias = np.zeros(adjacency.nnz, dtype=np.int64)
        indptr = adjacency.indptr
        for node in range(self.num_nodes):
            start, stop = indptr[node], indptr[node + 1]
            if stop == start:
                continue
            table = AliasTable(adjacency.data[start:stop])
            self._prob[start:stop] = table.probability
            self._alias[start:stop] = start + table.alias  # absolute offsets

        # Edge set for O(1) membership checks in the node2vec bias.
        self._edge_keys = set(
            (adjacency.indices + adjacency.shape[0] * np.repeat(
                np.arange(self.num_nodes), self.degrees
            )).tolist()
        )

    # ------------------------------------------------------------------
    # Stepping primitives
    # ------------------------------------------------------------------
    def _step(self, current: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """One first-order step for every walk; dead ends return -1."""
        next_nodes = np.full(current.size, -1, dtype=np.int64)
        alive = (current >= 0) & (self.degrees[np.clip(current, 0, None)] > 0)
        if not alive.any():
            return next_nodes
        cur = current[alive]
        offsets = self.adjacency.indptr[cur] + rng.integers(
            0, self.degrees[cur], size=cur.size
        )
        coins = rng.random(cur.size)
        chosen = np.where(coins < self._prob[offsets], offsets, self._alias[offsets])
        next_nodes[alive] = self.adjacency.indices[chosen]
        return next_nodes

    def _has_edge(self, u: int, v: int) -> bool:
        return u * self.num_nodes + v in self._edge_keys

    # ------------------------------------------------------------------
    # Walk generation
    # ------------------------------------------------------------------
    def first_order_walks(
        self,
        walks_per_node: int,
        walk_length: int,
        *,
        rng: Optional[np.random.Generator] = None,
        starts: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Generate weighted first-order walks (DeepWalk-style).

        Parameters
        ----------
        walks_per_node:
            Number of walks started from each node (ignored when ``starts``
            is given).
        walk_length:
            Number of *steps* per walk; rows have ``walk_length + 1`` nodes.
        starts:
            Explicit start nodes overriding the per-node schedule.

        Returns
        -------
        numpy.ndarray
            ``num_walks x (walk_length + 1)`` array of node ids; ``-1``
            marks early termination at a dead end.
        """
        if walk_length < 1:
            raise ValueError("walk_length must be at least 1")
        rng = np.random.default_rng() if rng is None else rng
        if starts is None:
            starts = np.repeat(np.arange(self.num_nodes), walks_per_node)
            rng.shuffle(starts)
        walks = np.full((starts.size, walk_length + 1), -1, dtype=np.int64)
        walks[:, 0] = starts
        current = starts.copy()
        for step in range(1, walk_length + 1):
            current = self._step(current, rng)
            walks[:, step] = current
        return walks

    def node2vec_walks(
        self,
        walks_per_node: int,
        walk_length: int,
        *,
        p: float = 1.0,
        q: float = 1.0,
        rng: Optional[np.random.Generator] = None,
        max_rejections: int = 16,
    ) -> np.ndarray:
        """Generate second-order node2vec walks via rejection sampling.

        The bias of moving ``prev -> current -> next`` is ``1/p`` when
        ``next == prev``, ``1`` when ``next`` neighbors ``prev``, and
        ``1/q`` otherwise.  Proposals from the first-order distribution are
        accepted with probability ``bias / max_bias``; after
        ``max_rejections`` failed proposals the last proposal is taken
        (bias truncation, negligible in practice).
        """
        if p <= 0 or q <= 0:
            raise ValueError("p and q must be positive")
        rng = np.random.default_rng() if rng is None else rng
        starts = np.repeat(np.arange(self.num_nodes), walks_per_node)
        rng.shuffle(starts)
        walks = np.full((starts.size, walk_length + 1), -1, dtype=np.int64)
        walks[:, 0] = starts

        max_bias = max(1.0, 1.0 / p, 1.0 / q)
        current = starts.copy()
        previous = np.full(starts.size, -1, dtype=np.int64)
        for step in range(1, walk_length + 1):
            proposal = self._step(current, rng)
            if step > 1:
                pending = np.flatnonzero(proposal >= 0)
                coins = rng.random(pending.size)
                for which, walk_id in enumerate(pending):
                    prev = int(previous[walk_id])
                    nxt = int(proposal[walk_id])
                    cur = int(current[walk_id])
                    for _ in range(max_rejections):
                        if nxt == prev:
                            bias = 1.0 / p
                        elif self._has_edge(prev, nxt):
                            bias = 1.0
                        else:
                            bias = 1.0 / q
                        if coins[which] < bias / max_bias:
                            break
                        nxt = self._sample_neighbor(cur, rng)
                        coins[which] = rng.random()
                    proposal[walk_id] = nxt
            walks[:, step] = proposal
            previous = current
            current = proposal.copy()
        return walks

    def _sample_neighbor(self, node: int, rng: np.random.Generator) -> int:
        start = self.adjacency.indptr[node]
        degree = self.degrees[node]
        offset = start + int(rng.integers(0, degree))
        if rng.random() < self._prob[offset]:
            chosen = offset
        else:
            chosen = self._alias[offset]
        return int(self.adjacency.indices[chosen])


def walks_to_sentences(walks: np.ndarray) -> List[np.ndarray]:
    """Strip ``-1`` padding, returning one id array per (non-trivial) walk."""
    sentences = []
    for row in walks:
        valid = row[row >= 0]
        if valid.size >= 2:
            sentences.append(valid)
    return sentences


__all__.append("walks_to_sentences")
