"""Skip-gram with negative sampling (SGNS), trained with vectorized SGD.

This is the embedding learner behind DeepWalk, node2vec, LINE, BiNE and CSE
(all are SGNS over different pair distributions).  Implemented from scratch
on numpy: pairs are extracted from walk windows (or supplied directly, as
LINE does with edges), negatives are drawn from the unigram^0.75 noise
distribution, and updates are applied in minibatches with scatter-adds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .alias import AliasTable

__all__ = ["SkipGramConfig", "SkipGramTrainer", "extract_window_pairs"]


def extract_window_pairs(walks: np.ndarray, window: int) -> Tuple[np.ndarray, np.ndarray]:
    """All (center, context) pairs within ``window`` positions in each walk.

    ``-1`` entries (padding after early-terminated walks) never pair.
    Both directions are produced, as in word2vec.
    """
    if window < 1:
        raise ValueError("window must be at least 1")
    centers = []
    contexts = []
    length = walks.shape[1]
    for offset in range(1, window + 1):
        if offset >= length:
            break
        left = walks[:, :-offset].ravel()
        right = walks[:, offset:].ravel()
        valid = (left >= 0) & (right >= 0)
        left = left[valid]
        right = right[valid]
        centers.append(left)
        contexts.append(right)
        centers.append(right)
        contexts.append(left)
    if not centers:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    return np.concatenate(centers), np.concatenate(contexts)


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return out


@dataclass(frozen=True)
class SkipGramConfig:
    """Hyper-parameters of the SGNS trainer.

    Attributes
    ----------
    dimension:
        Embedding size.
    negatives:
        Negative samples per positive pair (word2vec default 5).
    learning_rate:
        Initial SGD step size, decayed linearly to 10% over training.
    epochs:
        Passes over the pair set.
    batch_size:
        Pairs per minibatch.
    noise_exponent:
        Exponent of the unigram noise distribution (word2vec uses 0.75).
    """

    dimension: int = 128
    negatives: int = 5
    learning_rate: float = 0.025
    epochs: int = 1
    batch_size: int = 4096
    noise_exponent: float = 0.75


class SkipGramTrainer:
    """Trains input/output embedding tables from (center, context) pairs."""

    def __init__(self, config: SkipGramConfig = SkipGramConfig()):
        self.config = config

    def fit(
        self,
        centers: np.ndarray,
        contexts: np.ndarray,
        vocab_size: int,
        *,
        rng: Optional[np.random.Generator] = None,
        noise_counts: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Run SGNS over the given positive pairs.

        Parameters
        ----------
        centers, contexts:
            Parallel int arrays of positive pairs.
        vocab_size:
            Number of distinct ids (embedding table height).
        rng:
            Random generator for init, shuffling, and negatives.
        noise_counts:
            Occurrence counts defining the noise distribution; defaults to
            the contexts' empirical counts.

        Returns
        -------
        (w_in, w_out):
            The input (used as embeddings) and output tables.
        """
        if centers.shape != contexts.shape:
            raise ValueError("centers and contexts must be parallel arrays")
        cfg = self.config
        rng = np.random.default_rng() if rng is None else rng

        w_in = (rng.random((vocab_size, cfg.dimension)) - 0.5) / cfg.dimension
        w_out = np.zeros((vocab_size, cfg.dimension))
        if centers.size == 0:
            return w_in, w_out

        if noise_counts is None:
            noise_counts = np.bincount(contexts, minlength=vocab_size).astype(float)
        noise_weights = np.power(np.clip(noise_counts, 0.0, None), cfg.noise_exponent)
        if noise_weights.sum() == 0:
            noise_weights = np.ones(vocab_size)
        noise = AliasTable(noise_weights)

        total_batches = cfg.epochs * max(1, int(np.ceil(centers.size / cfg.batch_size)))
        batch_counter = 0
        for _ in range(cfg.epochs):
            order = rng.permutation(centers.size)
            for start in range(0, centers.size, cfg.batch_size):
                batch = order[start : start + cfg.batch_size]
                progress = batch_counter / total_batches
                lr = cfg.learning_rate * max(0.1, 1.0 - progress)
                self._sgd_step(
                    w_in, w_out, centers[batch], contexts[batch], noise, lr, rng
                )
                batch_counter += 1
        return w_in, w_out

    def _sgd_step(
        self,
        w_in: np.ndarray,
        w_out: np.ndarray,
        centers: np.ndarray,
        positives: np.ndarray,
        noise: AliasTable,
        lr: float,
        rng: np.random.Generator,
    ) -> None:
        """One minibatch update: positives pulled together, negatives pushed."""
        cfg = self.config
        batch = centers.size
        center_vecs = w_in[centers]  # B x d (copies)

        grads_center = np.zeros_like(center_vecs)

        # Positive pairs: label 1.
        pos_vecs = w_out[positives]
        pos_scores = _sigmoid(np.einsum("bd,bd->b", center_vecs, pos_vecs))
        pos_coeff = (pos_scores - 1.0)[:, None]  # d loss / d score
        grads_center += pos_coeff * pos_vecs
        np.add.at(w_out, positives, -lr * pos_coeff * center_vecs)

        # Negative samples: label 0.
        negatives = noise.sample(batch * cfg.negatives, rng=rng).reshape(
            batch, cfg.negatives
        )
        neg_vecs = w_out[negatives]  # B x neg x d
        neg_scores = _sigmoid(np.einsum("bd,bnd->bn", center_vecs, neg_vecs))
        neg_coeff = neg_scores[:, :, None]
        grads_center += np.einsum("bnd->bd", neg_coeff * neg_vecs)
        flat_negatives = negatives.ravel()
        flat_updates = (-lr * neg_coeff * center_vecs[:, None, :]).reshape(
            -1, cfg.dimension
        )
        np.add.at(w_out, flat_negatives, flat_updates)

        np.add.at(w_in, centers, -lr * grads_center)
