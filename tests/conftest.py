"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    BlockModel,
    RatingModel,
    erdos_renyi_bipartite,
    figure1_graph,
    latent_factor_ratings,
    stochastic_block_bipartite,
)
from repro.graph import BipartiteGraph


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def figure1():
    """The paper's Figure 1 running-example graph."""
    return figure1_graph()


@pytest.fixture
def tiny_graph():
    """A 3x3 weighted graph small enough for hand calculation."""
    return BipartiteGraph.from_dense(
        [
            [1.0, 2.0, 0.0],
            [0.0, 1.0, 0.0],
            [0.0, 0.0, 3.0],
        ]
    )


@pytest.fixture
def random_graph():
    """A moderate random bipartite graph for numerical comparisons."""
    return erdos_renyi_bipartite(40, 25, 180, weighted=True, seed=7)


@pytest.fixture
def rating_graph():
    """A small latent-factor rating graph (for task-level tests)."""
    model = RatingModel(
        num_users=120,
        num_items=60,
        edges_per_user=12,
        num_factors=8,
        num_communities=4,
        noise=0.2,
    )
    return latent_factor_ratings(model, seed=3)


@pytest.fixture
def block_graph():
    """A small community-structured unweighted graph (for LP tests)."""
    model = BlockModel(
        num_u=150, num_v=120, num_blocks=4, num_edges=1800, in_out_ratio=9.0
    )
    return stochastic_block_bipartite(model, seed=5)
