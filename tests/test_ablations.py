"""Unit tests for the MHP-BNE and MHS-BNE ablations."""

import numpy as np
import pytest

from repro.core import MHPOnlyBNE, MHSOnlyBNE, PoissonPMF, mhp_matrix
from repro.core.preprocess import normalize_weights
from repro.graph import BipartiteGraph


class TestMHPOnly:
    def test_factorizes_truncated_p(self, random_graph):
        lam, tau, k = 1.0, 8, 6
        method = MHPOnlyBNE(
            dimension=k, lam=lam, tau=tau, epsilon=0.01,
            normalization="none", seed=0,
        )
        result = method.fit(random_graph)
        p = mhp_matrix(random_graph, PoissonPMF(lam=lam), tau)
        # U V^T must be (close to) the best rank-k approximation of P.
        u_svd, s_svd, vt_svd = np.linalg.svd(p, full_matrices=False)
        best = (u_svd[:, :k] * s_svd[:k]) @ vt_svd[:k]
        np.testing.assert_allclose(result.u @ result.v.T, best, atol=1e-5)

    def test_symmetric_scale_split(self, random_graph):
        result = MHPOnlyBNE(dimension=4, seed=0).fit(random_graph)
        u_norms = np.linalg.norm(result.u, axis=0)
        v_norms = np.linalg.norm(result.v, axis=0)
        # Both factors carry sqrt(sigma): per-column norms match.
        np.testing.assert_allclose(u_norms, v_norms, rtol=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            MHPOnlyBNE(lam=0.0)
        with pytest.raises(ValueError):
            MHPOnlyBNE(tau=-1)

    def test_metadata(self, random_graph):
        result = MHPOnlyBNE(dimension=4, seed=0).fit(random_graph)
        assert result.method == "MHP-BNE"
        assert result.metadata["tau"] == 20


class TestMHSOnly:
    def test_rows_approximately_unit(self, random_graph):
        result = MHSOnlyBNE(dimension=10, epsilon=0.01, seed=0).fit(random_graph)
        u_norms = np.linalg.norm(result.u, axis=1)
        # Norms are <= 1 (tail correction) and close to 1 for well-captured
        # nodes.
        assert (u_norms <= 1.0 + 1e-8).all()
        assert np.median(u_norms) > 0.5

    def test_preserves_u_side_similarity_ordering(self, figure1):
        result = MHSOnlyBNE(
            dimension=4, epsilon=0.01, normalization="none", seed=0
        ).fit(figure1)
        # u1/u2 share all neighbors; u2/u4 share only two: the normalized
        # embedding cosine must rank them accordingly (running example).
        cos_12 = result.u[0] @ result.u[1]
        cos_24 = result.u[1] @ result.u[3]
        assert cos_12 > cos_24

    def test_both_sides_embedded(self, random_graph):
        result = MHSOnlyBNE(dimension=5, seed=0).fit(random_graph)
        assert result.u.shape == (random_graph.num_u, 5)
        assert result.v.shape == (random_graph.num_v, 5)

    def test_v_side_tracks_shared_neighborhoods(self, figure1):
        result = MHSOnlyBNE(
            dimension=4, epsilon=0.01, normalization="none", seed=0
        ).fit(figure1)
        # v2, v3 share 3 neighbors; v1, v5 share none.
        cos_23 = result.v[1] @ result.v[2]
        cos_15 = result.v[0] @ result.v[4]
        assert cos_23 > cos_15

    def test_metadata(self, random_graph):
        result = MHSOnlyBNE(dimension=4, seed=0).fit(random_graph)
        assert result.method == "MHS-BNE"
        assert result.metadata["lambda"] == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            MHSOnlyBNE(lam=-1.0)
        with pytest.raises(ValueError):
            MHSOnlyBNE(tau=-5)
