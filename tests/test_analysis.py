"""Unit tests for the theorem-bound checks and spectral diagnostics."""

import numpy as np
import pytest

from repro.analysis import (
    captured_energy,
    check_theorem_3_1,
    check_theorem_5_1,
    effective_rank,
    loss_curve,
    singular_profile,
)
from repro.core import GEBEPoisson, PoissonPMF, UniformPMF
from repro.datasets import erdos_renyi_bipartite, figure1_graph


class TestTheorem31:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_bound_holds_on_figure1(self, k):
        check = check_theorem_3_1(figure1_graph(), PoissonPMF(lam=1.0), 10, k)
        assert check.holds
        assert check.measured_loss >= 0

    @pytest.mark.parametrize("k", [2, 5, 10])
    def test_bound_holds_on_random_weighted(self, k):
        graph = erdos_renyi_bipartite(30, 20, 150, weighted=True, seed=1)
        check = check_theorem_3_1(graph, PoissonPMF(lam=1.0), 8, k)
        assert check.holds

    def test_bound_holds_for_uniform_pmf(self):
        check = check_theorem_3_1(figure1_graph(), UniformPMF(tau=6), 6, 2)
        assert check.holds

    def test_loss_shrinks_with_k(self):
        graph = erdos_renyi_bipartite(25, 15, 120, seed=2)
        losses = [
            check_theorem_3_1(graph, PoissonPMF(lam=1.0), 6, k).measured_loss
            for k in (2, 6, 12)
        ]
        assert losses[0] >= losses[1] >= losses[2]

    def test_sigma_decreases_with_k(self):
        graph = erdos_renyi_bipartite(25, 15, 120, seed=2)
        sigmas = [
            check_theorem_3_1(graph, PoissonPMF(lam=1.0), 6, k).sigma_k_plus_1
            for k in (2, 6, 12)
        ]
        assert sigmas[0] >= sigmas[1] >= sigmas[2]

    def test_k_validated(self):
        with pytest.raises(ValueError):
            check_theorem_3_1(figure1_graph(), PoissonPMF(lam=1.0), 5, 0)
        with pytest.raises(ValueError):
            check_theorem_3_1(figure1_graph(), PoissonPMF(lam=1.0), 5, 4)


class TestTheorem51:
    @pytest.fixture
    def graph(self):
        return erdos_renyi_bipartite(30, 20, 150, weighted=True, seed=1)

    @pytest.mark.parametrize("k", [3, 6, 10])
    def test_bounds_hold(self, graph, k):
        check = check_theorem_5_1(graph, k, epsilon=0.1)
        assert check.holds

    def test_larger_epsilon_larger_bound(self, graph):
        tight = check_theorem_5_1(graph, 5, epsilon=0.05)
        loose = check_theorem_5_1(graph, 5, epsilon=0.5)
        assert loose.bound_uut > tight.bound_uut
        assert loose.bound_uv > tight.bound_uv

    def test_accepts_precomputed_result(self, graph):
        result = GEBEPoisson(
            dimension=4, normalization="sym", seed=0
        ).fit(graph)
        check = check_theorem_5_1(graph, 4, result=result)
        assert check.holds

    def test_k_validated(self, graph):
        with pytest.raises(ValueError):
            check_theorem_5_1(graph, 0)
        with pytest.raises(ValueError):
            check_theorem_5_1(graph, 20)


class TestSpectra:
    def test_singular_profile_sorted(self):
        graph = erdos_renyi_bipartite(40, 30, 250, seed=3)
        profile = singular_profile(graph, 8)
        assert profile.shape == (8,)
        assert (np.diff(profile) <= 1e-9).all()
        assert profile[0] == pytest.approx(1.0, abs=1e-6)  # sym normalization

    def test_captured_energy_monotone_to_one(self):
        captured = captured_energy(np.array([3.0, 2.0, 1.0]))
        assert (np.diff(captured) >= 0).all()
        assert captured[-1] == pytest.approx(1.0)
        assert captured[0] == pytest.approx(9.0 / 14.0)

    def test_effective_rank(self):
        values = np.array([10.0, 1.0, 1.0])
        # energy: 100, 1, 1 -> rank 1 captures 100/102 > 0.9
        assert effective_rank(values, 0.9) == 1
        assert effective_rank(values, 0.999) == 3

    def test_effective_rank_validated(self):
        with pytest.raises(ValueError):
            effective_rank(np.array([1.0]), 0.0)
        with pytest.raises(ValueError):
            captured_energy(np.array([]))

    def test_loss_curve_non_increasing(self):
        graph = erdos_renyi_bipartite(20, 15, 100, seed=4)
        losses = loss_curve(graph, PoissonPMF(lam=1.0), 6, [2, 5, 10, 20])
        for earlier, later in zip(losses, losses[1:]):
            assert later <= earlier + 1e-9

    def test_loss_curve_validates_k(self):
        with pytest.raises(ValueError):
            loss_curve(figure1_graph(), PoissonPMF(lam=1.0), 5, [0])
