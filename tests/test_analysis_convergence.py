"""Unit tests for KSI convergence diagnostics and the dataset cache."""

import numpy as np
import pytest

from repro.analysis import (
    ConvergenceTrace,
    iterations_to_tolerance,
    trace_subspace_iteration,
)
from repro.core import PoissonPMF
from repro.datasets import DatasetCache, erdos_renyi_bipartite


@pytest.fixture(scope="module")
def graph():
    """A block graph: planted structure gives the top-k a real eigengap."""
    from repro.datasets import BlockModel, stochastic_block_bipartite

    model = BlockModel(
        num_u=80, num_v=60, num_blocks=4, num_edges=900, in_out_ratio=10.0
    )
    return stochastic_block_bipartite(model, seed=2)


class TestConvergenceTrace:
    def test_records_every_iteration(self, graph):
        trace = trace_subspace_iteration(
            graph, PoissonPMF(lam=1.0), 6, 4, max_iterations=15
        )
        assert trace.iterations == 15
        assert trace.ritz_values.shape == (15, 4)

    def test_distances_shrink(self, graph):
        trace = trace_subspace_iteration(
            graph, PoissonPMF(lam=1.0), 6, 4, max_iterations=40
        )
        # Convergent iteration: the tail moves far less than the head.
        assert trace.distances[-1] < 0.05 * max(trace.distances[0], 1e-12)

    def test_ritz_values_stabilize(self, graph):
        trace = trace_subspace_iteration(
            graph, PoissonPMF(lam=1.0), 6, 3, max_iterations=60
        )
        late = trace.ritz_values[-1]
        earlier = trace.ritz_values[-5]
        np.testing.assert_allclose(late, earlier, rtol=1e-3)

    def test_gapless_spectrum_plateaus(self):
        """ER graphs have a near-continuum bulk spectrum: KSI keeps
        rotating inside the eigenvalue cluster and never reaches tight
        tolerances — the behavior motivating the paper's t = 200 budget."""
        er = erdos_renyi_bipartite(60, 40, 400, seed=2)
        needed = iterations_to_tolerance(
            er, PoissonPMF(lam=1.0), 6, 4, tolerance=1e-6,
            max_iterations=100,
        )
        assert needed is None

    def test_iterations_to_tolerance(self, graph):
        needed = iterations_to_tolerance(
            graph, PoissonPMF(lam=1.0), 6, 4, tolerance=1e-3,
            max_iterations=200,
        )
        assert needed is not None
        assert needed < 200  # below the paper's worst-case budget

    def test_budget_exhaustion_returns_none(self, graph):
        needed = iterations_to_tolerance(
            graph, PoissonPMF(lam=1.0), 6, 4, tolerance=0.0,
            max_iterations=5,
        )
        assert needed is None

    def test_iterations_to_helper(self):
        trace = ConvergenceTrace(distances=[1.0, 0.1, 0.001])
        assert trace.iterations_to(0.5) == 2
        assert trace.iterations_to(1e-9) is None

    def test_validation(self, graph):
        with pytest.raises(ValueError):
            trace_subspace_iteration(
                graph, PoissonPMF(lam=1.0), 6, 4, max_iterations=0
            )


class TestDatasetCache:
    def test_generate_then_hit(self, tmp_path):
        cache = DatasetCache(tmp_path / "zoo")
        assert not cache.has("dblp", 0)
        first = cache.load("dblp", seed=0)
        assert cache.has("dblp", 0)
        second = cache.load("dblp", seed=0)
        assert first == second

    def test_entries_listing(self, tmp_path):
        cache = DatasetCache(tmp_path / "zoo")
        assert cache.entries() == []
        cache.load("dblp", seed=0)
        cache.load("dblp", seed=1)
        assert cache.entries() == ["dblp-seed0.npz", "dblp-seed1.npz"]

    def test_invalidate_specific(self, tmp_path):
        cache = DatasetCache(tmp_path / "zoo")
        cache.load("dblp", seed=0)
        cache.load("dblp", seed=1)
        assert cache.invalidate("dblp", 0) == 1
        assert cache.entries() == ["dblp-seed1.npz"]

    def test_invalidate_all(self, tmp_path):
        cache = DatasetCache(tmp_path / "zoo")
        cache.load("dblp", seed=0)
        assert cache.invalidate() == 1
        assert cache.entries() == []

    def test_invalidate_empty_dir(self, tmp_path):
        cache = DatasetCache(tmp_path / "missing")
        assert cache.invalidate() == 0

    def test_invalidate_escapes_glob_metacharacters(self, tmp_path):
        # Regression: invalidate("x*") used to glob-expand the name and
        # delete unrelated entries.
        directory = tmp_path / "zoo"
        directory.mkdir()
        (directory / "x-seed0.npz").touch()
        (directory / "xy-seed0.npz").touch()
        cache = DatasetCache(directory)
        assert cache.invalidate("x*") == 0
        assert cache.invalidate("x?") == 0
        assert cache.invalidate("[xy]") == 0
        assert cache.entries() == ["x-seed0.npz", "xy-seed0.npz"]
        assert cache.invalidate("x") == 1
        assert cache.entries() == ["xy-seed0.npz"]
