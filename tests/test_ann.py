"""Differential and property tests for the IVF ANN index (repro.ann).

The load-bearing contract: at full probe (``nprobe = n_cells``) the index
must produce lists *element-identical* to the exact
:class:`~repro.tasks.topk.TopKEngine` — same items, same order, same
tie-breaks — because the rerank runs the same staged-``V.T`` float64 GEMM
and the same :func:`~repro.core.selection.select_topn`.  Partial probes
trade recall for latency along a measured, monotone knob.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.ann import (
    DEFAULT_CELLS,
    IVFIndex,
    assign_clusters,
    kmeans_fit,
)
from repro.graph import BipartiteGraph
from repro.linalg.parallel import ExecPolicy
from repro.serve import ArtifactError
from repro.tasks import TopKEngine


def _clustered(num_items=500, num_queries=40, dimension=16, centers=8, seed=42):
    rng = np.random.default_rng(seed)
    c = rng.standard_normal((centers, dimension))
    v = c[rng.integers(0, centers, size=num_items)]
    v = v + 0.2 * rng.standard_normal(v.shape)
    u = c[rng.integers(0, centers, size=num_queries)]
    u = u + 0.2 * rng.standard_normal(u.shape)
    return u, v


@pytest.fixture(scope="module")
def clustered():
    return _clustered()


@pytest.fixture(scope="module")
def clustered_index(clustered):
    _, v = clustered
    return IVFIndex.build(v, n_cells=25, seed=0)


class TestFullProbeDifferential:
    @pytest.mark.parametrize("block_rows", [1, 7, 64, 256])
    def test_identical_to_engine_at_every_block_size(
        self, clustered, clustered_index, block_rows
    ):
        u, v = clustered
        engine = TopKEngine(u, v, block_rows=block_rows)
        expected = engine.top_items(10)
        items = clustered_index.search(u, 10, nprobe=clustered_index.n_cells)
        np.testing.assert_array_equal(items, expected)

    def test_nprobe_none_means_full_probe(self, clustered, clustered_index):
        u, v = clustered
        expected = TopKEngine(u, v).top_items(10)
        np.testing.assert_array_equal(
            clustered_index.search(u, 10), expected
        )

    def test_scores_identical_to_engine(self, clustered, clustered_index):
        u, v = clustered
        # The full-probe search scores one query row at a time, so the
        # bitwise claim is against the engine's block_rows=1 GEMM — the
        # identical (1, k) @ (k, m) call on the same staged V.T.  (Wider
        # engine blocks may differ by ULPs; the *lists* stay identical,
        # which test_identical_to_engine_at_every_block_size pins.)
        engine = TopKEngine(u, v, block_rows=1)
        expected_items = np.vstack(
            [block[1] for block in engine.iter_top_items(10, with_scores=True)]
        )
        expected_scores = np.vstack(
            [block[2] for block in engine.iter_top_items(10, with_scores=True)]
        )
        items, scores = clustered_index.search(u, 10, with_scores=True)
        np.testing.assert_array_equal(items, expected_items)
        np.testing.assert_array_equal(scores, expected_scores)

    def test_identical_with_exclusion(self, clustered, clustered_index):
        u, v = clustered
        rng = np.random.default_rng(7)
        mask = (rng.random((u.shape[0], v.shape[0])) < 0.02).astype(float)
        graph = BipartiteGraph.from_dense(mask)
        users = np.arange(u.shape[0], dtype=np.int64)
        expected = TopKEngine(u, v).top_items(10, exclude=graph)
        items = clustered_index.search(u, 10, exclude=graph, users=users)
        np.testing.assert_array_equal(items, expected)

    def test_identical_under_total_ties(self):
        # Integer embeddings engineered so many items tie exactly: the
        # deterministic (score desc, id asc) order must survive the
        # gather/rerank round trip.
        rng = np.random.default_rng(3)
        u = rng.integers(0, 2, size=(12, 6)).astype(np.float64)
        v = rng.integers(0, 2, size=(90, 6)).astype(np.float64)
        index = IVFIndex.build(v, n_cells=9, seed=0)
        expected = TopKEngine(u, v).top_items(15)
        items = index.search(u, 15, nprobe=index.n_cells)
        np.testing.assert_array_equal(items, expected)

    def test_exclusion_requires_users(self, clustered, clustered_index):
        u, v = clustered
        graph = BipartiteGraph.from_dense(np.ones((u.shape[0], v.shape[0])))
        with pytest.raises(ValueError, match="users"):
            clustered_index.search(u, 5, exclude=graph)


class TestRecallKnob:
    def test_recall_monotone_non_decreasing_in_nprobe(
        self, clustered, clustered_index
    ):
        u, v = clustered
        exact = TopKEngine(u, v).top_items(10)
        recalls, candidates = [], []
        probes = [1, 2, 4, 8, 16, clustered_index.n_cells]
        for nprobe in probes:
            items, stats = clustered_index.search(
                u, 10, nprobe=nprobe, return_stats=True
            )
            recalls.append(
                np.mean(
                    [np.isin(exact[i], items[i]).mean() for i in range(len(u))]
                )
            )
            candidates.append(stats["candidates"])
        assert recalls == sorted(recalls)
        assert candidates == sorted(candidates)
        assert recalls[-1] == 1.0
        assert candidates[-1] == len(u) * clustered_index.num_items

    def test_partial_probe_pads_when_starved(self):
        # One probed cell can hold fewer items than n: the row is
        # right-padded with -1 ids and -inf scores.
        rng = np.random.default_rng(5)
        v = rng.standard_normal((30, 4))
        index = IVFIndex.build(v, n_cells=10, seed=0)
        smallest = int(index.cell_sizes().min())
        items, scores = index.search(
            v[:3], 25, nprobe=1, with_scores=True
        )
        assert items.shape == (3, 25)
        for row in range(3):
            real = items[row] >= 0
            assert real.sum() <= int(index.cell_sizes().max())
            assert np.all(items[row][~real] == -1)
            assert np.all(np.isneginf(scores[row][~real]))
        assert smallest >= 0  # cells may legally be tiny or empty

    def test_bad_nprobe_rejected(self, clustered, clustered_index):
        u, _ = clustered
        with pytest.raises(ValueError, match="nprobe"):
            clustered_index.search(u, 5, nprobe=0)


class TestInvertedListProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        n=st.integers(1, 60),
        k=st.integers(1, 6),
        cells=st.integers(1, 80),
        seed=st.integers(0, 2**16),
    )
    def test_every_item_in_exactly_one_cell(self, n, k, cells, seed):
        rng = np.random.default_rng(seed)
        v = rng.standard_normal((n, k))
        index = IVFIndex.build(v, n_cells=cells, seed=seed)
        # Cell count is clipped to the item count, never beyond.
        assert 1 <= index.n_cells <= min(cells, n)
        offsets = index.cell_offsets
        assert offsets[0] == 0 and offsets[-1] == n
        assert np.all(np.diff(offsets) >= 0)
        # The inverted lists are a permutation of arange(n): every item in
        # exactly one cell, ids ascending inside each cell.
        np.testing.assert_array_equal(np.sort(index.cell_items), np.arange(n))
        for cell in range(index.n_cells):
            members = index.cell_items[offsets[cell] : offsets[cell + 1]]
            assert np.all(np.diff(members) > 0)

    def test_empty_cells_are_legal_and_searchable(self):
        # All-duplicate points collapse into one cluster; the other cells
        # stay empty and search must still match the exact engine.
        v = np.ones((20, 3))
        index = IVFIndex.build(v, n_cells=5, seed=0)
        assert (index.cell_sizes() == 0).any()
        u = np.ones((4, 3))
        expected = TopKEngine(u, v).top_items(6)
        np.testing.assert_array_equal(
            index.search(u, 6, nprobe=index.n_cells), expected
        )
        # Probing only empty-ish cells still answers (possibly padded).
        items = index.search(u, 6, nprobe=1)
        assert items.shape == (4, 6)

    def test_n_larger_than_num_items(self, clustered, clustered_index):
        # k > n_items clips the list width exactly like the engine.
        u, v = clustered
        small = IVFIndex.build(v[:7], n_cells=3, seed=0)
        expected = TopKEngine(u, v[:7]).top_items(50)
        items = small.search(u, 50, nprobe=small.n_cells)
        assert items.shape == expected.shape == (u.shape[0], 7)
        np.testing.assert_array_equal(items, expected)

    def test_default_cells_heuristic(self):
        assert DEFAULT_CELLS(1) == 1
        assert DEFAULT_CELLS(100) == 10
        assert DEFAULT_CELLS(1_000_000) == 1000
        assert DEFAULT_CELLS(2) <= 2


class TestKMeans:
    def test_deterministic_given_seed(self):
        rng = np.random.default_rng(1)
        points = rng.standard_normal((200, 5))
        a_centroids, a_labels = kmeans_fit(points, 8, seed=9)
        b_centroids, b_labels = kmeans_fit(points, 8, seed=9)
        np.testing.assert_array_equal(a_centroids, b_centroids)
        np.testing.assert_array_equal(a_labels, b_labels)

    def test_labels_are_nearest_centroid(self):
        rng = np.random.default_rng(2)
        points = rng.standard_normal((150, 4))
        centroids, labels = kmeans_fit(points, 6, seed=0)
        expected, _ = assign_clusters(points, centroids)
        np.testing.assert_array_equal(labels, expected)

    def test_assign_ties_break_to_smallest_index(self):
        points = np.zeros((3, 2))
        centroids = np.zeros((4, 2))  # every centroid equidistant
        labels, distances = assign_clusters(points, centroids)
        np.testing.assert_array_equal(labels, np.zeros(3, dtype=labels.dtype))
        np.testing.assert_allclose(distances, 0.0, atol=1e-12)

    def test_cluster_count_clamped_to_points(self):
        points = np.random.default_rng(0).standard_normal((5, 3))
        centroids, labels = kmeans_fit(points, 50, seed=0)
        assert centroids.shape[0] <= 5
        assert labels.max() < centroids.shape[0]


class TestPersistence:
    def test_save_load_round_trip(self, clustered, clustered_index, tmp_path):
        u, v = clustered
        path = tmp_path / "index-ivf.npz"
        clustered_index.save(path)
        loaded = IVFIndex.load(path, v)
        np.testing.assert_array_equal(
            loaded.search(u, 10, nprobe=4),
            clustered_index.search(u, 10, nprobe=4),
        )
        assert loaded.v_checksum == clustered_index.v_checksum
        assert loaded.n_cells == clustered_index.n_cells

    def test_load_rejects_dimension_mismatch(
        self, clustered, clustered_index, tmp_path
    ):
        _, v = clustered
        path = tmp_path / "index-ivf.npz"
        clustered_index.save(path)
        with pytest.raises(ArtifactError, match="dimension"):
            IVFIndex.load(path, v[:, :-1])

    def test_load_rejects_item_count_mismatch(
        self, clustered, clustered_index, tmp_path
    ):
        _, v = clustered
        path = tmp_path / "index-ivf.npz"
        clustered_index.save(path)
        with pytest.raises(ArtifactError, match="rebuild"):
            IVFIndex.load(path, v[:-1])

    def test_load_rejects_content_drift(
        self, clustered, clustered_index, tmp_path
    ):
        # Same shape, different bytes: the "index built from artifact v3,
        # served against v4" failure mode.  The digest catches it.
        _, v = clustered
        path = tmp_path / "index-ivf.npz"
        clustered_index.save(path)
        tampered = v.copy()
        tampered[0, 0] += 1.0
        with pytest.raises(ArtifactError, match="different artifact version"):
            IVFIndex.load(path, tampered)

    def test_load_rejects_garbage_file(self, clustered, tmp_path):
        _, v = clustered
        path = tmp_path / "index-ivf.npz"
        path.write_bytes(b"not an npz")
        with pytest.raises(ArtifactError):
            IVFIndex.load(path, v)

    def test_meta_records_provenance(self, clustered):
        _, v = clustered
        index = IVFIndex.build(v, n_cells=4, seed=11, source="toy@v1")
        meta = index.meta()
        assert meta["schema"] == "repro.ann.ivf"
        assert meta["seed"] == 11
        assert meta["source"] == "toy@v1"
        assert meta["num_items"] == v.shape[0]
        assert meta["v_checksum"]


class TestObservability:
    def test_counters_report_probes_and_candidates(
        self, clustered, clustered_index
    ):
        u, _ = clustered
        with obs.collect() as collector:
            _, stats = clustered_index.search(
                u, 10, nprobe=3, return_stats=True
            )
        assert collector.ops.ann_probes == len(u) * 3
        assert collector.ops.ann_probes == stats["probed_cells"]
        assert collector.ops.ann_candidates == stats["candidates"]
        assert collector.ops.gemms >= 1  # the centroid routing GEMM


class TestKMeansThreadInvariance:
    """The satellite pin: the assignment sweep's span partition depends on
    ``_CHUNK_ENTRIES`` alone, never the thread count, so routing the
    distance GEMMs through ``ParallelExecutor`` is bit-invisible — same
    labels, same distances, same GEMM tally at every ``n_threads``."""

    def test_assignments_bit_identical_and_counters_pinned(self, monkeypatch):
        import repro.ann.kmeans as kmeans_mod

        monkeypatch.setattr(kmeans_mod, "_CHUNK_ENTRIES", 640)
        rng = np.random.default_rng(5)
        points = rng.standard_normal((300, 6))
        centroids = rng.standard_normal((10, 6))
        # chunk = 640 // 10 = 64 points -> ceil(300 / 64) = 5 spans.
        serial = ExecPolicy(n_threads=1, serial_threshold=0)
        with obs.collect() as baseline:
            ref_labels, ref_distances = assign_clusters(
                points, centroids, exec_policy=serial
            )
        assert baseline.ops.gemms == 5
        assert baseline.threads == 1
        for n_threads in (2, 4):
            policy = ExecPolicy(n_threads=n_threads, serial_threshold=0)
            with obs.collect() as collector:
                labels, distances = assign_clusters(
                    points, centroids, exec_policy=policy
                )
            np.testing.assert_array_equal(labels, ref_labels)
            np.testing.assert_array_equal(distances, ref_distances)
            # One GEMM per span — the tally must not shift with threads.
            assert collector.ops.gemms == 5
            assert collector.threads == min(n_threads, 5)

    def test_kmeans_fit_bit_identical_across_thread_counts(self):
        rng = np.random.default_rng(7)
        points = rng.standard_normal((240, 5))
        serial = ExecPolicy(n_threads=1, serial_threshold=0)
        ref_centroids, ref_labels = kmeans_fit(
            points, 8, seed=3, exec_policy=serial
        )
        for n_threads in (2, 4):
            policy = ExecPolicy(n_threads=n_threads, serial_threshold=0)
            centroids, labels = kmeans_fit(
                points, 8, seed=3, exec_policy=policy
            )
            np.testing.assert_array_equal(centroids, ref_centroids)
            np.testing.assert_array_equal(labels, ref_labels)

    def test_index_build_unchanged_by_exec_policy(self):
        _, v = _clustered(num_items=200, num_queries=1, seed=13)
        reference = IVFIndex.build(v, n_cells=12, seed=0)
        threaded = IVFIndex.build(
            v,
            n_cells=12,
            seed=0,
            exec_policy=ExecPolicy(n_threads=4, serial_threshold=0),
        )
        np.testing.assert_array_equal(
            reference.centroids, threaded.centroids
        )
        np.testing.assert_array_equal(
            reference.cell_offsets, threaded.cell_offsets
        )
        np.testing.assert_array_equal(
            reference.cell_items, threaded.cell_items
        )
