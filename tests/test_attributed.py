"""Unit tests for the attributed-graph extension (paper's future work)."""

import numpy as np
import pytest

from repro.core import AttributedGEBE, GEBEPoisson, smooth_attributes
from repro.datasets import BlockModel, stochastic_block_bipartite
from repro.tasks import LinkPredictionTask


@pytest.fixture
def attributed_setup():
    """A block graph whose node attributes encode the (noisy) block id."""
    model = BlockModel(
        num_u=200, num_v=160, num_blocks=4, num_edges=1200, in_out_ratio=8.0
    )
    graph, blocks_u, blocks_v = stochastic_block_bipartite(
        model, seed=7, return_blocks=True
    )
    rng = np.random.default_rng(0)
    eye = np.eye(4)
    x_u = eye[blocks_u] + 0.3 * rng.standard_normal((graph.num_u, 4))
    x_v = eye[blocks_v] + 0.3 * rng.standard_normal((graph.num_v, 4))
    return graph, x_u, x_v, blocks_u, blocks_v


class TestSmoothAttributes:
    def test_shared_space_dimensions(self, attributed_setup):
        graph, x_u, x_v, _, _ = attributed_setup
        smoothed_u, smoothed_v = smooth_attributes(graph, x_u, x_v)
        assert smoothed_u.shape == (graph.num_u, 8)
        assert smoothed_v.shape == (graph.num_v, 8)

    def test_cross_side_block_alignment(self, attributed_setup):
        graph, x_u, x_v, blocks_u, blocks_v = attributed_setup
        smoothed_u, smoothed_v = smooth_attributes(graph, x_u, x_v)
        # A U-node and a V-node of the SAME block should be closer in the
        # shared space than nodes of different blocks, on average.
        same = []
        different = []
        rng = np.random.default_rng(1)
        for _ in range(400):
            i = int(rng.integers(graph.num_u))
            j = int(rng.integers(graph.num_v))
            distance = float(np.linalg.norm(smoothed_u[i] - smoothed_v[j]))
            (same if blocks_u[i] == blocks_v[j] else different).append(distance)
        assert np.mean(same) < np.mean(different)

    def test_self_weight_extremes(self, attributed_setup):
        graph, x_u, x_v, _, _ = attributed_setup
        own_only_u, _ = smooth_attributes(graph, x_u, x_v, self_weight=1.0)
        np.testing.assert_allclose(own_only_u[:, :4], x_u)
        np.testing.assert_allclose(own_only_u[:, 4:], 0.0)

    def test_validation(self, attributed_setup):
        graph, x_u, x_v, _, _ = attributed_setup
        with pytest.raises(ValueError):
            smooth_attributes(graph, x_u, x_v, self_weight=1.5)
        with pytest.raises(ValueError):
            smooth_attributes(graph, x_u[:-1], x_v)


class TestAttributedGEBE:
    def test_shapes(self, attributed_setup):
        graph, x_u, x_v, _, _ = attributed_setup
        result = AttributedGEBE(x_u, x_v, dimension=16, seed=0).fit(graph)
        assert result.u.shape == (graph.num_u, 16)
        assert result.v.shape == (graph.num_v, 16)
        assert result.metadata["topology_dimension"] == 12
        assert result.metadata["attribute_dimension"] == 4

    def test_reduces_to_gebe_p_at_fraction_one(self, attributed_setup):
        graph, x_u, x_v, _, _ = attributed_setup
        attributed = AttributedGEBE(
            x_u, x_v, dimension=8, topology_fraction=1.0, seed=0
        ).fit(graph)
        plain = GEBEPoisson(dimension=8, seed=0).fit(graph)
        np.testing.assert_allclose(attributed.u, plain.u)
        np.testing.assert_allclose(attributed.v, plain.v)

    def test_attributes_only_mode(self, attributed_setup):
        graph, x_u, x_v, _, _ = attributed_setup
        result = AttributedGEBE(
            x_u, x_v, dimension=4, topology_fraction=0.0, seed=0
        ).fit(graph)
        assert result.metadata["topology_dimension"] == 0
        assert np.isfinite(result.u).all()

    def test_attributes_help_link_prediction(self, attributed_setup):
        graph, x_u, x_v, _, _ = attributed_setup
        task = LinkPredictionTask(graph, seed=0)
        plain = task.run(GEBEPoisson(dimension=16, seed=0))
        augmented = task.run(
            AttributedGEBE(
                x_u, x_v, dimension=16, topology_fraction=0.5, seed=0
            )
        )
        # Attributes encode the planted blocks: they must not hurt, and on
        # this sparse graph they should help.
        assert augmented.auc_roc >= plain.auc_roc - 0.01

    def test_deterministic(self, attributed_setup):
        graph, x_u, x_v, _, _ = attributed_setup
        a = AttributedGEBE(x_u, x_v, dimension=12, seed=3).fit(graph)
        b = AttributedGEBE(x_u, x_v, dimension=12, seed=3).fit(graph)
        np.testing.assert_array_equal(a.u, b.u)

    def test_validation(self, attributed_setup):
        graph, x_u, x_v, _, _ = attributed_setup
        with pytest.raises(ValueError):
            AttributedGEBE(x_u, x_v, topology_fraction=2.0)
        with pytest.raises(ValueError):
            AttributedGEBE(x_u, x_v, attribute_weight=-1.0)
        with pytest.raises(ValueError):
            AttributedGEBE(x_u.ravel(), x_v)
        method = AttributedGEBE(x_u[:-1], x_v, dimension=8)
        with pytest.raises(ValueError, match="row counts"):
            method.fit(graph)
