"""Unit tests for EmbeddingResult and the BipartiteEmbedder interface."""

import numpy as np
import pytest

from repro.core.base import BipartiteEmbedder, EmbeddingResult
from repro.graph import BipartiteGraph


@pytest.fixture
def result(rng):
    return EmbeddingResult(
        u=rng.standard_normal((4, 3)),
        v=rng.standard_normal((5, 3)),
        method="test",
    )


class TestEmbeddingResult:
    def test_dimension(self, result):
        assert result.dimension == 3

    def test_score_is_dot_product(self, result):
        assert result.score(1, 2) == pytest.approx(
            float(result.u[1] @ result.v[2])
        )

    def test_score_matrix(self, result):
        np.testing.assert_allclose(
            result.score_matrix(), result.u @ result.v.T
        )

    def test_scores_for_u(self, result):
        np.testing.assert_allclose(
            result.scores_for_u(0), result.score_matrix()[0]
        )

    def test_normalized_rows_unit(self, result):
        norms = np.linalg.norm(result.normalized_u(), axis=1)
        np.testing.assert_allclose(norms, 1.0)

    def test_normalized_handles_zero_rows(self):
        result = EmbeddingResult(u=np.zeros((2, 3)), v=np.ones((1, 3)))
        assert np.isfinite(result.normalized_u()).all()

    def test_edge_features_concatenation(self, result):
        features = result.edge_features(np.array([0, 1]), np.array([2, 3]))
        assert features.shape == (2, 6)
        np.testing.assert_allclose(features[0, :3], result.u[0])
        np.testing.assert_allclose(features[0, 3:], result.v[2])

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError, match="mismatch"):
            EmbeddingResult(u=np.zeros((2, 3)), v=np.zeros((2, 4)))

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError, match="2-D"):
            EmbeddingResult(u=np.zeros(3), v=np.zeros((2, 3)))


class _ConstantEmbedder(BipartiteEmbedder):
    name = "constant"

    def _embed(self, graph):
        u = np.ones((graph.num_u, self.dimension))
        v = np.ones((graph.num_v, self.dimension))
        return u, v, {"note": "constant"}


class TestBipartiteEmbedder:
    def test_fit_packages_result(self, figure1):
        result = _ConstantEmbedder(dimension=2).fit(figure1)
        assert result.method == "constant"
        assert result.metadata["note"] == "constant"
        assert result.elapsed_seconds >= 0
        assert result.u.shape == (4, 2)

    def test_empty_graph_rejected(self):
        graph = BipartiteGraph.from_dense(np.zeros((0, 2)))
        with pytest.raises(ValueError, match="empty side"):
            _ConstantEmbedder().fit(graph)

    def test_invalid_dimension(self):
        with pytest.raises(ValueError):
            _ConstantEmbedder(dimension=0)

    def test_rng_respects_seed(self):
        a = _ConstantEmbedder(seed=5)._rng().random(3)
        b = _ConstantEmbedder(seed=5)._rng().random(3)
        np.testing.assert_array_equal(a, b)


class TestQueryHelpers:
    def test_top_items_order_and_exclusion(self, result):
        top = result.top_items(0, 3)
        scores = result.scores_for_u(0)
        assert list(scores[top]) == sorted(scores, reverse=True)[:3]
        excluded = result.top_items(0, 3, exclude=np.array([top[0]]))
        assert top[0] not in excluded

    def test_top_items_caps_at_v_count(self, result):
        assert result.top_items(0, 50).shape == (5,)

    def test_most_similar_u_excludes_self(self, result):
        similar = result.most_similar_u(1, n=3)
        assert 1 not in similar
        assert similar.shape == (3,)

    def test_most_similar_matches_cosine_ranking(self, result):
        unit = result.normalized_u()
        cosines = unit @ unit[2]
        cosines[2] = -np.inf
        expected = np.argsort(-cosines)[:2]
        np.testing.assert_array_equal(result.most_similar_u(2, n=2), expected)

    def test_most_similar_v(self, result):
        similar = result.most_similar_v(0, n=4)
        assert 0 not in similar
        assert len(set(similar.tolist())) == 4

    def test_most_similar_single_node(self):
        single = EmbeddingResult(u=np.ones((1, 2)), v=np.ones((2, 2)))
        assert single.most_similar_u(0).size == 0
