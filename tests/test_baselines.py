"""Cross-cutting tests over every registered baseline method.

Each method must satisfy the embedder contract: correct shapes, seeded
determinism, finite values, and metadata.  These run on a small graph with
down-scaled training schedules so the whole matrix stays fast.
"""

import numpy as np
import pytest

from repro.baselines import (
    BPR,
    CSE,
    GCMC,
    LCFN,
    LINE,
    NCF,
    NGCF,
    NRP,
    SCF,
    BiGI,
    BiNE,
    DeepWalk,
    LRGCCF,
    LightGCN,
    Node2Vec,
    make_method,
    method_names,
)
from repro.baselines.registry import COMPETITORS, METHODS, PROPOSED


def quick_factory(cls, **kwargs):
    """A zero-argument factory with a laptop-test training schedule."""
    defaults = {"dimension": 8, "seed": 0}
    defaults.update(kwargs)
    return lambda: cls(**defaults)


QUICK_FACTORIES = [
    quick_factory(DeepWalk, walks_per_node=2, walk_length=8, epochs=1),
    quick_factory(Node2Vec, walks_per_node=2, walk_length=8, epochs=1),
    quick_factory(LINE, samples_per_edge=3),
    quick_factory(NRP, tau=4),
    quick_factory(BPR, epochs=3),
    quick_factory(NCF, epochs=2, hidden=(8,)),
    quick_factory(BiGI, epochs=2, hidden=(8,)),
    quick_factory(BiNE, total_walks_factor=2, walk_length=5, edge_epochs=1),
    quick_factory(CSE, walks_per_node=2, walk_length=6),
    quick_factory(GCMC, epochs=3),
    quick_factory(NGCF, epochs=3),
    quick_factory(LightGCN, epochs=3),
    quick_factory(LRGCCF, epochs=3),
    quick_factory(SCF, epochs=3),
    quick_factory(LCFN, epochs=3, num_frequencies=8),
]


@pytest.mark.parametrize(
    "factory", QUICK_FACTORIES, ids=lambda f: f().name
)
class TestEmbedderContract:
    def test_shapes_and_finite(self, factory, block_graph):
        method = factory()
        result = method.fit(block_graph)
        assert result.u.shape == (block_graph.num_u, 8)
        assert result.v.shape == (block_graph.num_v, 8)
        assert np.isfinite(result.u).all()
        assert np.isfinite(result.v).all()
        assert result.method == method.name

    def test_deterministic_with_seed(self, factory, block_graph):
        first = factory().fit(block_graph)
        second = factory().fit(block_graph)
        np.testing.assert_allclose(first.u, second.u)
        np.testing.assert_allclose(first.v, second.v)


class TestRegistry:
    def test_twenty_one_methods(self):
        assert len(METHODS) == 21
        assert len(PROPOSED) == 6
        assert len(COMPETITORS) == 15

    def test_all_fifteen_paper_competitors(self):
        expected = {
            "BiNE", "BiGI", "DeepWalk", "node2vec", "LINE", "NRP", "BPR",
            "NCF", "NGCF", "LightGCN", "GCMC", "CSE", "LCFN", "LR-GCCF", "SCF",
        }
        assert set(COMPETITORS) == expected

    def test_make_method_names_match(self):
        for name in method_names():
            method = make_method(name, dimension=4, seed=0)
            assert method.name == name

    def test_make_method_unknown(self):
        with pytest.raises(KeyError):
            make_method("GloVe")

    def test_group_filters(self):
        assert method_names("proposed") == list(PROPOSED)
        assert method_names("competitors") == list(COMPETITORS)
        with pytest.raises(ValueError):
            method_names("neural")

    def test_dimension_and_seed_forwarded(self):
        method = make_method("BPR", dimension=12, seed=7)
        assert method.dimension == 12
        assert method.seed == 7
