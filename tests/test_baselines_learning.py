"""Learning-behavior tests: every baseline must beat random embeddings.

The contract tests check shapes and determinism; these check that training
actually *learns*: on a community-structured graph, each method's link
prediction AUC must clear an untrained random-embedding control by a clear
margin.  This catches silently-broken gradients or sampling (a method that
does nothing still produces valid shapes).
"""

import numpy as np
import pytest

from repro.baselines import (
    BPR,
    CSE,
    GCMC,
    LCFN,
    LINE,
    NCF,
    NGCF,
    NRP,
    SCF,
    BiGI,
    BiNE,
    DeepWalk,
    LRGCCF,
    LightGCN,
    Node2Vec,
)
from repro.core.base import EmbeddingResult
from repro.datasets import BlockModel, stochastic_block_bipartite
from repro.tasks import LinkPredictionTask, evaluate_link_prediction


@pytest.fixture(scope="module")
def lp_task():
    model = BlockModel(
        num_u=300, num_v=240, num_blocks=4, num_edges=4200, in_out_ratio=9.0
    )
    graph = stochastic_block_bipartite(model, seed=11)
    return LinkPredictionTask(graph, seed=0)


@pytest.fixture(scope="module")
def random_auc(lp_task):
    rng = np.random.default_rng(99)
    control = EmbeddingResult(
        u=rng.standard_normal((lp_task.graph.num_u, 16)),
        v=rng.standard_normal((lp_task.graph.num_v, 16)),
        method="random-control",
    )
    return evaluate_link_prediction(control, lp_task.data).auc_roc


LEARNING_CONFIGS = [
    DeepWalk(16, walks_per_node=5, walk_length=20, epochs=1, seed=0),
    Node2Vec(16, walks_per_node=5, walk_length=20, epochs=1, seed=0),
    LINE(16, samples_per_edge=20, seed=0),
    NRP(16, seed=0),
    BPR(16, epochs=15, seed=0),
    NCF(16, epochs=10, hidden=(16,), seed=0),
    BiGI(16, epochs=30, hidden=(16,), seed=0),
    BiNE(16, total_walks_factor=5, walk_length=10, edge_epochs=2, seed=0),
    CSE(16, walks_per_node=8, walk_length=14, seed=0),
    GCMC(16, epochs=8, seed=0),
    NGCF(16, epochs=8, seed=0),
    LightGCN(16, epochs=8, seed=0),
    LRGCCF(16, epochs=8, seed=0),
    SCF(16, epochs=8, seed=0),
    LCFN(16, epochs=8, num_frequencies=24, seed=0),
]


@pytest.mark.parametrize("method", LEARNING_CONFIGS, ids=lambda m: m.name)
def test_beats_random_control(method, lp_task, random_auc):
    report = lp_task.run(method)
    assert report.auc_roc > random_auc + 0.05, (
        f"{method.name}: {report.auc_roc:.3f} vs random {random_auc:.3f}"
    )
