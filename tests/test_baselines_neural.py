"""Unit tests for the numpy MLP substrate — including gradient checks."""

import numpy as np
import pytest

from repro.baselines import MLP, Adam, DenseLayer


def numerical_gradient(f, x, eps=1e-6):
    """Central-difference gradient of a scalar function of an array."""
    grad = np.zeros_like(x)
    flat = x.ravel()
    grad_flat = grad.ravel()
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = f()
        flat[i] = original - eps
        minus = f()
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


class TestDenseLayer:
    def test_forward_shape(self, rng):
        layer = DenseLayer(4, 3, rng=rng)
        assert layer.forward(rng.random((7, 4))).shape == (7, 3)

    def test_identity_activation_linear(self, rng):
        layer = DenseLayer(3, 2, activation="identity", rng=rng)
        x = rng.random((5, 3))
        np.testing.assert_allclose(layer.forward(x), x @ layer.w + layer.b)

    def test_relu_clips(self, rng):
        layer = DenseLayer(2, 2, activation="relu", rng=rng)
        out = layer.forward(rng.standard_normal((50, 2)))
        assert out.min() >= 0.0

    def test_unknown_activation(self):
        with pytest.raises(ValueError):
            DenseLayer(2, 2, activation="swish")

    def test_backward_before_forward(self, rng):
        layer = DenseLayer(2, 2, rng=rng)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 2)))

    @pytest.mark.parametrize("activation", ["relu", "sigmoid", "tanh", "identity"])
    def test_gradient_check_weights(self, activation, rng):
        layer = DenseLayer(3, 2, activation=activation, rng=rng)
        x = rng.standard_normal((6, 3)) + 0.05  # avoid ReLU kinks at 0
        target = rng.standard_normal((6, 2))

        def loss():
            out = layer.forward(x)
            return 0.5 * float(((out - target) ** 2).sum())

        out = layer.forward(x)
        layer.backward(out - target)
        analytic_w = layer.grad_w.copy()
        analytic_b = layer.grad_b.copy()
        numeric_w = numerical_gradient(loss, layer.w)
        numeric_b = numerical_gradient(loss, layer.b)
        np.testing.assert_allclose(analytic_w, numeric_w, atol=1e-5)
        np.testing.assert_allclose(analytic_b, numeric_b, atol=1e-5)

    def test_gradient_check_inputs(self, rng):
        layer = DenseLayer(3, 2, activation="tanh", rng=rng)
        x = rng.standard_normal((4, 3))
        target = rng.standard_normal((4, 2))

        def loss():
            return 0.5 * float(((layer.forward(x) - target) ** 2).sum())

        out = layer.forward(x)
        analytic_x = layer.backward(out - target)
        numeric_x = numerical_gradient(loss, x)
        np.testing.assert_allclose(analytic_x, numeric_x, atol=1e-5)


class TestMLP:
    def test_end_to_end_gradient_check(self, rng):
        mlp = MLP([3, 5, 1], activations=["tanh", "identity"], rng=rng)
        x = rng.standard_normal((4, 3))
        target = rng.standard_normal((4, 1))

        def loss():
            return 0.5 * float(((mlp.forward(x) - target) ** 2).sum())

        out = mlp.forward(x)
        mlp.backward(out - target)
        for param, analytic in zip(mlp.parameters(), mlp.gradients()):
            numeric = numerical_gradient(loss, param)
            np.testing.assert_allclose(analytic, numeric, atol=1e-5)

    def test_learns_xor(self):
        # The classic nonlinear sanity check.
        rng = np.random.default_rng(0)
        x = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=float)
        y = np.array([[0.0], [1.0], [1.0], [0.0]])
        mlp = MLP([2, 8, 1], activations=["tanh", "identity"], rng=rng)
        optimizer = Adam(mlp.parameters(), learning_rate=0.05)
        for _ in range(500):
            out = mlp.forward(x)
            mlp.backward(out - y)
            optimizer.step(mlp.gradients())
        predictions = mlp.forward(x)
        assert ((predictions > 0.5).astype(float) == y).all()

    def test_default_activations(self, rng):
        mlp = MLP([4, 8, 8, 1], rng=rng)
        assert [layer.activation for layer in mlp.layers] == [
            "relu", "relu", "identity",
        ]

    def test_size_validation(self, rng):
        with pytest.raises(ValueError):
            MLP([3], rng=rng)
        with pytest.raises(ValueError):
            MLP([3, 2], activations=["relu", "relu"], rng=rng)


class TestAdam:
    def test_minimizes_quadratic(self):
        x = np.array([5.0, -3.0])
        optimizer = Adam([x], learning_rate=0.1)
        for _ in range(500):
            optimizer.step([2 * x])  # gradient of ||x||^2
        assert np.abs(x).max() < 1e-2

    def test_gradient_count_validated(self):
        x = np.zeros(2)
        optimizer = Adam([x])
        with pytest.raises(ValueError):
            optimizer.step([np.zeros(2), np.zeros(2)])

    def test_updates_in_place(self):
        x = np.ones(3)
        reference = x
        Adam([x], learning_rate=0.5).step([np.ones(3)])
        assert reference is x
        assert not np.allclose(x, 1.0)
