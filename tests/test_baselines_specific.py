"""Method-specific behavioral tests for the baselines."""

import numpy as np
import pytest

from repro.baselines import BPR, CSE, LINE, NRP, BiNE, LightGCN
from repro.baselines.bpr import bpr_triples, sigmoid
from repro.baselines.common import homogeneous_degrees, split_embedding
from repro.baselines.gnn import normalized_adjacency
from repro.core.base import EmbeddingResult
from repro.graph import BipartiteGraph
from repro.tasks import LinkPredictionTask


class TestCommonHelpers:
    def test_split_embedding(self, figure1, rng):
        joint = rng.random((9, 4))
        u, v = split_embedding(joint, figure1)
        assert u.shape == (4, 4)
        assert v.shape == (5, 4)
        np.testing.assert_array_equal(np.vstack([u, v]), joint)

    def test_split_embedding_validates(self, figure1, rng):
        with pytest.raises(ValueError):
            split_embedding(rng.random((7, 4)), figure1)

    def test_homogeneous_degrees(self, figure1):
        degrees = homogeneous_degrees(figure1, weighted=False)
        np.testing.assert_array_equal(degrees, [3, 3, 3, 4, 2, 3, 4, 2, 2])


class TestSigmoid:
    def test_range_and_symmetry(self):
        z = np.array([-700.0, -1.0, 0.0, 1.0, 700.0])
        out = sigmoid(z)
        assert (out >= 0).all() and (out <= 1).all()
        assert out[2] == pytest.approx(0.5)
        assert out[1] == pytest.approx(1 - out[3])

    def test_no_overflow(self):
        assert np.isfinite(sigmoid(np.array([-1e4, 1e4]))).all()


class TestBprTriples:
    def test_positive_edges_exist(self, block_graph, rng):
        users, pos, neg = bpr_triples(block_graph, 300, rng)
        for u, i in zip(users[:100], pos[:100]):
            assert block_graph.has_edge(int(u), int(i))

    def test_negatives_mostly_non_edges(self, block_graph, rng):
        users, pos, neg = bpr_triples(block_graph, 500, rng)
        collisions = sum(
            block_graph.has_edge(int(u), int(j)) for u, j in zip(users, neg)
        )
        # One resampling round: collisions are rare but possible.
        assert collisions < 0.05 * users.size

    def test_weighted_edge_sampling(self, rng):
        # One heavy edge should dominate the positive samples.
        graph = BipartiteGraph.from_dense([[50.0, 1.0], [1.0, 1.0]])
        users, pos, _ = bpr_triples(graph, 4000, rng)
        heavy = ((users == 0) & (pos == 0)).mean()
        assert heavy > 0.85


class TestBPRLearning:
    def test_separates_blocks(self, block_graph):
        task = LinkPredictionTask(block_graph, seed=0)
        report = task.run(BPR(dimension=16, epochs=20, seed=0))
        rng = np.random.default_rng(0)
        random_report = task.run(_RandomEmbedder(16))
        assert report.auc_roc > random_report.auc_roc + 0.05


class _RandomEmbedder(BPR):
    name = "random-control"

    def __init__(self, dimension):
        super().__init__(dimension=dimension, epochs=0, seed=0)


class TestLINE:
    def test_order_validation(self):
        with pytest.raises(ValueError):
            LINE(order=3)
        with pytest.raises(ValueError):
            LINE(dimension=7, order="both")

    def test_single_order_modes(self, block_graph):
        for order in (1, 2):
            result = LINE(
                dimension=8, order=order, samples_per_edge=2, seed=0
            ).fit(block_graph)
            assert result.u.shape == (block_graph.num_u, 8)

    def test_both_orders_concatenated(self, block_graph):
        result = LINE(dimension=8, samples_per_edge=2, seed=0).fit(block_graph)
        assert result.metadata["order"] == "both"
        assert result.u.shape[1] == 8


class TestNRP:
    def test_reweighting_targets_degree(self, block_graph):
        result = NRP(dimension=16, tau=6, reweight_rounds=20, seed=0).fit(
            block_graph
        )
        forward = result.u  # U-side forward vectors
        # After reweighting, predicted out-mass of each U-node should
        # correlate strongly with its degree.
        full = NRP(dimension=16, tau=6, reweight_rounds=20, seed=0)
        degrees = block_graph.u_degrees(weighted=True)
        # out-mass against the V-side backward sum:
        out_mass = result.u @ result.v.sum(axis=0)
        correlation = np.corrcoef(out_mass, degrees)[0, 1]
        assert correlation > 0.8

    def test_alpha_validated(self):
        with pytest.raises(ValueError):
            NRP(alpha=1.5)


class TestGNNFamily:
    def test_normalized_adjacency_spectrum(self, block_graph):
        a_hat = normalized_adjacency(block_graph)
        # Symmetric normalization bounds eigenvalues to [-1, 1].
        top = np.abs(
            np.linalg.eigvalsh(a_hat.toarray())
        ).max()
        assert top <= 1.0 + 1e-8

    def test_lightgcn_propagation_is_layer_mean(self, block_graph, rng):
        method = LightGCN(dimension=4, num_layers=2, seed=0, epochs=1)
        a_hat = normalized_adjacency(block_graph)
        tables = rng.random((block_graph.num_nodes, 4))
        propagated = method._propagate(tables, a_hat)
        expected = (
            tables + a_hat @ tables + a_hat @ (a_hat @ tables)
        ) / 3.0
        np.testing.assert_allclose(propagated, expected)

    def test_num_layers_validated(self):
        with pytest.raises(ValueError):
            LightGCN(num_layers=0)


class TestBiNE:
    def test_walks_do_not_materialize_projection(self, block_graph):
        # Smoke test at a scale where dense projections would be expensive;
        # the method must finish quickly and produce valid output.
        result = BiNE(
            dimension=8, total_walks_factor=1, walk_length=4,
            edge_epochs=1, seed=0,
        ).fit(block_graph)
        assert np.isfinite(result.u).all()
        assert result.metadata["u_pairs"] > 0
        assert result.metadata["v_pairs"] > 0


class TestCSE:
    def test_combines_direct_and_walk_pairs(self, block_graph):
        result = CSE(
            dimension=8, walks_per_node=2, walk_length=6,
            direct_samples_per_edge=2, seed=0,
        ).fit(block_graph)
        assert result.metadata["walk_pairs"] > 0
        assert result.metadata["direct_pairs"] == 2 * 2 * block_graph.num_edges
