"""Tests for the benchmark harness and the BENCH_*.json schema."""

import json

import pytest

from repro.bench import (
    BENCH_SCHEMA_NAME,
    BENCH_SCHEMA_VERSION,
    BenchConfig,
    render_bench,
    run_bench,
    validate_bench,
    write_bench,
)
from repro.cli import main


@pytest.fixture(scope="module")
def smoke_payload():
    return run_bench(BenchConfig.smoke())


class TestBenchConfig:
    def test_defaults_cover_two_zoo_datasets(self):
        config = BenchConfig()
        assert len(config.datasets) >= 2
        assert "GEBE^p" in config.methods
        assert any(name.startswith("GEBE (") for name in config.methods)

    def test_policy_grid(self):
        policies = [p.describe() for p in BenchConfig().policies()]
        assert policies == ["float64/workspace", "float64/legacy", "float32/workspace"]
        lean = BenchConfig(ab_compare=False, float32=False).policies()
        assert [p.describe() for p in lean] == ["float64/workspace"]

    def test_unknown_dataset_rejected(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            run_bench(BenchConfig(datasets=("nope",), repeats=1))


class TestRunBench:
    def test_smoke_document_validates(self, smoke_payload):
        assert smoke_payload["schema"] == BENCH_SCHEMA_NAME
        assert smoke_payload["version"] == BENCH_SCHEMA_VERSION
        validate_bench(smoke_payload)

    def test_covers_grid(self, smoke_payload):
        config = BenchConfig.smoke()
        per_cell = len(config.policies())
        assert len(smoke_payload["runs"]) == (
            len(config.datasets) * len(config.methods) * per_cell
        )

    def test_matvec_counts_identical_across_kernel_paths(self, smoke_payload):
        assert smoke_payload["comparisons"], "A/B comparisons missing"
        for row in smoke_payload["comparisons"]:
            assert row["matvecs_equal"], (
                f"{row['method']}/{row['dataset']}: matvec counts diverged "
                "between workspace and legacy kernels"
            )

    def test_comparisons_cover_every_new_kernel_policy(self, smoke_payload):
        # Both the float64 workspace default and the float32 row are
        # A/B'd against the legacy baseline, per (method, dataset) cell.
        candidates = {row["candidate_policy"] for row in smoke_payload["comparisons"]}
        assert candidates == {"float64/workspace", "float32/workspace"}
        config = BenchConfig.smoke()
        cells = len(config.datasets) * len(config.methods)
        assert len(smoke_payload["comparisons"]) == cells * len(candidates)
        assert all(
            row["baseline_policy"] == "float64/legacy"
            for row in smoke_payload["comparisons"]
        )

    def test_float32_rows_present(self, smoke_payload):
        policies = {run["policy"] for run in smoke_payload["runs"]}
        assert "float32/workspace" in policies

    def test_json_round_trip(self, smoke_payload, tmp_path):
        path = tmp_path / "BENCH_test.json"
        write_bench(smoke_payload, str(path))
        validate_bench(json.loads(path.read_text()))

    def test_render_mentions_every_run(self, smoke_payload):
        text = render_bench(smoke_payload)
        assert "GEBE^p" in text
        assert "workspace vs legacy" in text


class TestBenchSchemaValidation:
    def test_rejects_non_dict(self):
        with pytest.raises(ValueError, match="top level"):
            validate_bench([])

    def test_rejects_wrong_schema_name(self, smoke_payload):
        bad = dict(smoke_payload, schema="other")
        with pytest.raises(ValueError, match="schema"):
            validate_bench(bad)

    def test_rejects_wrong_version(self, smoke_payload):
        bad = dict(smoke_payload, version=99)
        with pytest.raises(ValueError, match="version"):
            validate_bench(bad)

    def test_rejects_empty_runs(self, smoke_payload):
        bad = dict(smoke_payload, runs=[])
        with pytest.raises(ValueError, match="runs"):
            validate_bench(bad)

    def test_rejects_missing_run_key(self, smoke_payload):
        runs = [dict(smoke_payload["runs"][0])]
        del runs[0]["matvecs"]
        bad = dict(smoke_payload, runs=runs)
        with pytest.raises(ValueError, match="matvecs"):
            validate_bench(bad)

    def test_rejects_negative_wall(self, smoke_payload):
        runs = [dict(smoke_payload["runs"][0], wall_seconds=-1.0)]
        bad = dict(smoke_payload, runs=runs)
        with pytest.raises(ValueError, match="wall_seconds"):
            validate_bench(bad)

    def test_rejects_bool_as_int(self, smoke_payload):
        runs = [dict(smoke_payload["runs"][0], matvecs=True)]
        bad = dict(smoke_payload, runs=runs)
        with pytest.raises(ValueError, match="matvecs"):
            validate_bench(bad)


class TestBenchCli:
    def test_smoke_writes_valid_file(self, tmp_path, capsys):
        out = tmp_path / "BENCH_cli.json"
        code = main(["bench", "--smoke", "--output", str(out)])
        assert code == 0
        validate_bench(json.loads(out.read_text()))
        captured = capsys.readouterr()
        assert "wrote" in captured.out

    def test_overrides_apply(self, tmp_path):
        out = tmp_path / "BENCH_cli.json"
        code = main(
            [
                "bench",
                "--smoke",
                "--no-float32",
                "--repeats",
                "1",
                "--output",
                str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["config"]["float32"] is False
        policies = {run["policy"] for run in payload["runs"]}
        assert "float32/workspace" not in policies
