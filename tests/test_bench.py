"""Tests for the benchmark harness and the BENCH_*.json schema."""

import json

import pytest

import copy

from repro.bench import (
    BENCH_SCHEMA_NAME,
    BENCH_SCHEMA_VERSION,
    BenchConfig,
    compare_bench,
    load_bench,
    ooc_violations,
    refresh_violations,
    render_bench,
    render_compare,
    run_bench,
    similar_violations,
    upgrade_bench,
    validate_bench,
    write_bench,
)
from repro.cli import main


@pytest.fixture(scope="module")
def smoke_payload():
    return run_bench(BenchConfig.smoke())


@pytest.fixture(scope="module")
def ann_payload():
    """A seconds-scale ANN-axis-only document (tiny clustered stand-in)."""
    return run_bench(
        BenchConfig(
            datasets=("toy",),
            methods=("GEBE^p",),
            dimension=8,
            repeats=1,
            fit_grid=False,
            topk=False,
            ann=True,
            ann_items=2_000,
            ann_queries=8,
            ann_cells=16,
            ann_nprobe=(1, 4),
            ann_n=5,
        )
    )


class TestBenchConfig:
    def test_defaults_cover_two_zoo_datasets(self):
        config = BenchConfig()
        assert len(config.datasets) >= 2
        assert "GEBE^p" in config.methods
        assert any(name.startswith("GEBE (") for name in config.methods)

    def test_policy_grid(self):
        policies = [p.describe() for p in BenchConfig().policies()]
        assert policies == ["float64/workspace", "float64/legacy", "float32/workspace"]
        lean = BenchConfig(ab_compare=False, float32=False).policies()
        assert [p.describe() for p in lean] == ["float64/workspace"]

    def test_unknown_dataset_rejected(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            run_bench(BenchConfig(datasets=("nope",), repeats=1))

    def test_policy_rows_pinned_serial(self):
        # The dtype A/B axis must not inherit REPRO_NUM_THREADS: dtype
        # rows are always serial, threads get their own rows.
        assert all(p.n_threads == 1 for p in BenchConfig().policies())

    def test_thread_counts_sorted_unique(self):
        assert BenchConfig(threads=(4, 1, 2, 4)).thread_counts() == [1, 2, 4]
        with pytest.raises(ValueError, match="threads"):
            BenchConfig(threads=(0,)).thread_counts()


class TestRunBench:
    def test_smoke_document_validates(self, smoke_payload):
        assert smoke_payload["schema"] == BENCH_SCHEMA_NAME
        assert smoke_payload["version"] == BENCH_SCHEMA_VERSION
        validate_bench(smoke_payload)

    def test_covers_grid(self, smoke_payload):
        config = BenchConfig.smoke()
        thread_rows = len([t for t in config.thread_counts() if t > 1])
        per_cell = len(config.policies()) + thread_rows
        assert len(smoke_payload["runs"]) == (
            len(config.datasets) * len(config.methods) * per_cell
        )

    def test_thread_rows_present(self, smoke_payload):
        config = BenchConfig.smoke()
        expected = set(config.thread_counts())
        assert {run["threads"] for run in smoke_payload["runs"]} == expected
        # Thread rows always use the default (workspace float64) policy.
        for run in smoke_payload["runs"]:
            if run["threads"] > 1:
                assert run["policy"] == "float64/workspace"
            assert run["workspace_bytes"] >= 0

    def test_matvec_counts_identical_across_kernel_paths(self, smoke_payload):
        assert smoke_payload["comparisons"], "A/B comparisons missing"
        for row in smoke_payload["comparisons"]:
            assert row["matvecs_equal"], (
                f"{row['method']}/{row['dataset']}: matvec counts diverged "
                "between workspace and legacy kernels"
            )

    def test_comparisons_cover_every_new_kernel_policy(self, smoke_payload):
        # Both the float64 workspace default and the float32 row are
        # A/B'd against the legacy baseline, per (method, dataset) cell.
        dtype_rows = [
            row for row in smoke_payload["comparisons"]
            if row["candidate_threads"] == 1
        ]
        candidates = {row["candidate_policy"] for row in dtype_rows}
        assert candidates == {"float64/workspace", "float32/workspace"}
        config = BenchConfig.smoke()
        cells = len(config.datasets) * len(config.methods)
        assert len(dtype_rows) == cells * len(candidates)
        assert all(row["baseline_policy"] == "float64/legacy" for row in dtype_rows)
        assert all(row["baseline_threads"] == 1 for row in dtype_rows)

    def test_comparisons_cover_every_thread_count(self, smoke_payload):
        # Every threads > 1 row is compared against its serial twin: same
        # method, dataset, and policy, threads pinned to 1.
        config = BenchConfig.smoke()
        cells = len(config.datasets) * len(config.methods)
        thread_rows = [
            row for row in smoke_payload["comparisons"]
            if row["candidate_threads"] > 1
        ]
        extra = [t for t in config.thread_counts() if t > 1]
        assert len(thread_rows) == cells * len(extra)
        for row in thread_rows:
            assert row["baseline_threads"] == 1
            assert row["baseline_policy"] == row["candidate_policy"]
            assert row["matvecs_equal"], (
                f"{row['method']}/{row['dataset']}: op counts changed with "
                f"{row['candidate_threads']} threads"
            )

    def test_float32_rows_present(self, smoke_payload):
        policies = {run["policy"] for run in smoke_payload["runs"]}
        assert "float32/workspace" in policies

    def test_topk_axis_rows(self, smoke_payload):
        config = BenchConfig.smoke()
        per_dataset = {}
        for row in smoke_payload["topk_runs"]:
            per_dataset.setdefault(row["dataset"], []).append(row)
        assert set(per_dataset) == set(config.datasets)
        blocks = sorted(set(config.topk_block_rows))
        for rows in per_dataset.values():
            modes = [row["mode"] for row in rows]
            assert modes.count("per_user") == 1
            # One masked row per block size, one unmasked, one threaded.
            masked_serial = [
                r["block_rows"] for r in rows
                if r["mode"] == "batched" and r["exclude"] and r["threads"] == 1
            ]
            assert masked_serial == blocks
            assert sum(1 for r in rows if not r["exclude"]) == 1
            assert any(r["threads"] > 1 for r in rows)
            for row in rows:
                if row["mode"] == "batched":
                    assert row["candidates"] == row["num_users"] * row["num_items"]
                    assert row["gemms"] >= 1

    def test_topk_lists_identical_to_per_user(self, smoke_payload):
        assert smoke_payload["topk_comparisons"], "topk comparisons missing"
        for row in smoke_payload["topk_comparisons"]:
            assert row["baseline_mode"] == "per_user"
            assert row["lists_equal"], (
                f"{row['dataset']} b={row['candidate_block_rows']} "
                f"x{row['candidate_threads']}: batched lists diverged"
            )

    def test_topk_render_mentions_modes(self, smoke_payload):
        text = render_bench(smoke_payload)
        assert "per_user" in text
        assert "batched" in text

    def test_json_round_trip(self, smoke_payload, tmp_path):
        path = tmp_path / "BENCH_test.json"
        write_bench(smoke_payload, str(path))
        validate_bench(json.loads(path.read_text()))

    def test_render_mentions_every_run(self, smoke_payload):
        text = render_bench(smoke_payload)
        assert "GEBE^p" in text
        assert "workspace vs legacy" in text


class TestBenchSchemaValidation:
    def test_rejects_non_dict(self):
        with pytest.raises(ValueError, match="top level"):
            validate_bench([])

    def test_rejects_wrong_schema_name(self, smoke_payload):
        bad = dict(smoke_payload, schema="other")
        with pytest.raises(ValueError, match="schema"):
            validate_bench(bad)

    def test_rejects_wrong_version(self, smoke_payload):
        bad = dict(smoke_payload, version=99)
        with pytest.raises(ValueError, match="version"):
            validate_bench(bad)

    def test_rejects_both_axes_empty(self, smoke_payload):
        bad = dict(smoke_payload, runs=[], topk_runs=[])
        with pytest.raises(ValueError, match="runs"):
            validate_bench(bad)

    def test_single_axis_documents_validate(self, smoke_payload):
        # --topk-only writes runs=[]; a topk-less run writes topk_runs=[].
        validate_bench(dict(smoke_payload, runs=[]))
        validate_bench(dict(smoke_payload, topk_runs=[], topk_comparisons=[]))

    def test_rejects_bad_topk_mode(self, smoke_payload):
        rows = [dict(smoke_payload["topk_runs"][0], mode="vectorized")]
        bad = dict(smoke_payload, topk_runs=rows)
        with pytest.raises(ValueError, match="mode"):
            validate_bench(bad)

    def test_rejects_batched_row_without_block(self, smoke_payload):
        batched = next(
            row for row in smoke_payload["topk_runs"] if row["mode"] == "batched"
        )
        bad = dict(smoke_payload, topk_runs=[dict(batched, block_rows=None)])
        with pytest.raises(ValueError, match="block_rows"):
            validate_bench(bad)

    def test_rejects_missing_topk_comparison_key(self, smoke_payload):
        row = dict(smoke_payload["topk_comparisons"][0])
        del row["lists_equal"]
        bad = dict(smoke_payload, topk_comparisons=[row])
        with pytest.raises(ValueError, match="lists_equal"):
            validate_bench(bad)

    def test_rejects_missing_run_key(self, smoke_payload):
        runs = [dict(smoke_payload["runs"][0])]
        del runs[0]["matvecs"]
        bad = dict(smoke_payload, runs=runs)
        with pytest.raises(ValueError, match="matvecs"):
            validate_bench(bad)

    def test_rejects_negative_wall(self, smoke_payload):
        runs = [dict(smoke_payload["runs"][0], wall_seconds=-1.0)]
        bad = dict(smoke_payload, runs=runs)
        with pytest.raises(ValueError, match="wall_seconds"):
            validate_bench(bad)

    def test_rejects_bool_as_int(self, smoke_payload):
        runs = [dict(smoke_payload["runs"][0], matvecs=True)]
        bad = dict(smoke_payload, runs=runs)
        with pytest.raises(ValueError, match="matvecs"):
            validate_bench(bad)


class TestBenchCli:
    def test_smoke_writes_valid_file(self, tmp_path, capsys):
        out = tmp_path / "BENCH_cli.json"
        code = main(["bench", "--smoke", "--output", str(out)])
        assert code == 0
        validate_bench(json.loads(out.read_text()))
        captured = capsys.readouterr()
        assert "wrote" in captured.out

    def test_overrides_apply(self, tmp_path):
        out = tmp_path / "BENCH_cli.json"
        code = main(
            [
                "bench",
                "--smoke",
                "--no-float32",
                "--repeats",
                "1",
                "--output",
                str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["config"]["float32"] is False
        policies = {run["policy"] for run in payload["runs"]}
        assert "float32/workspace" not in policies

    def test_threads_override(self, tmp_path):
        out = tmp_path / "BENCH_cli.json"
        code = main(
            ["bench", "--smoke", "--threads", "1", "--output", str(out)]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["config"]["threads"] == [1]
        assert {run["threads"] for run in payload["runs"]} == {1}

    def test_threads_rejects_zero(self, tmp_path, capsys):
        out = tmp_path / "BENCH_cli.json"
        code = main(["bench", "--smoke", "--threads", "0", "--output", str(out)])
        assert code == 2
        assert "threads" in capsys.readouterr().err

    def test_compare_against_self_passes(self, tmp_path, capsys):
        out = tmp_path / "BENCH_a.json"
        assert main(["bench", "--smoke", "--output", str(out)]) == 0
        fresh = tmp_path / "BENCH_b.json"
        code = main(
            [
                "bench",
                "--smoke",
                "--output",
                str(fresh),
                "--compare",
                str(out),
                # Smoke cells run in milliseconds, so relative wall noise
                # is huge; a wide threshold keeps this deterministic.
                "--noise",
                "25",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "bench compare" in captured.out
        assert "verdict: ok" in captured.out

    def test_topk_only(self, tmp_path):
        out = tmp_path / "BENCH_cli.json"
        code = main(["bench", "--smoke", "--topk-only", "--output", str(out)])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["runs"] == []
        assert payload["topk_runs"]

    def test_no_topk(self, tmp_path):
        out = tmp_path / "BENCH_cli.json"
        code = main(["bench", "--smoke", "--no-topk", "--output", str(out)])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["topk_runs"] == []
        assert payload["runs"]

    def test_no_topk_conflicts_with_topk_only(self, tmp_path, capsys):
        code = main(["bench", "--smoke", "--no-topk", "--topk-only"])
        assert code == 2
        assert "conflict" in capsys.readouterr().err

    def test_topk_block_rows_override(self, tmp_path):
        out = tmp_path / "BENCH_cli.json"
        code = main(
            ["bench", "--smoke", "--topk-only", "--topk-block-rows", "2", "8",
             "--output", str(out)]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["config"]["topk_block_rows"] == [2, 8]
        masked = {
            row["block_rows"] for row in payload["topk_runs"]
            if row["mode"] == "batched" and row["exclude"]
        }
        assert masked == {2, 8}

    def test_compare_missing_baseline_errors(self, tmp_path, capsys):
        out = tmp_path / "BENCH_cli.json"
        code = main(
            [
                "bench",
                "--smoke",
                "--output",
                str(out),
                "--compare",
                str(tmp_path / "nope.json"),
            ]
        )
        assert code == 2
        assert "cannot load" in capsys.readouterr().err


class TestBenchUpgrade:
    def _as_v2(self, payload):
        doc = copy.deepcopy(payload)
        doc["version"] = 2
        # v2 predates the top-k axis entirely.
        for key in ("topk_runs", "topk_comparisons"):
            doc.pop(key)
        for key in ("fit_grid", "topk", "topk_block_rows", "topk_n"):
            doc["config"].pop(key)
        return doc

    def _as_v1(self, payload):
        doc = self._as_v2(payload)
        doc["version"] = 1
        doc["config"].pop("threads")
        # v1 had exactly one serial row per (method, dataset, policy).
        doc["runs"] = [
            {k: v for k, v in run.items()
             if k not in ("threads", "workspace_bytes")}
            for run in doc["runs"] if run["threads"] == 1
        ]
        doc["comparisons"] = [
            {k: v for k, v in row.items()
             if k not in ("baseline_threads", "candidate_threads")}
            for row in doc["comparisons"] if row["candidate_threads"] == 1
        ]
        return doc

    def test_v1_document_upgrades_through_the_chain(self, smoke_payload):
        upgraded = upgrade_bench(self._as_v1(smoke_payload))
        validate_bench(upgraded)
        assert upgraded["version"] == BENCH_SCHEMA_VERSION
        assert upgraded["config"]["threads"] == [1]
        assert all(run["threads"] == 1 for run in upgraded["runs"])
        assert all(run["workspace_bytes"] == 0 for run in upgraded["runs"])
        assert upgraded["config"]["topk"] is False
        assert upgraded["topk_runs"] == []

    def test_v2_document_upgrades_with_topk_axis_absent(self, smoke_payload):
        upgraded = upgrade_bench(self._as_v2(smoke_payload))
        validate_bench(upgraded)
        assert upgraded["version"] == BENCH_SCHEMA_VERSION
        assert upgraded["config"]["topk"] is False
        assert upgraded["config"]["fit_grid"] is True
        assert upgraded["topk_runs"] == []
        assert upgraded["topk_comparisons"] == []

    def test_current_version_passes_through(self, smoke_payload):
        assert upgrade_bench(smoke_payload) is smoke_payload

    def test_load_bench_upgrades_v1_file(self, smoke_payload, tmp_path):
        path = tmp_path / "BENCH_v1.json"
        path.write_text(json.dumps(self._as_v1(smoke_payload)))
        doc = load_bench(str(path))
        assert doc["version"] == BENCH_SCHEMA_VERSION


class TestCompareBench:
    def test_self_compare_is_clean(self, smoke_payload):
        result = compare_bench(smoke_payload, smoke_payload)
        assert len(result["rows"]) == len(smoke_payload["runs"]) + len(
            smoke_payload["topk_runs"]
        )
        assert result["regressions"] == []
        assert result["matvec_drift"] == []
        assert result["missing"] == [] and result["added"] == []
        assert "verdict: ok" in render_compare(result)

    def test_flags_wall_time_regression(self, smoke_payload):
        slow = copy.deepcopy(smoke_payload)
        slow["runs"][0]["wall_seconds"] *= 10.0
        result = compare_bench(smoke_payload, slow, noise=0.25, min_seconds=0.0)
        assert len(result["regressions"]) == 1
        assert result["regressions"][0]["ratio"] == pytest.approx(10.0)
        assert "REGRESSION" in render_compare(result)

    def test_noise_threshold_suppresses_small_slowdowns(self, smoke_payload):
        slow = copy.deepcopy(smoke_payload)
        slow["runs"][0]["wall_seconds"] *= 1.2
        clean = compare_bench(smoke_payload, slow, noise=0.25, min_seconds=0.0)
        assert clean["regressions"] == []
        tight = compare_bench(smoke_payload, slow, noise=0.1, min_seconds=0.0)
        assert tight["regressions"]

    def test_absolute_floor_suppresses_millisecond_jitter(self, smoke_payload):
        # A 2x slowdown on a 3 ms cell is scheduler noise, not a
        # regression; the same ratio on a 3 s cell is real.
        slow = copy.deepcopy(smoke_payload)
        slow["runs"][0]["wall_seconds"] = smoke_payload["runs"][0][
            "wall_seconds"
        ] + 0.01
        assert compare_bench(smoke_payload, slow, noise=0.0)["regressions"] == []
        big_old = copy.deepcopy(smoke_payload)
        big_old["runs"][0]["wall_seconds"] = 3.0
        big_new = copy.deepcopy(smoke_payload)
        big_new["runs"][0]["wall_seconds"] = 6.0
        assert compare_bench(big_old, big_new)["regressions"]

    def test_rejects_negative_min_seconds(self, smoke_payload):
        with pytest.raises(ValueError, match="min_seconds"):
            compare_bench(smoke_payload, smoke_payload, min_seconds=-1.0)

    def test_flags_matvec_drift(self, smoke_payload):
        drifted = copy.deepcopy(smoke_payload)
        drifted["runs"][0]["matvecs"] += 7
        result = compare_bench(smoke_payload, drifted)
        assert len(result["matvec_drift"]) == 1
        assert "MATVEC-DRIFT" in render_compare(result)

    def test_reports_missing_and_added_cells(self, smoke_payload):
        pruned = copy.deepcopy(smoke_payload)
        dropped = pruned["runs"].pop()
        result = compare_bench(smoke_payload, pruned)
        assert result["missing"] == [
            (dropped["method"], dropped["dataset"], dropped["policy"],
             dropped["threads"])
        ]
        assert compare_bench(pruned, smoke_payload)["added"] == result["missing"]

    def test_surfaces_internal_invariant_violations(self, smoke_payload):
        broken = copy.deepcopy(smoke_payload)
        broken["comparisons"][0]["matvecs_equal"] = False
        result = compare_bench(smoke_payload, broken)
        assert len(result["invariant_violations"]) == 1
        assert "invariant violated" in render_compare(result)

    def test_surfaces_topk_list_divergence(self, smoke_payload):
        broken = copy.deepcopy(smoke_payload)
        broken["topk_comparisons"][0]["lists_equal"] = False
        result = compare_bench(smoke_payload, broken)
        assert len(result["invariant_violations"]) == 1

    def test_flags_topk_wall_time_regression(self, smoke_payload):
        slow = copy.deepcopy(smoke_payload)
        slow["topk_runs"][0]["wall_seconds"] = (
            smoke_payload["topk_runs"][0]["wall_seconds"] + 10.0
        )
        result = compare_bench(smoke_payload, slow)
        assert len(result["regressions"]) == 1
        assert result["regressions"][0]["policy"].startswith("topk:")

    def test_flags_topk_candidate_drift(self, smoke_payload):
        drifted = copy.deepcopy(smoke_payload)
        batched = next(
            row for row in drifted["topk_runs"] if row["mode"] == "batched"
        )
        batched["candidates"] += 3
        result = compare_bench(smoke_payload, drifted)
        assert len(result["matvec_drift"]) == 1

    def test_rejects_negative_noise(self, smoke_payload):
        with pytest.raises(ValueError, match="noise"):
            compare_bench(smoke_payload, smoke_payload, noise=-0.1)


def _serve_row(**overrides):
    row = {
        "method": "GEBE^p", "dataset": "toy", "mode": "sequential",
        "clients": 1, "requests": 16, "n": 10, "batched": True,
        "wall_seconds": 0.5, "p50_ms": 3.0, "p95_ms": 6.0,
        "shed": 0, "lists_equal": True,
    }
    row.update(overrides)
    return row


class TestServeSchema:
    def test_valid_serve_rows_accepted(self, smoke_payload):
        doc = dict(smoke_payload, serve_runs=[
            _serve_row(), _serve_row(mode="concurrent", clients=4),
        ])
        validate_bench(doc)

    def test_serve_axis_alone_suffices(self, smoke_payload):
        doc = dict(
            smoke_payload, runs=[], comparisons=[], topk_runs=[],
            topk_comparisons=[], serve_runs=[_serve_row()],
        )
        validate_bench(doc)

    def test_rejects_bad_serve_mode(self, smoke_payload):
        doc = dict(smoke_payload, serve_runs=[_serve_row(mode="burst")])
        with pytest.raises(ValueError, match="mode must be one of"):
            validate_bench(doc)

    def test_rejects_zero_clients(self, smoke_payload):
        doc = dict(smoke_payload, serve_runs=[_serve_row(clients=0)])
        with pytest.raises(ValueError, match="clients must be >= 1"):
            validate_bench(doc)

    def test_rejects_negative_latency(self, smoke_payload):
        doc = dict(smoke_payload, serve_runs=[_serve_row(p95_ms=-1.0)])
        with pytest.raises(ValueError, match="p95_ms must be non-negative"):
            validate_bench(doc)

    def test_rejects_missing_serve_key(self, smoke_payload):
        row = _serve_row()
        del row["lists_equal"]
        doc = dict(smoke_payload, serve_runs=[row])
        with pytest.raises(ValueError, match="missing 'lists_equal'"):
            validate_bench(doc)

    def test_v3_document_upgrades_with_serve_axis_absent(self, smoke_payload):
        doc = copy.deepcopy(smoke_payload)
        doc["version"] = 3
        doc.pop("serve_runs")
        doc.pop("ann_runs")
        for key in ("serve_smoke", "serve_requests", "ann", "ann_items",
                    "ann_queries", "ann_cells", "ann_nprobe", "ann_n"):
            doc["config"].pop(key)
        upgraded = upgrade_bench(doc)
        validate_bench(upgraded)
        assert upgraded["version"] == BENCH_SCHEMA_VERSION
        assert upgraded["config"]["serve_smoke"] is False
        assert upgraded["serve_runs"] == []
        assert upgraded["config"]["ann"] is False
        assert upgraded["ann_runs"] == []


def _ann_row(**overrides):
    row = {
        "method": "ivf-flat", "dataset": "standin_2000", "mode": "ivf",
        "nprobe": 4, "cells": 16, "num_items": 2000, "num_queries": 8,
        "n": 5, "build_seconds": 0.2, "wall_seconds": 0.1,
        "p50_ms": 1.0, "p95_ms": 2.0, "recall_at_n": 0.9,
        "candidates": 4000, "exact_match": False,
    }
    row.update(overrides)
    return row


class TestAnnAxis:
    def test_document_validates(self, ann_payload):
        validate_bench(ann_payload)
        assert ann_payload["ann_runs"]
        assert ann_payload["runs"] == []
        assert ann_payload["topk_runs"] == []

    def test_exact_row_first(self, ann_payload):
        exact = ann_payload["ann_runs"][0]
        assert exact["mode"] == "exact"
        assert exact["nprobe"] is None
        assert exact["recall_at_n"] == 1.0
        assert exact["exact_match"] is True
        assert exact["candidates"] == exact["num_items"] * exact["num_queries"]

    def test_full_probe_row_rides_along_and_is_exact(self, ann_payload):
        # The configured sweep is (1, 4); the full-probe row (nprobe ==
        # cells) is always appended — and it must be element-identical.
        ivf = [r for r in ann_payload["ann_runs"] if r["mode"] == "ivf"]
        assert [r["nprobe"] for r in ivf] == [1, 4, 16]
        full = ivf[-1]
        assert full["nprobe"] == full["cells"]
        assert full["exact_match"] is True
        assert full["recall_at_n"] == 1.0
        assert full["candidates"] == full["num_items"] * full["num_queries"]

    def test_recall_monotone_in_nprobe(self, ann_payload):
        ivf = [r for r in ann_payload["ann_runs"] if r["mode"] == "ivf"]
        recalls = [r["recall_at_n"] for r in ivf]
        assert recalls == sorted(recalls)
        candidates = [r["candidates"] for r in ivf]
        assert candidates == sorted(candidates)

    def test_build_seconds_shared_across_ivf_rows(self, ann_payload):
        ivf = [r for r in ann_payload["ann_runs"] if r["mode"] == "ivf"]
        assert len({r["build_seconds"] for r in ivf}) == 1
        assert ivf[0]["build_seconds"] > 0

    def test_render_mentions_ann_rows(self, ann_payload):
        text = render_bench(ann_payload)
        assert "ann mode" in text
        assert "standin_2000" in text
        assert "recall" in text

    def test_json_round_trip(self, ann_payload, tmp_path):
        path = tmp_path / "BENCH_ann.json"
        write_bench(ann_payload, str(path))
        validate_bench(json.loads(path.read_text()))


class TestAnnSchema:
    def test_valid_ann_rows_accepted(self, smoke_payload):
        doc = dict(smoke_payload, ann_runs=[
            _ann_row(mode="exact", nprobe=None, cells=0, build_seconds=0.0,
                     recall_at_n=1.0, exact_match=True),
            _ann_row(),
        ])
        validate_bench(doc)

    def test_ann_axis_alone_suffices(self, smoke_payload):
        doc = dict(
            smoke_payload, runs=[], comparisons=[], topk_runs=[],
            topk_comparisons=[], serve_runs=[], ann_runs=[_ann_row()],
        )
        validate_bench(doc)

    def test_rejects_bad_ann_mode(self, smoke_payload):
        doc = dict(smoke_payload, ann_runs=[_ann_row(mode="hnsw")])
        with pytest.raises(ValueError, match="mode must be one of"):
            validate_bench(doc)

    def test_rejects_ivf_row_without_nprobe(self, smoke_payload):
        doc = dict(smoke_payload, ann_runs=[_ann_row(nprobe=None)])
        with pytest.raises(ValueError, match="nprobe is required"):
            validate_bench(doc)

    def test_rejects_zero_nprobe(self, smoke_payload):
        doc = dict(smoke_payload, ann_runs=[_ann_row(nprobe=0)])
        with pytest.raises(ValueError, match="nprobe must be >= 1"):
            validate_bench(doc)

    def test_rejects_recall_out_of_range(self, smoke_payload):
        doc = dict(smoke_payload, ann_runs=[_ann_row(recall_at_n=1.5)])
        with pytest.raises(ValueError, match="recall_at_n"):
            validate_bench(doc)

    def test_rejects_negative_latency(self, smoke_payload):
        doc = dict(smoke_payload, ann_runs=[_ann_row(p95_ms=-1.0)])
        with pytest.raises(ValueError, match="p95_ms must be non-negative"):
            validate_bench(doc)

    def test_rejects_missing_ann_key(self, smoke_payload):
        row = _ann_row()
        del row["exact_match"]
        doc = dict(smoke_payload, ann_runs=[row])
        with pytest.raises(ValueError, match="missing 'exact_match'"):
            validate_bench(doc)

    def test_v4_document_upgrades_with_ann_axis_absent(self, smoke_payload):
        doc = copy.deepcopy(smoke_payload)
        doc["version"] = 4
        doc.pop("ann_runs")
        for key in ("ann", "ann_items", "ann_queries", "ann_cells",
                    "ann_nprobe", "ann_n"):
            doc["config"].pop(key)
        upgraded = upgrade_bench(doc)
        validate_bench(upgraded)
        assert upgraded["version"] == BENCH_SCHEMA_VERSION
        assert upgraded["config"]["ann"] is False
        assert upgraded["ann_runs"] == []


class TestAnnCompare:
    def test_self_compare_includes_ann_rows(self, ann_payload):
        result = compare_bench(ann_payload, ann_payload)
        assert len(result["rows"]) == len(ann_payload["ann_runs"])
        policies = {row["policy"] for row in result["rows"]}
        assert "ann:exact" in policies
        assert any(p.startswith("ann:ivf/p") for p in policies)
        assert result["regressions"] == []
        assert result["matvec_drift"] == []
        assert "verdict: ok" in render_compare(result)

    def test_flags_ann_candidate_drift(self, ann_payload):
        drifted = copy.deepcopy(ann_payload)
        ivf = next(r for r in drifted["ann_runs"] if r["mode"] == "ivf")
        ivf["candidates"] += 11
        result = compare_bench(ann_payload, drifted)
        assert len(result["matvec_drift"]) == 1

    def test_full_probe_mismatch_is_invariant_violation(self, ann_payload):
        broken = copy.deepcopy(ann_payload)
        full = next(
            r for r in broken["ann_runs"]
            if r["mode"] == "ivf" and r["nprobe"] == r["cells"]
        )
        full["exact_match"] = False
        result = compare_bench(ann_payload, broken)
        assert len(result["invariant_violations"]) == 1
        # A *partial* probe's mismatch is expected, not a violation.
        partial = copy.deepcopy(ann_payload)
        row = next(
            r for r in partial["ann_runs"]
            if r["mode"] == "ivf" and r["nprobe"] < r["cells"]
        )
        row["exact_match"] = False
        assert compare_bench(ann_payload, partial)["invariant_violations"] == []


@pytest.fixture(scope="module")
def quant_payload():
    """A seconds-scale quant-axis-only document (tiny stand-in)."""
    return run_bench(
        BenchConfig(
            datasets=("toy",),
            methods=("GEBE^p",),
            dimension=8,
            repeats=1,
            fit_grid=False,
            topk=False,
            quant=True,
            quant_items=2_000,
            quant_queries=8,
            quant_n=5,
        )
    )


def _quant_row(**overrides):
    row = {
        "method": "quantized-topk", "dataset": "standin_2000",
        "mode": "int8", "mmap": True, "num_users": 8, "num_items": 2000,
        "n": 5, "publish_seconds": 0.05, "load_seconds": 0.002,
        "load_speedup": 3.0, "artifact_bytes": 70000,
        "resident_bytes": 30000, "wall_seconds": 0.1, "p50_ms": 1.0,
        "p95_ms": 2.0, "candidates": 400, "lists_equal": True,
    }
    row.update(overrides)
    return row


class TestQuantAxis:
    def test_document_validates(self, quant_payload):
        validate_bench(quant_payload)
        assert quant_payload["quant_runs"]
        assert quant_payload["runs"] == []
        assert quant_payload["topk_runs"] == []

    def test_exact_eager_anchor_row_first(self, quant_payload):
        anchor = quant_payload["quant_runs"][0]
        assert anchor["mode"] == "exact"
        assert anchor["mmap"] is False
        assert anchor["load_speedup"] == 1.0
        assert anchor["candidates"] == 0

    def test_covers_both_codecs_plus_exact_mmap(self, quant_payload):
        cells = [
            (row["mode"], row["mmap"]) for row in quant_payload["quant_runs"]
        ]
        assert cells == [
            ("exact", False),
            ("exact", True),
            ("float16", True),
            ("int8", True),
        ]

    def test_every_row_list_identical(self, quant_payload):
        # The hard invariant the CLI exits non-zero on.
        assert all(row["lists_equal"] for row in quant_payload["quant_runs"])

    def test_quantized_artifacts_smaller_and_margin_bounded(
        self, quant_payload
    ):
        rows = {row["mode"]: row for row in quant_payload["quant_runs"][1:]}
        exact = rows["exact"]
        for codec in ("float16", "int8"):
            assert rows[codec]["artifact_bytes"] < exact["artifact_bytes"]
            assert rows[codec]["resident_bytes"] < exact["resident_bytes"]
            # The margin reranks a strict subset of the cross product.
            full = rows[codec]["num_users"] * rows[codec]["num_items"]
            assert 0 < rows[codec]["candidates"] < full

    def test_render_mentions_quant_rows(self, quant_payload):
        text = render_bench(quant_payload)
        assert "quantized artifacts" in text
        assert "int8" in text and "float16" in text

    def test_json_round_trip(self, quant_payload, tmp_path):
        path = tmp_path / "quant.json"
        write_bench(quant_payload, str(path))
        assert load_bench(str(path))["quant_runs"] == (
            quant_payload["quant_runs"]
        )


class TestQuantSchema:
    def test_valid_quant_rows_accepted(self, smoke_payload):
        payload = copy.deepcopy(smoke_payload)
        payload["quant_runs"] = [
            _quant_row(mode="exact", mmap=False, load_speedup=1.0),
            _quant_row(),
        ]
        validate_bench(payload)

    def test_quant_axis_alone_suffices(self, smoke_payload):
        payload = copy.deepcopy(smoke_payload)
        payload.update(
            runs=[], comparisons=[], topk_runs=[], topk_comparisons=[],
            serve_runs=[], ann_runs=[], quant_runs=[_quant_row()],
        )
        validate_bench(payload)

    def test_rejects_bad_mode(self, smoke_payload):
        payload = copy.deepcopy(smoke_payload)
        payload["quant_runs"] = [_quant_row(mode="int4")]
        with pytest.raises(ValueError, match="mode must be one of"):
            validate_bench(payload)

    def test_rejects_non_positive_speedup(self, smoke_payload):
        payload = copy.deepcopy(smoke_payload)
        payload["quant_runs"] = [_quant_row(load_speedup=0.0)]
        with pytest.raises(ValueError, match="load_speedup"):
            validate_bench(payload)

    def test_rejects_negative_latency(self, smoke_payload):
        payload = copy.deepcopy(smoke_payload)
        payload["quant_runs"] = [_quant_row(p95_ms=-1.0)]
        with pytest.raises(ValueError, match="p95_ms"):
            validate_bench(payload)

    def test_rejects_missing_key(self, smoke_payload):
        payload = copy.deepcopy(smoke_payload)
        row = _quant_row()
        del row["lists_equal"]
        payload["quant_runs"] = [row]
        with pytest.raises(ValueError, match="lists_equal"):
            validate_bench(payload)

    def test_v5_document_upgrades_with_quant_axis_absent(self, smoke_payload):
        payload = copy.deepcopy(smoke_payload)
        payload["version"] = 5
        del payload["quant_runs"]
        for key in (
            "quant", "quant_items", "quant_queries", "quant_dtypes",
            "quant_n",
        ):
            del payload["config"][key]
        upgraded = validate_bench(upgrade_bench(payload))
        assert upgraded["version"] == BENCH_SCHEMA_VERSION
        assert upgraded["quant_runs"] == []
        assert upgraded["config"]["quant"] is False
        assert upgraded["config"]["quant_dtypes"] == []


class TestQuantCompare:
    def test_self_compare_includes_quant_rows(self, quant_payload):
        result = compare_bench(quant_payload, quant_payload)
        policies = {row["policy"] for row in result["rows"]}
        assert "quant:exact/eager" in policies
        assert "quant:int8/mmap" in policies
        assert "quant:float16/mmap" in policies
        assert result["regressions"] == []
        assert result["matvec_drift"] == []
        assert result["invariant_violations"] == []

    def test_flags_quant_candidate_drift(self, quant_payload):
        fresh = copy.deepcopy(quant_payload)
        for row in fresh["quant_runs"]:
            if row["mode"] == "int8":
                row["candidates"] += 7
        result = compare_bench(quant_payload, fresh)
        drifted = {row["policy"] for row in result["matvec_drift"]}
        assert drifted == {"quant:int8/mmap"}

    def test_lists_mismatch_is_invariant_violation(self, quant_payload):
        fresh = copy.deepcopy(quant_payload)
        fresh["quant_runs"][-1]["lists_equal"] = False
        result = compare_bench(quant_payload, fresh)
        assert fresh["quant_runs"][-1] in result["invariant_violations"]


@pytest.fixture(scope="module")
def refresh_payload():
    """A seconds-scale refresh-axis-only document (toy graph delta)."""
    return run_bench(
        BenchConfig(
            datasets=("toy",),
            methods=("GEBE^p",),
            dimension=8,
            repeats=1,
            fit_grid=False,
            topk=False,
            refresh=True,
        )
    )


def _refresh_row(**overrides):
    row = {
        "method": "GEBE^p", "dataset": "toy", "mode": "warm",
        "refresh_mode": "warm", "delta_edges": 1, "delta_fraction": 0.01,
        "wall_seconds": 0.01, "wall_seconds_all": [0.01], "matvecs": 40,
        "qr_factorizations": 3, "publish_bytes": 2800,
        "full_publish_bytes": 3700, "quality_ok": True,
    }
    row.update(overrides)
    return row


class TestRefreshAxis:
    def test_document_validates(self, refresh_payload):
        validate_bench(refresh_payload)
        assert refresh_payload["refresh_runs"]
        assert refresh_payload["runs"] == []

    def test_cold_anchor_row_first(self, refresh_payload):
        anchor = refresh_payload["refresh_runs"][0]
        assert anchor["mode"] == "cold"
        assert anchor["refresh_mode"] is None

    def test_warm_refit_saves_matvecs_and_qr(self, refresh_payload):
        rows = {row["mode"]: row for row in refresh_payload["refresh_runs"]}
        assert rows["warm"]["refresh_mode"] == "warm"  # accepted, not fallback
        assert rows["warm"]["matvecs"] < rows["cold"]["matvecs"]
        assert (
            rows["warm"]["qr_factorizations"]
            < rows["cold"]["qr_factorizations"]
        )

    def test_delta_publish_smaller_than_full(self, refresh_payload):
        warm = next(
            row
            for row in refresh_payload["refresh_runs"]
            if row["mode"] == "warm"
        )
        assert 0 < warm["publish_bytes"] < warm["full_publish_bytes"]

    def test_quality_gate_passes(self, refresh_payload):
        assert all(
            row["quality_ok"] for row in refresh_payload["refresh_runs"]
        )

    def test_delta_touches_requested_fraction(self, refresh_payload):
        for row in refresh_payload["refresh_runs"]:
            assert row["delta_edges"] >= 1
            assert 0.0 <= row["delta_fraction"] <= 1.0

    def test_render_mentions_refresh_rows(self, refresh_payload):
        text = render_bench(refresh_payload)
        assert "incremental refresh" in text
        assert "cold" in text and "warm" in text

    def test_json_round_trip(self, refresh_payload, tmp_path):
        path = tmp_path / "refresh.json"
        write_bench(refresh_payload, str(path))
        assert load_bench(str(path))["refresh_runs"] == (
            refresh_payload["refresh_runs"]
        )


class TestRefreshSchema:
    def test_valid_refresh_rows_accepted(self, smoke_payload):
        payload = copy.deepcopy(smoke_payload)
        payload["refresh_runs"] = [
            _refresh_row(mode="cold", refresh_mode=None, matvecs=88),
            _refresh_row(),
            _refresh_row(refresh_mode="cold_fallback", matvecs=88),
        ]
        validate_bench(payload)

    def test_refresh_axis_alone_suffices(self, smoke_payload):
        payload = copy.deepcopy(smoke_payload)
        payload.update(
            runs=[], comparisons=[], topk_runs=[], topk_comparisons=[],
            serve_runs=[], ann_runs=[], quant_runs=[],
            refresh_runs=[_refresh_row()],
        )
        validate_bench(payload)

    def test_rejects_bad_mode(self, smoke_payload):
        payload = copy.deepcopy(smoke_payload)
        payload["refresh_runs"] = [_refresh_row(mode="lukewarm")]
        with pytest.raises(ValueError, match="mode must be one of"):
            validate_bench(payload)

    def test_warm_row_needs_submode(self, smoke_payload):
        payload = copy.deepcopy(smoke_payload)
        payload["refresh_runs"] = [_refresh_row(refresh_mode=None)]
        with pytest.raises(ValueError, match="refresh_mode must be one of"):
            validate_bench(payload)

    def test_cold_row_must_have_null_submode(self, smoke_payload):
        payload = copy.deepcopy(smoke_payload)
        payload["refresh_runs"] = [
            _refresh_row(mode="cold", refresh_mode="warm")
        ]
        with pytest.raises(ValueError, match="must be null for cold rows"):
            validate_bench(payload)

    def test_rejects_out_of_range_fraction(self, smoke_payload):
        payload = copy.deepcopy(smoke_payload)
        payload["refresh_runs"] = [_refresh_row(delta_fraction=1.5)]
        with pytest.raises(ValueError, match="delta_fraction"):
            validate_bench(payload)

    def test_rejects_missing_key(self, smoke_payload):
        payload = copy.deepcopy(smoke_payload)
        row = _refresh_row()
        del row["quality_ok"]
        payload["refresh_runs"] = [row]
        with pytest.raises(ValueError, match="quality_ok"):
            validate_bench(payload)

    def test_v6_document_upgrades_with_refresh_axis_absent(
        self, smoke_payload
    ):
        payload = copy.deepcopy(smoke_payload)
        payload["version"] = 6
        del payload["refresh_runs"]
        for key in ("refresh", "refresh_fraction", "refresh_n"):
            del payload["config"][key]
        upgraded = upgrade_bench(payload)
        validate_bench(upgraded)
        assert upgraded["version"] == BENCH_SCHEMA_VERSION
        assert upgraded["refresh_runs"] == []
        assert upgraded["config"]["refresh"] is False


class TestRefreshCompare:
    def test_no_violations_on_real_document(self, refresh_payload):
        assert refresh_violations(refresh_payload["refresh_runs"]) == []

    def test_flags_quality_failure(self):
        rows = [
            _refresh_row(mode="cold", refresh_mode=None, matvecs=88),
            _refresh_row(quality_ok=False),
        ]
        assert refresh_violations(rows) == [rows[1]]

    def test_flags_warm_without_matvec_savings(self):
        rows = [
            _refresh_row(mode="cold", refresh_mode=None, matvecs=88),
            _refresh_row(matvecs=88),
        ]
        assert refresh_violations(rows) == [rows[1]]

    def test_self_compare_includes_refresh_rows(self, refresh_payload):
        result = compare_bench(refresh_payload, refresh_payload)
        policies = {row["policy"] for row in result["rows"]}
        assert "refresh:cold" in policies
        assert "refresh:warm" in policies
        assert result["invariant_violations"] == []

    def test_violation_propagates_to_compare(self, refresh_payload):
        broken = copy.deepcopy(refresh_payload)
        warm = next(
            row for row in broken["refresh_runs"] if row["mode"] == "warm"
        )
        warm["quality_ok"] = False
        result = compare_bench(refresh_payload, broken)
        assert warm in result["invariant_violations"]


@pytest.fixture(scope="module")
def ooc_payload():
    """A seconds-scale ooc-axis-only document (tiny ingest stand-in)."""
    return run_bench(
        BenchConfig(
            datasets=("toy",),
            methods=("GEBE^p",),
            dimension=8,
            repeats=1,
            fit_grid=False,
            topk=False,
            ooc=True,
            ooc_items=2_000,
            ooc_budgets_mb=(0.25, 4.0),
        )
    )


def _ooc_row(**overrides):
    row = {
        "method": "GEBE^p", "dataset": "standin_2000", "mode": "mmap",
        "budget_mb": 4.0, "threads": 1, "num_u": 250, "num_v": 2000,
        "nnz": 2000, "wall_seconds": 0.05, "wall_seconds_all": [0.05],
        "wall_overhead": 1.2, "matvecs": 88, "bytes_copied_in": 32000,
        "peak_rss_bytes": 1 << 20, "rss_budget_bytes": 1 << 26,
        "rss_within_budget": True, "matvecs_equal": True,
        "bit_identical": True,
    }
    row.update(overrides)
    return row


class TestOocAxis:
    def test_document_validates(self, ooc_payload):
        validate_bench(ooc_payload)
        assert ooc_payload["ooc_runs"]
        assert ooc_payload["runs"] == []
        assert ooc_payload["topk_runs"] == []

    def test_resident_anchor_row_first(self, ooc_payload):
        anchor = ooc_payload["ooc_runs"][0]
        assert anchor["mode"] == "resident"
        assert anchor["budget_mb"] is None
        assert anchor["wall_overhead"] == 1.0
        assert anchor["bytes_copied_in"] == 0

    def test_one_serial_mmap_row_per_budget(self, ooc_payload):
        serial = [
            row["budget_mb"]
            for row in ooc_payload["ooc_runs"]
            if row["mode"] == "mmap" and row["threads"] == 1
        ]
        assert serial == [0.25, 4.0]

    def test_threaded_row_rides_along_at_largest_budget(self, ooc_payload):
        threaded = [
            row
            for row in ooc_payload["ooc_runs"]
            if row["threads"] > 1
        ]
        assert len(threaded) == 1
        assert threaded[0]["mode"] == "mmap"
        assert threaded[0]["budget_mb"] == 4.0

    def test_every_gate_passes(self, ooc_payload):
        for row in ooc_payload["ooc_runs"]:
            assert row["bit_identical"]
            assert row["matvecs_equal"]
            assert row["rss_within_budget"]

    def test_mmap_rows_copy_the_stream_in(self, ooc_payload):
        anchor = ooc_payload["ooc_runs"][0]
        for row in ooc_payload["ooc_runs"][1:]:
            assert row["matvecs"] == anchor["matvecs"]
            assert row["bytes_copied_in"] > 0

    def test_render_mentions_ooc_rows(self, ooc_payload):
        text = render_bench(ooc_payload)
        assert "out-of-core" in text
        assert "resident" in text and "mmap" in text

    def test_json_round_trip(self, ooc_payload, tmp_path):
        path = tmp_path / "ooc.json"
        write_bench(ooc_payload, str(path))
        assert load_bench(str(path))["ooc_runs"] == ooc_payload["ooc_runs"]


class TestOocSchema:
    def test_valid_ooc_rows_accepted(self, smoke_payload):
        payload = copy.deepcopy(smoke_payload)
        payload["ooc_runs"] = [
            _ooc_row(mode="resident", budget_mb=None, wall_overhead=1.0,
                     bytes_copied_in=0, rss_budget_bytes=None),
            _ooc_row(),
            _ooc_row(budget_mb=0.25, threads=4),
        ]
        validate_bench(payload)

    def test_ooc_axis_alone_suffices(self, smoke_payload):
        payload = copy.deepcopy(smoke_payload)
        payload.update(
            runs=[], comparisons=[], topk_runs=[], topk_comparisons=[],
            serve_runs=[], ann_runs=[], quant_runs=[], refresh_runs=[],
            ooc_runs=[_ooc_row()],
        )
        validate_bench(payload)

    def test_rejects_bad_mode(self, smoke_payload):
        payload = copy.deepcopy(smoke_payload)
        payload["ooc_runs"] = [_ooc_row(mode="paged")]
        with pytest.raises(ValueError, match="mode must be one of"):
            validate_bench(payload)

    def test_resident_row_must_have_null_budget(self, smoke_payload):
        payload = copy.deepcopy(smoke_payload)
        payload["ooc_runs"] = [_ooc_row(mode="resident")]
        with pytest.raises(ValueError, match="must be null for resident"):
            validate_bench(payload)

    def test_rejects_non_positive_budget(self, smoke_payload):
        payload = copy.deepcopy(smoke_payload)
        payload["ooc_runs"] = [_ooc_row(budget_mb=0.0)]
        with pytest.raises(ValueError, match="budget_mb must be positive"):
            validate_bench(payload)

    def test_rejects_missing_key(self, smoke_payload):
        payload = copy.deepcopy(smoke_payload)
        row = _ooc_row()
        del row["bit_identical"]
        payload["ooc_runs"] = [row]
        with pytest.raises(ValueError, match="bit_identical"):
            validate_bench(payload)

    def test_rejects_bool_gate_as_int(self, smoke_payload):
        payload = copy.deepcopy(smoke_payload)
        payload["ooc_runs"] = [_ooc_row(rss_within_budget=1)]
        with pytest.raises(ValueError, match="rss_within_budget"):
            validate_bench(payload)

    def test_v7_document_upgrades_with_ooc_axis_absent(self, smoke_payload):
        payload = copy.deepcopy(smoke_payload)
        payload["version"] = 7
        del payload["ooc_runs"]
        for key in ("ooc", "ooc_items", "ooc_budgets_mb"):
            del payload["config"][key]
        upgraded = upgrade_bench(payload)
        validate_bench(upgraded)
        assert upgraded["version"] == BENCH_SCHEMA_VERSION
        assert upgraded["ooc_runs"] == []
        assert upgraded["config"]["ooc"] is False


class TestOocCompare:
    def test_no_violations_on_real_document(self, ooc_payload):
        assert ooc_violations(ooc_payload["ooc_runs"]) == []

    @pytest.mark.parametrize(
        "gate", ["bit_identical", "matvecs_equal", "rss_within_budget"]
    )
    def test_flags_each_gate_failure(self, gate):
        rows = [
            _ooc_row(mode="resident", budget_mb=None, wall_overhead=1.0,
                     bytes_copied_in=0, rss_budget_bytes=None),
            _ooc_row(**{gate: False}),
        ]
        assert ooc_violations(rows) == [rows[1]]

    def test_self_compare_includes_ooc_rows(self, ooc_payload):
        result = compare_bench(ooc_payload, ooc_payload)
        policies = {row["policy"] for row in result["rows"]}
        assert "ooc:resident" in policies
        assert "ooc:mmap/b0.25" in policies
        assert "ooc:mmap/b4" in policies
        assert result["invariant_violations"] == []

    def test_violation_propagates_to_compare(self, ooc_payload):
        broken = copy.deepcopy(ooc_payload)
        row = next(
            r for r in broken["ooc_runs"] if r["mode"] == "mmap"
        )
        row["bit_identical"] = False
        result = compare_bench(ooc_payload, broken)
        assert row in result["invariant_violations"]


@pytest.fixture(scope="module")
def similar_payload():
    """A seconds-scale similarity-axis-only document (tiny stand-in graph)."""
    return run_bench(
        BenchConfig(
            datasets=("toy",),
            methods=("GEBE^p",),
            dimension=8,
            repeats=1,
            threads=(1, 2),
            fit_grid=False,
            topk=False,
            similar=True,
            similar_users=60,
            similar_items=40,
            similar_queries=12,
            similar_tau=4,
            similar_n=5,
            similar_block_sources=(4, 16),
        )
    )


def _similar_row(**overrides):
    row = {
        "method": "similarity", "dataset": "standin_600x400", "mode": "mhs",
        "block_sources": 8, "threads": 1, "num_u": 600, "num_v": 400,
        "tau": 5, "n": 10, "num_queries": 64, "wall_seconds": 0.05,
        "p50_ms": 0.2, "p95_ms": 0.5, "matvecs_per_query": 10.0,
        "lists_equal": True,
    }
    row.update(overrides)
    return row


class TestSimilarAxis:
    def test_document_validates(self, similar_payload):
        validate_bench(similar_payload)
        assert similar_payload["similar_runs"]
        assert similar_payload["runs"] == []
        assert similar_payload["topk_runs"] == []

    def test_one_serial_row_per_mode_and_block(self, similar_payload):
        for mode in ("mhs", "mhp"):
            serial = [
                row["block_sources"]
                for row in similar_payload["similar_runs"]
                if row["mode"] == mode and row["threads"] == 1
            ]
            assert serial == [4, 16]

    def test_threaded_row_rides_along_at_largest_block(self, similar_payload):
        for mode in ("mhs", "mhp"):
            threaded = [
                row
                for row in similar_payload["similar_runs"]
                if row["mode"] == mode and row["threads"] > 1
            ]
            assert len(threaded) == 1
            assert threaded[0]["block_sources"] == 16

    def test_every_list_gate_passes(self, similar_payload):
        assert similar_payload["similar_runs"]
        for row in similar_payload["similar_runs"]:
            assert row["lists_equal"] is True

    def test_matvec_cost_matches_engine_formula(self, similar_payload):
        # tau=4: 8 matvecs per MHS query, 9 per MHP query (the +1 is W^T).
        for row in similar_payload["similar_runs"]:
            expected = 8.0 if row["mode"] == "mhs" else 9.0
            assert row["matvecs_per_query"] == expected

    def test_latency_percentiles_ordered(self, similar_payload):
        for row in similar_payload["similar_runs"]:
            assert 0.0 <= row["p50_ms"] <= row["p95_ms"]

    def test_render_mentions_similar_rows(self, similar_payload):
        text = render_bench(similar_payload)
        assert "similarity queries" in text
        assert "mhs" in text and "mhp" in text

    def test_json_round_trip(self, similar_payload, tmp_path):
        path = tmp_path / "similar.json"
        write_bench(similar_payload, str(path))
        loaded = load_bench(str(path))
        assert loaded["similar_runs"] == similar_payload["similar_runs"]


class TestSimilarSchema:
    def test_valid_similar_rows_accepted(self, smoke_payload):
        payload = copy.deepcopy(smoke_payload)
        payload["similar_runs"] = [
            _similar_row(),
            _similar_row(mode="mhp", matvecs_per_query=11.0),
            _similar_row(block_sources=64, threads=4),
        ]
        validate_bench(payload)

    def test_similar_axis_alone_suffices(self, smoke_payload):
        payload = copy.deepcopy(smoke_payload)
        payload.update(
            runs=[], comparisons=[], topk_runs=[], topk_comparisons=[],
            serve_runs=[], ann_runs=[], quant_runs=[], refresh_runs=[],
            ooc_runs=[], similar_runs=[_similar_row()],
        )
        validate_bench(payload)

    def test_rejects_bad_mode(self, smoke_payload):
        payload = copy.deepcopy(smoke_payload)
        payload["similar_runs"] = [_similar_row(mode="cosine")]
        with pytest.raises(ValueError, match="mode must be one of"):
            validate_bench(payload)

    def test_rejects_non_positive_block(self, smoke_payload):
        payload = copy.deepcopy(smoke_payload)
        payload["similar_runs"] = [_similar_row(block_sources=0)]
        with pytest.raises(ValueError, match="block_sources must be >= 1"):
            validate_bench(payload)

    def test_rejects_missing_key(self, smoke_payload):
        payload = copy.deepcopy(smoke_payload)
        row = _similar_row()
        del row["lists_equal"]
        payload["similar_runs"] = [row]
        with pytest.raises(ValueError, match="lists_equal"):
            validate_bench(payload)

    def test_rejects_bool_gate_as_int(self, smoke_payload):
        payload = copy.deepcopy(smoke_payload)
        payload["similar_runs"] = [_similar_row(lists_equal=1)]
        with pytest.raises(ValueError, match="lists_equal"):
            validate_bench(payload)

    def test_rejects_negative_latency(self, smoke_payload):
        payload = copy.deepcopy(smoke_payload)
        payload["similar_runs"] = [_similar_row(p95_ms=-0.1)]
        with pytest.raises(ValueError, match="p95_ms must be non-negative"):
            validate_bench(payload)

    def test_v8_document_upgrades_with_similar_axis_absent(
        self, smoke_payload
    ):
        payload = copy.deepcopy(smoke_payload)
        payload["version"] = 8
        del payload["similar_runs"]
        for key in (
            "similar", "similar_users", "similar_items", "similar_queries",
            "similar_tau", "similar_n", "similar_block_sources",
            "similar_seed",
        ):
            del payload["config"][key]
        upgraded = upgrade_bench(payload)
        validate_bench(upgraded)
        assert upgraded["version"] == BENCH_SCHEMA_VERSION
        assert upgraded["similar_runs"] == []
        assert upgraded["config"]["similar"] is False

    def test_v7_document_upgrades_through_both_steps(self, smoke_payload):
        # v7 -> v8 (ooc absent) -> v9 (similar absent) in one upgrade call.
        payload = copy.deepcopy(smoke_payload)
        payload["version"] = 7
        del payload["ooc_runs"]
        del payload["similar_runs"]
        for key in ("ooc", "ooc_items", "ooc_budgets_mb"):
            del payload["config"][key]
        for key in (
            "similar", "similar_users", "similar_items", "similar_queries",
            "similar_tau", "similar_n", "similar_block_sources",
            "similar_seed",
        ):
            del payload["config"][key]
        upgraded = upgrade_bench(payload)
        validate_bench(upgraded)
        assert upgraded["version"] == BENCH_SCHEMA_VERSION
        assert upgraded["ooc_runs"] == []
        assert upgraded["similar_runs"] == []


class TestSimilarCompare:
    def test_no_violations_on_real_document(self, similar_payload):
        assert similar_violations(similar_payload["similar_runs"]) == []

    def test_flags_lists_mismatch(self):
        rows = [_similar_row(), _similar_row(mode="mhp", lists_equal=False)]
        assert similar_violations(rows) == [rows[1]]

    def test_self_compare_includes_similar_rows(self, similar_payload):
        result = compare_bench(similar_payload, similar_payload)
        policies = {row["policy"] for row in result["rows"]}
        assert "similar:b4/t1" in policies
        assert "similar:b16/t1" in policies
        assert "similar:b16/t2" in policies
        methods = {row["method"] for row in result["rows"]}
        assert "similarity:mhs" in methods and "similarity:mhp" in methods
        assert result["invariant_violations"] == []

    def test_violation_propagates_to_compare(self, similar_payload):
        broken = copy.deepcopy(similar_payload)
        row = broken["similar_runs"][0]
        row["lists_equal"] = False
        result = compare_bench(similar_payload, broken)
        assert row in result["invariant_violations"]
