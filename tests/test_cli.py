"""Unit tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.datasets import latent_factor_ratings, RatingModel
from repro.graph import write_edge_list


@pytest.fixture
def edge_file(tmp_path):
    model = RatingModel(
        num_users=60, num_items=40, edges_per_user=10,
        num_factors=6, num_communities=3,
    )
    graph = latent_factor_ratings(model, seed=0)
    path = tmp_path / "graph.tsv"
    write_edge_list(graph, path)
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_embed_defaults(self):
        args = build_parser().parse_args(["embed", "in.tsv", "out.npz"])
        assert args.method == "GEBE^p"
        assert args.dimension == 128

    def test_unknown_method_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["embed", "a", "b", "--method", "GloVe"])


class TestEmbed:
    def test_writes_npz(self, edge_file, tmp_path):
        out = str(tmp_path / "emb.npz")
        code = main(
            ["embed", edge_file, out, "--dimension", "8", "--seed", "0"]
        )
        assert code == 0
        bundle = np.load(out)
        assert bundle["u"].shape[1] == 8
        assert bundle["v"].shape[1] == 8

    def test_any_registered_method(self, edge_file, tmp_path):
        out = str(tmp_path / "emb.npz")
        code = main(
            ["embed", edge_file, out, "--method", "MHP-BNE", "--dimension", "4"]
        )
        assert code == 0

    def test_threads_flag_matches_serial_output(self, edge_file, tmp_path):
        # Parallelism is bit-identical, so --threads must not change the
        # embeddings.
        serial = str(tmp_path / "serial.npz")
        threaded = str(tmp_path / "threaded.npz")
        base = ["embed", edge_file, "--dimension", "8", "--seed", "0"]
        assert main([*base[:2], serial, *base[2:], "--threads", "1"]) == 0
        assert main([*base[:2], threaded, *base[2:], "--threads", "4"]) == 0
        a, b = np.load(serial), np.load(threaded)
        np.testing.assert_array_equal(a["u"], b["u"])
        np.testing.assert_array_equal(a["v"], b["v"])

    def test_threads_rejected_for_competitors(self, edge_file, tmp_path, capsys):
        out = str(tmp_path / "emb.npz")
        code = main(
            ["embed", edge_file, out, "--method", "DeepWalk", "--threads", "2"]
        )
        assert code == 2
        assert "proposed" in capsys.readouterr().err

    def test_threads_must_be_positive(self, edge_file, tmp_path, capsys):
        out = str(tmp_path / "emb.npz")
        code = main(["embed", edge_file, out, "--threads", "0"])
        assert code == 2
        assert "--threads" in capsys.readouterr().err


class TestRecommend:
    def test_prints_top_n(self, edge_file, capsys):
        code = main(
            ["recommend", edge_file, "0", "-n", "3", "--dimension", "8"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "top-3" in out
        assert out.count("\n") == 4  # header + 3 items

    def test_unknown_user(self, edge_file, capsys):
        code = main(["recommend", edge_file, "ghost", "--dimension", "4"])
        assert code == 2
        assert "unknown user" in capsys.readouterr().err

    def test_block_rows_path_matches_per_user(self, edge_file, capsys):
        assert main(["recommend", edge_file, "0", "-n", "5",
                     "--dimension", "8"]) == 0
        per_user = capsys.readouterr().out
        assert main(["recommend", edge_file, "0", "-n", "5",
                     "--dimension", "8", "--block-rows", "16"]) == 0
        assert capsys.readouterr().out == per_user


class TestQuery:
    @pytest.fixture
    def embeddings(self, edge_file, tmp_path):
        out = str(tmp_path / "emb.npz")
        assert main(["embed", edge_file, out, "--dimension", "8"]) == 0
        return out

    def test_prints_one_line_per_user(self, embeddings, capsys):
        assert main(["query", embeddings, "-n", "4"]) == 0
        out = capsys.readouterr().out.strip().split("\n")
        assert len(out) == 60
        assert all(len(line.split("\t")[1].split()) == 4 for line in out)

    def test_users_subset_with_scores(self, embeddings, capsys):
        code = main(
            ["query", embeddings, "-n", "3", "--users", "0", "5",
             "--with-scores"]
        )
        assert code == 0
        lines = capsys.readouterr().out.strip().split("\n")
        assert [line.split("\t")[0] for line in lines] == ["0", "5"]
        assert ":" in lines[0]

    def test_exclusion_masks_train_edges(self, embeddings, edge_file, capsys):
        from repro.graph import read_edge_list

        graph = read_edge_list(edge_file)
        code = main(
            ["query", embeddings, "-n", "10", "--exclude", edge_file,
             "--users", "0"]
        )
        assert code == 0
        items = [
            int(t) for t in
            capsys.readouterr().out.strip().split("\t")[1].split()
        ]
        assert not set(items) & set(graph.u_neighbors(0).tolist())

    def test_npz_output_round_trips(self, embeddings, tmp_path, capsys):
        out = str(tmp_path / "topk.npz")
        code = main(
            ["query", embeddings, "-n", "6", "--output", out, "--with-scores",
             "--block-rows", "7"]
        )
        assert code == 0
        with np.load(out) as payload:
            assert payload["items"].shape == (60, 6)
            assert payload["scores"].shape == (60, 6)
            assert payload["users"].shape == (60,)

    def test_profile_reports_counters(self, embeddings, capsys):
        code = main(["query", embeddings, "-n", "3", "--profile"])
        assert code == 0
        err = capsys.readouterr().err
        assert "gemm" in err and "candidates" in err

    def test_missing_file_errors(self, tmp_path, capsys):
        code = main(["query", str(tmp_path / "nope.npz")])
        assert code == 2
        assert "cannot read embedding bundle" in capsys.readouterr().err

    def test_block_sizes_agree(self, embeddings, capsys):
        assert main(["query", embeddings, "-n", "5", "--block-rows", "1"]) == 0
        first = capsys.readouterr().out
        assert main(["query", embeddings, "-n", "5", "--block-rows", "64"]) == 0
        assert capsys.readouterr().out == first


class TestIndex:
    @pytest.fixture
    def published(self, edge_file, tmp_path):
        """A store with one embedded artifact; returns (store_dir, emb_path)."""
        emb = str(tmp_path / "emb.npz")
        assert main(["embed", edge_file, emb, "--dimension", "8"]) == 0
        store = str(tmp_path / "store")
        assert main(
            ["publish", emb, "--store", store, "--name", "toy"]
        ) == 0
        return store, emb

    def test_index_builds_and_reports(self, published, tmp_path, capsys):
        store, _ = published
        code = main(
            ["index", "--store", store, "--name", "toy", "--cells", "5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "toy@v1" in out and "5" in out
        from pathlib import Path

        from repro.ann import INDEX_FILE

        assert (Path(store) / "toy" / "v0001" / INDEX_FILE).is_file()

    def test_query_full_probe_matches_exact(self, published, capsys):
        store, emb = published
        assert main(
            ["index", "--store", store, "--name", "toy", "--cells", "4"]
        ) == 0
        capsys.readouterr()
        index = f"{store}/toy/v0001/index-ivf.npz"
        assert main(["query", emb, "-n", "6"]) == 0
        exact = capsys.readouterr().out
        assert main(["query", emb, "-n", "6", "--index", index]) == 0
        assert capsys.readouterr().out == exact

    def test_nprobe_requires_index(self, published, capsys):
        _, emb = published
        assert main(["query", emb, "-n", "3", "--nprobe", "2"]) == 2
        assert "--index" in capsys.readouterr().err

    def test_stale_index_is_pointed_error(self, published, tmp_path, capsys):
        """Index built from toy@v1, queried against different embeddings:
        the digest cross-check names the rebuild command."""
        store, emb = published
        assert main(
            ["index", "--store", store, "--name", "toy", "--cells", "4"]
        ) == 0
        other = str(tmp_path / "other.npz")
        with np.load(emb) as bundle:
            np.savez(other, u=bundle["u"], v=bundle["v"] * 2.0)
        capsys.readouterr()
        index = f"{store}/toy/v0001/index-ivf.npz"
        assert main(["query", other, "-n", "3", "--index", index]) == 2
        err = capsys.readouterr().err
        assert "checksum" in err and "repro index" in err

    def test_serve_shard_flags_parse(self):
        args = build_parser().parse_args(
            ["serve", "--store", "s", "--name", "toy", "--shards", "4",
             "--shard-deadline-ms", "50", "--on-shard-failure", "degrade"]
        )
        assert args.shards == 4
        assert args.on_shard_failure == "degrade"
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["serve", "--store", "s", "--name", "toy",
                 "--on-shard-failure", "retry"]
            )

    def test_bench_ann_flags_conflict(self, capsys):
        assert main(["bench", "--ann-only", "--topk-only"]) == 2
        assert "conflict" in capsys.readouterr().err


class TestEvaluate:
    def test_recommendation_protocol(self, edge_file, capsys):
        code = main(
            [
                "evaluate", edge_file, "--task", "recommendation",
                "--methods", "GEBE^p", "--dimension", "8", "--core", "2",
            ]
        )
        assert code == 0
        assert "F1=" in capsys.readouterr().out

    def test_block_rows_flag(self, edge_file, capsys):
        code = main(
            [
                "evaluate", edge_file, "--task", "recommendation",
                "--methods", "GEBE^p", "--dimension", "8", "--core", "2",
                "--block-rows", "8",
            ]
        )
        assert code == 0
        assert "F1=" in capsys.readouterr().out

    def test_block_rows_rejected_for_link_prediction(self, edge_file, capsys):
        code = main(
            [
                "evaluate", edge_file, "--task", "link_prediction",
                "--methods", "GEBE^p", "--block-rows", "8",
            ]
        )
        assert code == 2
        assert "recommendation" in capsys.readouterr().err

    def test_link_prediction_protocol(self, edge_file, capsys):
        code = main(
            [
                "evaluate", edge_file, "--task", "link_prediction",
                "--methods", "GEBE^p", "MHS-BNE", "--dimension", "8",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("AUC-ROC=") == 2


class TestDatasets:
    def test_listing(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "dblp" in out and "mag" in out

    def test_generate_requires_output(self, capsys):
        assert main(["datasets", "--generate", "dblp"]) == 2
        assert "--output" in capsys.readouterr().err

    def test_generate_writes_tsv(self, tmp_path, capsys):
        out = str(tmp_path / "dblp.tsv")
        assert main(["datasets", "--generate", "dblp", "--output", out]) == 0
        lines = open(out).read().strip().split("\n")
        assert len(lines) == 30_000


class TestQuantizedCli:
    @pytest.fixture
    def embedded(self, edge_file, tmp_path):
        emb = str(tmp_path / "emb.npz")
        assert main(["embed", edge_file, emb, "--dimension", "8"]) == 0
        return emb

    def test_publish_quantize_reports_codec(self, embedded, tmp_path, capsys):
        store = str(tmp_path / "store")
        code = main(
            ["publish", embedded, "--store", store, "--name", "toy",
             "--quantize", "int8"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "quantized=int8" in out

    def test_index_refuses_quantized_artifact(
        self, embedded, tmp_path, capsys
    ):
        store = str(tmp_path / "store")
        assert main(
            ["publish", embedded, "--store", store, "--name", "toy",
             "--quantize", "float16"]
        ) == 0
        capsys.readouterr()
        assert main(
            ["index", "--store", store, "--name", "toy", "--cells", "4"]
        ) == 2
        err = capsys.readouterr().err
        assert "quantized" in err and "republish without --quantize" in err

    def test_query_quantize_lists_match_dequantized_engine(
        self, embedded, capsys
    ):
        """The CLI surface of the margin-rerank guarantee: --quantize lists
        are element-identical to a plain TopKEngine over the *dequantized*
        embeddings (quantization moves the embeddings; the rerank must not
        move the lists on top of that)."""
        from repro.core.quantize import dequantize_columns, quantize_columns
        from repro.tasks import TopKEngine

        with np.load(embedded) as bundle:
            u, v = bundle["u"], bundle["v"]
        for codec in ("float16", "int8"):
            u_deq = dequantize_columns(*quantize_columns(u, codec))
            v_deq = dequantize_columns(*quantize_columns(v, codec))
            expected = TopKEngine(u_deq, v_deq).top_items(6)
            assert main(
                ["query", embedded, "-n", "6", "--quantize", codec]
            ) == 0
            quantized = capsys.readouterr().out
            got = [
                [int(item) for item in line.split("\t")[1].split()]
                for line in quantized.splitlines()
            ]
            assert got == expected.tolist()

    def test_query_quantize_conflicts_with_index(self, embedded, capsys):
        assert main(
            ["query", embedded, "-n", "3", "--quantize", "int8",
             "--index", "whatever.npz"]
        ) == 2
        assert "--quantize" in capsys.readouterr().err

    def test_bench_quant_flags_conflict(self, capsys):
        assert main(["bench", "--quant-only", "--topk-only"]) == 2
        assert "conflict" in capsys.readouterr().err

    def test_bench_quant_only_writes_rows(self, tmp_path, capsys):
        out_path = str(tmp_path / "bench.json")
        code = main(
            ["bench", "--smoke", "--quant-only", "--quant-items", "1500",
             "--output", out_path]
        )
        assert code == 0
        import json as json_mod

        with open(out_path) as handle:
            payload = json_mod.load(handle)
        assert payload["quant_runs"]
        assert all(row["lists_equal"] for row in payload["quant_runs"])
        assert payload["runs"] == [] and payload["topk_runs"] == []


class TestRefreshCli:
    """The `repro refresh` verb: delta log in, delta-published refit out."""

    @pytest.fixture
    def published(self, edge_file, tmp_path):
        """A store whose v1 artifact ships its training graph."""
        emb = str(tmp_path / "emb.npz")
        assert main(
            ["embed", edge_file, emb, "--dimension", "8", "--seed", "0"]
        ) == 0
        store = str(tmp_path / "store")
        assert main(
            ["publish", emb, "--store", store, "--name", "toy",
             "--graph", edge_file]
        ) == 0
        return store

    @pytest.fixture
    def delta_file(self, edge_file, tmp_path):
        from repro.graph import DeltaLog, read_edge_list

        graph = read_edge_list(edge_file)
        log = DeltaLog.for_graph(graph)
        coo = graph.w.tocoo()
        for pos in range(5):
            log.reweight(
                int(coo.row[pos]), int(coo.col[pos]),
                float(coo.data[pos]) * 1.25,
            )
        path = tmp_path / "deltas.jsonl"
        log.save(path)
        return str(path)

    def test_warm_refresh_delta_publishes(self, published, delta_file, capsys):
        code = main(
            ["refresh", delta_file, "--store", published, "--name", "toy"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "toy@v1 -> toy@v2" in out
        assert "5 reweight" in out
        from repro.serve import ArtifactStore

        ref = ArtifactStore(published).resolve("toy")
        assert ref.version == 2
        assert ref.base_version == 1
        ArtifactStore(published).verify(ref)

    def test_cold_flag_skips_warm_start(self, published, delta_file, capsys):
        code = main(
            ["refresh", delta_file, "--store", published, "--name", "toy",
             "--cold"]
        )
        assert code == 0
        assert "cold (--cold)" in capsys.readouterr().out

    def test_profile_out_records_refresh_section(
        self, published, delta_file, tmp_path, capsys
    ):
        report_path = str(tmp_path / "report.json")
        code = main(
            ["refresh", delta_file, "--store", published, "--name", "toy",
             "--profile", "--profile-out", report_path]
        )
        assert code == 0
        import json as json_mod

        with open(report_path) as handle:
            report = json_mod.load(handle)
        refresh = report["refresh"]
        assert refresh["mode"] in ("warm", "cold_fallback")
        counter_key = (
            "warm_matvecs" if refresh["mode"] == "warm" else "cold_matvecs"
        )
        assert refresh[counter_key] > 0

    def test_errors_when_artifact_has_no_graph(
        self, edge_file, tmp_path, delta_file, capsys
    ):
        emb = str(tmp_path / "emb.npz")
        assert main(
            ["embed", edge_file, emb, "--dimension", "8", "--seed", "0"]
        ) == 0
        store = str(tmp_path / "bare-store")
        assert main(
            ["publish", emb, "--store", store, "--name", "toy"]
        ) == 0
        code = main(
            ["refresh", delta_file, "--store", store, "--name", "toy"]
        )
        assert code == 2
        assert "training graph" in capsys.readouterr().err

    def test_errors_on_missing_delta_file(self, published, tmp_path, capsys):
        code = main(
            ["refresh", str(tmp_path / "nope.jsonl"), "--store", published,
             "--name", "toy"]
        )
        assert code == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_errors_on_fingerprint_mismatch(
        self, published, tmp_path, capsys
    ):
        from repro.graph import BipartiteGraph, DeltaLog

        other = BipartiteGraph.from_dense([[1.0, 2.0], [0.0, 1.0]])
        log = DeltaLog.for_graph(other)
        log.reweight(0, 0, 3.0)
        path = tmp_path / "other.jsonl"
        log.save(path)
        code = main(
            ["refresh", str(path), "--store", published, "--name", "toy"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "binds a" in err or "fingerprint" in err


class TestArtifactsCli:
    def test_gc_prunes_old_versions(self, edge_file, tmp_path, capsys):
        emb = str(tmp_path / "emb.npz")
        assert main(["embed", edge_file, emb, "--dimension", "8"]) == 0
        store = str(tmp_path / "store")
        for _ in range(3):
            assert main(
                ["publish", emb, "--store", store, "--name", "toy"]
            ) == 0
        capsys.readouterr()
        code = main(
            ["artifacts", "gc", "--store", store, "--name", "toy",
             "--keep", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "deleted v1, v2" in out and "retained v3" in out
        from repro.serve import ArtifactStore

        assert ArtifactStore(store).versions("toy") == [3]

    def test_gc_retains_referenced_bases(
        self, edge_file, tmp_path, capsys
    ):
        """A delta chain pins its bases: gc must not break it."""
        emb = str(tmp_path / "emb.npz")
        assert main(["embed", edge_file, emb, "--dimension", "8"]) == 0
        store = str(tmp_path / "store")
        assert main(["publish", emb, "--store", store, "--name", "toy"]) == 0
        # v2 delta-publishes identical arrays: pure references to v1.
        assert main(
            ["publish", emb, "--store", store, "--name", "toy",
             "--base-version", "1"]
        ) == 0
        capsys.readouterr()
        code = main(
            ["artifacts", "gc", "--store", store, "--name", "toy",
             "--keep", "1"]
        )
        assert code == 0
        assert "deleted none" in capsys.readouterr().out
        from repro.serve import ArtifactStore

        store_obj = ArtifactStore(store)
        assert store_obj.versions("toy") == [1, 2]
        store_obj.verify(store_obj.resolve("toy", 2))

    def test_gc_validates_keep(self, tmp_path, capsys):
        code = main(
            ["artifacts", "gc", "--store", str(tmp_path / "s"),
             "--name", "toy", "--keep", "0"]
        )
        assert code == 2
        assert "--keep" in capsys.readouterr().err

    def test_publish_base_version_reports_refs(
        self, edge_file, tmp_path, capsys
    ):
        emb = str(tmp_path / "emb.npz")
        assert main(["embed", edge_file, emb, "--dimension", "8"]) == 0
        store = str(tmp_path / "store")
        assert main(["publish", emb, "--store", store, "--name", "toy"]) == 0
        capsys.readouterr()
        code = main(
            ["publish", emb, "--store", store, "--name", "toy",
             "--base-version", "1"]
        )
        assert code == 0
        assert "delta over v1" in capsys.readouterr().out


class TestBenchRefreshCli:
    def test_refresh_flags_conflict(self, capsys):
        assert main(["bench", "--refresh-only", "--topk-only"]) == 2
        assert "conflict" in capsys.readouterr().err

    def test_refresh_fraction_validated(self, capsys):
        assert main(
            ["bench", "--smoke", "--refresh-only", "--refresh-fraction", "2"]
        ) == 2
        assert "--refresh-fraction" in capsys.readouterr().err

    def test_bench_refresh_only_writes_rows(self, tmp_path, capsys):
        out_path = str(tmp_path / "bench.json")
        code = main(
            ["bench", "--smoke", "--refresh-only", "--output", out_path]
        )
        assert code == 0
        import json as json_mod

        with open(out_path) as handle:
            payload = json_mod.load(handle)
        rows = payload["refresh_runs"]
        assert rows and payload["runs"] == []
        by_mode = {row["mode"]: row for row in rows}
        assert by_mode["warm"]["matvecs"] < by_mode["cold"]["matvecs"]
        assert (
            by_mode["warm"]["publish_bytes"]
            < by_mode["warm"]["full_publish_bytes"]
        )
        assert all(row["quality_ok"] for row in rows)


class TestIngestCli:
    def test_ingest_then_ooc_embed_matches_resident(
        self, edge_file, tmp_path, capsys
    ):
        store_dir = str(tmp_path / "store")
        assert main(["ingest", edge_file, store_dir, "--verify"]) == 0
        out = capsys.readouterr().out
        assert "ingested" in out and "verified" in out
        resident = str(tmp_path / "resident.npz")
        mapped = str(tmp_path / "mapped.npz")
        base = ["--dimension", "8", "--seed", "0"]
        assert main(["embed", edge_file, resident, *base]) == 0
        # The fit from the memory-mapped store under a tight budget must be
        # bit-identical to the resident fit of the same edges.
        assert main(
            ["embed", mapped, "--graph-store", store_dir,
             "--ooc-budget-mb", "0.5", *base]
        ) == 0
        a, b = np.load(resident), np.load(mapped)
        assert np.array_equal(a["u"], b["u"])
        assert np.array_equal(a["v"], b["v"])

    def test_ingest_existing_dir_needs_force(
        self, edge_file, tmp_path, capsys
    ):
        store_dir = str(tmp_path / "store")
        assert main(["ingest", edge_file, store_dir]) == 0
        capsys.readouterr()
        assert main(["ingest", edge_file, store_dir]) == 2
        assert "already exists" in capsys.readouterr().err
        assert main(["ingest", edge_file, store_dir, "--force"]) == 0

    def test_ingest_parse_error_is_pointed(self, tmp_path, capsys):
        bad = tmp_path / "bad.tsv"
        bad.write_text("only_one_field\n")
        assert main(["ingest", str(bad), str(tmp_path / "s")]) == 2
        assert ": expected at least 2 fields" in capsys.readouterr().err
        assert not (tmp_path / "s").exists()

    def test_embed_rejects_edge_list_plus_store(
        self, edge_file, tmp_path, capsys
    ):
        store_dir = str(tmp_path / "store")
        assert main(["ingest", edge_file, store_dir]) == 0
        capsys.readouterr()
        out = str(tmp_path / "emb.npz")
        code = main(["embed", edge_file, out, "--graph-store", store_dir])
        assert code == 2
        assert "not both" in capsys.readouterr().err

    def test_ooc_budget_requires_store(self, edge_file, tmp_path, capsys):
        out = str(tmp_path / "emb.npz")
        code = main(["embed", edge_file, out, "--ooc-budget-mb", "8"])
        assert code == 2
        assert "--ooc-budget-mb requires --graph-store" in (
            capsys.readouterr().err
        )

    def test_embed_missing_store_is_pointed(self, tmp_path, capsys):
        out = str(tmp_path / "emb.npz")
        code = main(
            ["embed", out, "--graph-store", str(tmp_path / "nope")]
        )
        assert code == 2
        assert "does not exist" in capsys.readouterr().err


class TestBenchOocCli:
    def test_ooc_flags_conflict(self, capsys):
        assert main(["bench", "--ooc-only", "--topk-only"]) == 2
        assert "conflict" in capsys.readouterr().err

    def test_bench_ooc_only_writes_gated_rows(self, tmp_path, capsys):
        out_path = str(tmp_path / "bench.json")
        code = main(["bench", "--smoke", "--ooc-only", "--output", out_path])
        assert code == 0
        import json as json_mod

        with open(out_path) as handle:
            payload = json_mod.load(handle)
        rows = payload["ooc_runs"]
        assert rows and payload["runs"] == []
        assert rows[0]["mode"] == "resident"
        assert all(
            row["bit_identical"]
            and row["matvecs_equal"]
            and row["rss_within_budget"]
            for row in rows
        )
