"""Structural realism checks for the dataset zoo.

DESIGN.md §4 claims the synthetic stand-ins preserve the structural
properties that make the paper's comparisons meaningful: long-tail degree
distributions (the skew motivating MHS normalization, Section 2.2), a
dominant connected component, and non-trivial butterfly density.  These
tests pin those claims to the stats substrate, using the two smallest
stand-ins per task to keep runtime bounded.
"""

import pytest

from repro.datasets import DATASETS, load_dataset
from repro.graph import (
    count_butterflies,
    degree_summary,
    giant_component_fraction,
)

CHECKED = ["dblp", "wikipedia", "pinterest", "movielens"]


@pytest.fixture(scope="module")
def graphs():
    return {name: load_dataset(name, seed=0) for name in CHECKED}


class TestZooRealism:
    @pytest.mark.parametrize("name", CHECKED)
    def test_giant_component_dominates(self, graphs, name):
        assert giant_component_fraction(graphs[name]) > 0.8

    @pytest.mark.parametrize("name", CHECKED)
    def test_item_side_degree_skew(self, graphs, name):
        summary = degree_summary(graphs[name], "v")
        # Long tail: the busiest item is far above the median.
        assert summary.maximum > 3 * max(summary.median, 1)
        assert summary.gini > 0.15

    @pytest.mark.parametrize("name", CHECKED)
    def test_butterfly_density(self, graphs, name):
        # Community/low-rank structure produces far more butterflies than
        # an equally dense random graph would; at minimum, plenty exist.
        graph = graphs[name]
        assert count_butterflies(graph) > graph.num_edges

    @pytest.mark.parametrize("name", CHECKED)
    def test_matches_declared_spec(self, graphs, name):
        spec = DATASETS[name]
        graph = graphs[name]
        assert graph.num_u == spec.num_u
        assert graph.num_v == spec.num_v
        # Generators may fall slightly short of the edge target (dedup) but
        # never exceed it by more than rounding.
        assert 0.9 * spec.num_edges <= graph.num_edges <= 1.25 * spec.num_edges

    def test_weighted_stand_ins_use_rating_levels(self, graphs):
        graph = graphs["movielens"]
        weights = set(graph.w.data.tolist())
        assert weights <= {1.0, 2.0, 3.0, 4.0, 5.0}
        assert len(weights) == 5
