"""Unit tests for the dataset generators and the zoo."""

import numpy as np
import pytest

from repro.core import PoissonPMF, h_matrix
from repro.datasets import (
    DATASETS,
    PAPER_SIZES,
    BlockModel,
    RatingModel,
    complete_bipartite,
    dataset_names,
    erdos_renyi_bipartite,
    figure1_graph,
    latent_factor_ratings,
    load_dataset,
    path_graph,
    power_law_bipartite,
    star_graph,
    stochastic_block_bipartite,
    two_cliques,
)


class TestToyGraphs:
    def test_figure1_statistics(self):
        graph = figure1_graph()
        assert graph.num_u == 4
        assert graph.num_v == 5
        assert graph.num_edges == 13
        assert np.allclose(graph.w.data, 0.5)

    def test_figure1_reproduces_table2(self):
        h = h_matrix(figure1_graph(), PoissonPMF(lam=2.0), tau=60)
        assert h[0, 0] == pytest.approx(3.641, abs=2e-3)

    def test_path_graph(self):
        graph = path_graph(5)
        assert graph.num_edges == 5
        degrees = np.concatenate([graph.u_degrees(), graph.v_degrees()])
        assert sorted(degrees)[:2] == [1, 1]  # two endpoints
        assert max(degrees) == 2

    def test_star_graph(self):
        graph = star_graph(4)
        assert graph.num_u == 1
        assert graph.u_degrees()[0] == 4

    def test_complete_bipartite(self):
        graph = complete_bipartite(3, 4, weight=2.0)
        assert graph.num_edges == 12
        assert np.allclose(graph.w.data, 2.0)

    def test_two_cliques_disconnected(self):
        graph = two_cliques(2)
        dense = graph.to_dense()
        assert dense[:2, 2:].sum() == 0
        assert dense[2:, :2].sum() == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            path_graph(0)
        with pytest.raises(ValueError):
            star_graph(0)
        with pytest.raises(ValueError):
            complete_bipartite(0, 3)
        with pytest.raises(ValueError):
            two_cliques(0)


class TestErdosRenyi:
    def test_exact_edge_count(self):
        graph = erdos_renyi_bipartite(50, 40, 300, seed=0)
        assert graph.num_edges == 300

    def test_unweighted_by_default(self):
        graph = erdos_renyi_bipartite(20, 20, 50, seed=0)
        assert graph.is_unweighted()

    def test_weighted_range(self):
        graph = erdos_renyi_bipartite(
            20, 20, 50, weighted=True, max_weight=5.0, seed=0
        )
        assert graph.w.data.min() >= 1.0
        assert graph.w.data.max() <= 5.0

    def test_dense_regime(self):
        graph = erdos_renyi_bipartite(5, 5, 24, seed=0)
        assert graph.num_edges == 24

    def test_reproducible(self):
        a = erdos_renyi_bipartite(30, 30, 100, seed=4)
        b = erdos_renyi_bipartite(30, 30, 100, seed=4)
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            erdos_renyi_bipartite(0, 5, 1)
        with pytest.raises(ValueError):
            erdos_renyi_bipartite(2, 2, 5)  # more edges than cells


class TestPowerLaw:
    def test_skewed_degrees(self):
        graph = power_law_bipartite(200, 200, 2000, exponent=1.5, seed=0)
        degrees = np.sort(graph.v_degrees())[::-1]
        # Top node should dominate the median by a large factor.
        assert degrees[0] > 5 * max(np.median(degrees), 1)

    def test_zero_exponent_flatter_than_skewed(self):
        flat = power_law_bipartite(200, 200, 2000, exponent=0.0, seed=0)
        skew = power_law_bipartite(200, 200, 2000, exponent=2.0, seed=0)
        assert flat.u_degrees().max() < skew.u_degrees().max()

    def test_duplicates_merged(self):
        graph = power_law_bipartite(10, 10, 80, exponent=2.0, seed=0)
        # realized count may be below request, but never above
        assert graph.num_edges <= 80

    def test_validation(self):
        with pytest.raises(ValueError):
            power_law_bipartite(0, 5, 10)
        with pytest.raises(ValueError):
            power_law_bipartite(5, 5, 10, exponent=-1.0)


class TestRatingModel:
    def test_shapes_and_weights(self):
        model = RatingModel(num_users=50, num_items=30, edges_per_user=8,
                            rating_levels=5)
        graph = latent_factor_ratings(model, seed=0)
        assert graph.num_u == 50
        assert graph.num_v == 30
        assert graph.num_edges == 50 * 8
        assert graph.w.data.min() >= 1.0
        assert graph.w.data.max() <= 5.0

    def test_rating_levels_roughly_balanced(self):
        model = RatingModel(num_users=200, num_items=100, edges_per_user=10,
                            rating_levels=5)
        graph = latent_factor_ratings(model, seed=0)
        counts = np.bincount(graph.w.data.astype(int), minlength=6)[1:]
        assert counts.min() > 0.5 * counts.max() * 0.3  # no empty level

    def test_latents_returned(self):
        model = RatingModel(num_users=20, num_items=15, edges_per_user=5)
        graph, users, items = latent_factor_ratings(
            model, seed=1, return_latents=True
        )
        assert users.shape == (20, model.num_factors)
        assert items.shape == (15, model.num_factors)

    def test_taste_signal_present(self):
        # Edges should connect users to items with above-average affinity.
        model = RatingModel(num_users=100, num_items=80, edges_per_user=10,
                            noise=0.1)
        graph, users, items = latent_factor_ratings(
            model, seed=2, return_latents=True
        )
        u_idx, v_idx, _ = graph.edge_array()
        edge_affinity = np.einsum("ed,ed->e", users[u_idx], items[v_idx]).mean()
        rng = np.random.default_rng(0)
        ru = rng.integers(0, 100, 4000)
        rv = rng.integers(0, 80, 4000)
        random_affinity = np.einsum("ed,ed->e", users[ru], items[rv]).mean()
        assert edge_affinity > random_affinity + 0.1

    def test_reproducible(self):
        model = RatingModel(num_users=30, num_items=20, edges_per_user=5)
        a = latent_factor_ratings(model, seed=9)
        b = latent_factor_ratings(model, seed=9)
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            RatingModel(num_users=0).validate()
        with pytest.raises(ValueError):
            RatingModel(num_items=5, edges_per_user=10).validate()
        with pytest.raises(ValueError):
            RatingModel(noise=-0.1).validate()
        with pytest.raises(ValueError):
            RatingModel(rating_levels=0).validate()


class TestBlockModel:
    def test_shapes(self):
        model = BlockModel(num_u=80, num_v=60, num_blocks=4, num_edges=600)
        graph = stochastic_block_bipartite(model, seed=0)
        assert graph.num_u == 80
        assert graph.num_edges == 600
        assert graph.is_unweighted()

    def test_block_assortativity(self):
        model = BlockModel(
            num_u=150, num_v=150, num_blocks=3, num_edges=2000, in_out_ratio=10.0
        )
        graph, blocks_u, blocks_v = stochastic_block_bipartite(
            model, seed=1, return_blocks=True
        )
        u_idx, v_idx, _ = graph.edge_array()
        same_block = (blocks_u[u_idx] == blocks_v[v_idx]).mean()
        assert same_block > 0.6  # 1/3 would be unassorted

    def test_reproducible(self):
        model = BlockModel(num_u=50, num_v=50, num_blocks=2, num_edges=300)
        a = stochastic_block_bipartite(model, seed=3)
        b = stochastic_block_bipartite(model, seed=3)
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockModel(num_u=0).validate()
        with pytest.raises(ValueError):
            BlockModel(num_u=2, num_v=2, num_blocks=5).validate()
        with pytest.raises(ValueError):
            BlockModel(in_out_ratio=0.5).validate()


class TestZoo:
    def test_ten_datasets(self):
        assert len(DATASETS) == 10
        assert set(DATASETS) == set(PAPER_SIZES)

    def test_task_partition(self):
        rec = dataset_names("recommendation")
        lp = dataset_names("link_prediction")
        assert len(rec) == 5 and len(lp) == 5
        assert set(rec) | set(lp) == set(DATASETS)
        assert set(rec) == {"dblp", "movielens", "lastfm", "netflix", "mag"}

    def test_weighted_flag_matches_paper(self):
        for name, spec in DATASETS.items():
            assert spec.weighted == PAPER_SIZES[name][3]

    def test_size_ordering_tracks_paper(self):
        # Stand-in edge counts must preserve the paper's size ordering.
        names = list(DATASETS)
        paper_edges = [PAPER_SIZES[n][2] for n in names]
        ours = [DATASETS[n].num_edges for n in names]
        assert np.argsort(paper_edges).tolist() == np.argsort(ours).tolist()

    def test_load_dataset(self):
        graph = load_dataset("dblp", seed=0)
        spec = DATASETS["dblp"]
        assert graph.num_u == spec.num_u
        assert graph.num_v == spec.num_v

    def test_load_is_deterministic(self):
        assert load_dataset("wikipedia", seed=1) == load_dataset(
            "wikipedia", seed=1
        )

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            load_dataset("imaginary")

    def test_unknown_task(self):
        with pytest.raises(ValueError):
            dataset_names("clustering")
