"""Differential test: GEBE (Poisson) vs GEBE^p on a small toy graph.

Section 5.1 derives GEBE^p as a closed-form shortcut for GEBE under the
Poisson PMF: instead of running KSI on the series expansion of ``H``
(Algorithm 1), factorize ``W`` once and map singular values through
``e^{lambda (sigma^2 - 1)}`` (Eq. 10-11).  Both paths must therefore land
on the same embedding subspace, up to an orthogonal rotation — the two
solvers orthonormalize differently and KSI's start is random, so raw
coordinates differ while the geometry (and hence every downstream score)
agrees.  We pin that equivalence with the orthogonal Procrustes distance.
"""

import numpy as np
import pytest

from repro.core import GEBE, GEBEPoisson, PoissonPMF
from repro.datasets import toy_graph

# k=6 keeps the truncation boundary away from the toy graph's clustered
# singular-value pairs (sigma_3 ~= sigma_4, sigma_5 ~= sigma_6 sits well
# above sigma_7), where the retained subspace itself becomes
# ill-conditioned and no rotation can align the methods.  The boundary
# eigengap is ~2%, so KSI needs a few hundred iterations to converge —
# hence the raised budget.
DIMENSION = 6
MAX_ITERATIONS = 1000
TOLERANCE = 1e-3


def procrustes_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Relative residual of the best orthogonal alignment of ``a`` onto ``b``."""
    u, _, vt = np.linalg.svd(a.T @ b)
    rotation = u @ vt
    return float(np.linalg.norm(a @ rotation - b) / np.linalg.norm(b))


@pytest.fixture(scope="module")
def fits():
    graph = toy_graph()
    iterative = GEBE(
        PoissonPMF(lam=1.0),
        dimension=DIMENSION,
        tau=40,
        max_iterations=MAX_ITERATIONS,
        seed=1,
    ).fit(graph)
    # Match GEBE's "sym" preprocessing: GEBE^p defaults to "spectral"
    # (a further uniform rescaling), which would compare different
    # operators rather than the two solvers.
    closed_form = GEBEPoisson(
        dimension=DIMENSION, lam=1.0, epsilon=0.01, normalization="sym", seed=0
    ).fit(graph)
    return iterative, closed_form


class TestPoissonClosedFormEquivalence:
    def test_ksi_converged(self, fits):
        iterative, _ = fits
        assert iterative.metadata["converged"]

    def test_u_embeddings_match_up_to_rotation(self, fits):
        iterative, closed_form = fits
        assert procrustes_distance(iterative.u, closed_form.u) < TOLERANCE

    def test_v_embeddings_match_up_to_rotation(self, fits):
        iterative, closed_form = fits
        assert procrustes_distance(iterative.v, closed_form.v) < TOLERANCE

    def test_spectra_agree(self, fits):
        """KSI's Ritz values match the Eq. 10 closed-form eigenvalues."""
        iterative, closed_form = fits
        np.testing.assert_allclose(
            iterative.metadata["eigenvalues"],
            closed_form.metadata["eigenvalues"],
            rtol=1e-4,
        )

    def test_score_matrices_agree(self, fits):
        """Rotation invariance in action: ``U V^T`` is identical, so any
        recommendation / link-prediction ranking is too."""
        iterative, closed_form = fits
        scores_a = iterative.u @ iterative.v.T
        scores_b = closed_form.u @ closed_form.v.T
        np.testing.assert_allclose(scores_a, scores_b, atol=5e-4)
