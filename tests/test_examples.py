"""Smoke tests: the runnable examples must actually run.

Only the fast examples execute here (the benchmark-scale ones are covered
by the benchmark suite); each must exit cleanly and print its headline.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    process = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert process.returncode == 0, process.stderr
    return process.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "Top pick per user" in out
    assert "User-user similarity" in out


def test_theory_verification():
    out = run_example("theory_verification.py")
    assert "Theorem 3.1" in out
    assert "All bounds hold" in out
    assert "False" not in out  # every `holds` column is True


@pytest.mark.parametrize(
    "name",
    ["movie_recommendation.py", "link_prediction.py",
     "scalability_study.py", "attributed_embedding.py"],
)
def test_other_examples_importable(name):
    """The heavy examples at least parse and expose main()."""
    source = (EXAMPLES / name).read_text()
    compiled = compile(source, name, "exec")
    assert "main" in compiled.co_names
