"""Unit tests for the experiment harness (runner, tables, sweeps)."""

import numpy as np
import pytest

from repro.datasets import erdos_renyi_bipartite
from repro.experiments import (
    COST_TIERS,
    TIER_EDGE_BUDGETS,
    ResultTable,
    method_tier,
    render_points,
    run_edge_scalability,
    run_efficiency,
    run_link_prediction_table,
    run_methods,
    run_node_scalability,
    run_recommendation_table,
    should_run,
    sweep_epsilon,
    sweep_lambda,
    sweep_tau,
)
from repro.experiments.parameter_study import render_sweep


class TestTiers:
    def test_all_registry_methods_have_tiers(self):
        from repro.baselines import method_names

        for name in method_names():
            assert name in COST_TIERS

    def test_fast_methods_always_run(self):
        graph = erdos_renyi_bipartite(50, 50, 200, seed=0)
        assert should_run("GEBE^p", graph)
        assert should_run("NRP", graph)

    def test_slow_methods_capped(self):
        graph = erdos_renyi_bipartite(50, 50, 200, seed=0)
        budgets = dict(TIER_EDGE_BUDGETS)
        budgets["slow"] = 100
        assert not should_run("BiNE", graph, budgets)
        assert should_run("GEBE^p", graph, budgets)

    def test_unknown_method_treated_as_slow(self):
        assert method_tier("FutureNet") == "slow"


class TestResultTable:
    def test_set_get(self):
        table = ResultTable("t", ["a", "b"])
        table.set("m1", "a", 0.5)
        assert table.get("m1", "a") == 0.5
        assert table.get("m1", "b") is None

    def test_render_contains_values_and_dashes(self):
        table = ResultTable("My Table", ["col"])
        table.set("m1", "col", 0.123)
        table.set("m2", "col", None)
        text = table.render()
        assert "My Table" in text
        assert "0.123" in text
        assert "-" in text

    def test_render_string_cells(self):
        table = ResultTable("t", ["col"])
        table.set("m", "col", "1.5s")
        assert "1.5s" in table.render()

    def test_best_method(self):
        table = ResultTable("t", ["col"])
        table.set("weak", "col", 0.2)
        table.set("strong", "col", 0.9)
        table.set("skipped", "col", None)
        assert table.best_method("col") == "strong"

    def test_best_method_empty(self):
        assert ResultTable("t", ["col"]).best_method("col") is None


class TestRunMethods:
    def test_returns_timings(self, block_graph):
        from repro.core import GEBEPoisson, MHPOnlyBNE

        timings = run_methods(
            [GEBEPoisson(dimension=8, seed=0), MHPOnlyBNE(dimension=8, seed=0)],
            block_graph,
        )
        assert set(timings) == {"GEBE^p", "MHP-BNE"}
        assert all(seconds > 0 for seconds in timings.values())


MICRO_BUDGETS = {"fast": 10 ** 9, "medium": 0, "slow": 0}


class TestHarnessSmoke:
    """End-to-end smoke runs of each table/figure on micro workloads."""

    def test_efficiency_table(self):
        table = run_efficiency(
            dataset_names=["dblp"],
            method_names=["GEBE^p", "MHP-BNE", "DeepWalk"],
            dimension=8,
            seed=0,
            budgets=MICRO_BUDGETS,
        )
        assert table.get("GEBE^p", "dblp") > 0
        assert table.get("DeepWalk", "dblp") is None  # over budget

    def test_recommendation_table(self):
        tables = run_recommendation_table(
            datasets=["dblp"],
            methods=["GEBE^p", "MHS-BNE"],
            dimension=16,
            core=3,
            seed=0,
            budgets=MICRO_BUDGETS,
        )
        assert set(tables) == {"f1", "ndcg", "mrr"}
        assert 0 <= tables["f1"].get("GEBE^p", "dblp") <= 1

    def test_link_prediction_table(self):
        tables = run_link_prediction_table(
            datasets=["wikipedia"],
            methods=["GEBE^p"],
            dimension=16,
            seed=0,
            budgets=MICRO_BUDGETS,
        )
        assert 0.5 <= tables["auc_roc"].get("GEBE^p", "wikipedia") <= 1.0

    def test_lambda_sweep(self):
        results = sweep_lambda(
            "recommendation", ["dblp"], grid=(1.0, 2.0), dimension=16, core=3
        )
        assert len(results["dblp"]) == 2

    def test_epsilon_sweep(self):
        results = sweep_epsilon(
            "link_prediction", ["wikipedia"], grid=(0.1, 0.9), dimension=16
        )
        assert len(results["wikipedia"]) == 2

    def test_tau_sweep(self):
        results = sweep_tau(
            "recommendation", ["dblp"], grid=(1, 5), dimension=16, core=3,
            max_iterations=10,
        )
        assert len(results["dblp"]) == 2

    def test_render_sweep(self):
        text = render_sweep({"dblp": [0.1, 0.2]}, (1, 2))
        assert "dblp" in text and "0.200" in text

    def test_scalability_points(self):
        from repro.core import GEBEPoisson

        points = run_node_scalability(
            node_grid=(200, 400),
            num_edges=800,
            dimension=8,
            seed=0,
            methods=[GEBEPoisson(8, seed=0)],
        )
        assert len(points) == 2
        assert points[0].num_nodes == 200
        assert points[0].seconds["GEBE^p"] > 0
        text = render_points(points, "nodes")
        assert "GEBE^p" in text

    def test_edge_scalability_points(self):
        from repro.core import GEBEPoisson

        points = run_edge_scalability(
            edge_grid=(500, 1000),
            num_nodes=300,
            dimension=8,
            seed=0,
            methods=[GEBEPoisson(8, seed=0)],
        )
        assert [p.num_edges for p in points] == [500, 1000]
