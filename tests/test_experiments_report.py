"""Unit tests for markdown report rendering."""

import pytest

from repro.experiments import (
    ResultTable,
    comparison_block,
    markdown_table,
    result_table_to_markdown,
)


class TestMarkdownTable:
    def test_basic_rendering(self):
        board = {"GEBE^p": {"dblp": 0.214, "mag": 0.265}}
        text = markdown_table(board, ["dblp", "mag"])
        lines = text.split("\n")
        assert lines[0] == "| method | dblp | mag |"
        assert "| GEBE^p | 0.214 | 0.265 |" in lines

    def test_missing_cells_are_dashes(self):
        board = {"BiNE": {"dblp": 0.18}}
        text = markdown_table(board, ["dblp", "mag"])
        assert "| BiNE | 0.180 | - |" in text

    def test_bold_best(self):
        board = {
            "GEBE^p": {"dblp": 0.9},
            "BPR": {"dblp": 0.5},
        }
        text = markdown_table(board, ["dblp"], bold_best=True)
        assert "**0.900**" in text
        assert "**0.500**" not in text

    def test_precision(self):
        board = {"m": {"c": 0.123456}}
        assert "0.1235" in markdown_table(board, ["c"], precision=4)

    def test_string_cells_pass_through(self):
        board = {"m": {"c": "1.5s"}}
        assert "| m | 1.5s |" in markdown_table(board, ["c"])

    def test_default_columns_sorted(self):
        board = {"m": {"b": 1.0, "a": 2.0}}
        text = markdown_table(board)
        assert text.split("\n")[0] == "| method | a | b |"


class TestResultTableToMarkdown:
    def test_heading_and_body(self):
        table = ResultTable("Table 4 (F1)", ["dblp"])
        table.set("GEBE^p", "dblp", 0.214)
        text = result_table_to_markdown(table)
        assert text.startswith("### Table 4 (F1)")
        assert "0.214" in text


class TestComparisonBlock:
    def test_two_rows(self):
        text = comparison_block(
            {"f1": 0.214, "ndcg": 0.261}, {"f1": 0.143, "ndcg": 0.160}
        )
        lines = text.split("\n")
        assert lines[0] == "| source | f1 | ndcg |"
        assert "| paper | 0.214 | 0.261 |" in lines
        assert "| measured | 0.143 | 0.160 |" in lines

    def test_measured_only_keys_appended(self):
        text = comparison_block({"a": 1.0}, {"a": 1.0, "b": 2.0})
        assert "| paper | 1.000 | - |" in text
