"""Unit tests for the grid-search utility."""

import pytest

from repro.core import GEBEPoisson
from repro.experiments import grid_search
from repro.tasks import LinkPredictionTask, RecommendationTask


@pytest.fixture(scope="module")
def rec_task(request):
    from repro.datasets import RatingModel, latent_factor_ratings

    model = RatingModel(
        num_users=120, num_items=60, edges_per_user=12,
        num_factors=8, num_communities=4, noise=0.2,
    )
    graph = latent_factor_ratings(model, seed=3)
    return RecommendationTask(graph, core=3, seed=0)


def factory(**params):
    return GEBEPoisson(dimension=16, seed=0, **params)


class TestGridSearch:
    def test_scores_every_point(self, rec_task):
        result = grid_search(
            factory, {"lam": [1.0, 2.0], "epsilon": [0.1, 0.5]}, rec_task
        )
        assert len(result.scores) == 4
        params_seen = [tuple(sorted(p.items())) for p, _ in result.scores]
        assert len(set(params_seen)) == 4

    def test_best_is_max(self, rec_task):
        result = grid_search(factory, {"lam": [1.0, 3.0]}, rec_task)
        assert result.best_score == max(s for _, s in result.scores)
        assert result.best_params in [p for p, _ in result.scores]

    def test_alternative_metric(self, rec_task):
        result = grid_search(
            factory, {"lam": [1.0]}, rec_task, metric="mrr"
        )
        assert result.metric == "mrr"
        assert 0.0 <= result.best_score <= 1.0

    def test_lp_task_metric(self, block_graph):
        task = LinkPredictionTask(block_graph, seed=0)
        result = grid_search(
            factory, {"lam": [1.0, 2.0]}, task, metric="auc_roc"
        )
        assert len(result.scores) == 2

    def test_unknown_metric(self, rec_task):
        with pytest.raises(AttributeError):
            grid_search(factory, {"lam": [1.0]}, rec_task, metric="accuracy")

    def test_empty_grid_rejected(self, rec_task):
        with pytest.raises(ValueError):
            grid_search(factory, {}, rec_task)

    def test_render(self, rec_task):
        result = grid_search(factory, {"lam": [1.0, 2.0]}, rec_task)
        text = result.render()
        assert "best:" in text
        assert "lam=1.0" in text

    def test_empty_result_guards(self):
        from repro.experiments import GridSearchResult

        with pytest.raises(ValueError):
            GridSearchResult().best_params
