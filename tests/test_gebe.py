"""Unit tests for GEBE (Algorithm 1)."""

import numpy as np
import pytest

from repro.core import (
    GEBE,
    PoissonPMF,
    UniformPMF,
    evaluate_objective,
    gebe_geometric,
    gebe_poisson,
    gebe_uniform,
    h_matrix,
)
from repro.core.preprocess import normalize_weights
from repro.graph import BipartiteGraph


class TestTheorem41:
    """Theorem 4.1: converged GEBE output equals the Eq. (13) optimum."""

    def test_matches_dense_eigendecomposition(self, random_graph):
        pmf = PoissonPMF(lam=1.0)
        tau = 6
        k = 4
        method = GEBE(
            pmf, k, tau=tau, max_iterations=2000, tolerance=1e-13,
            normalization="none", seed=0,
        )
        result = method.fit(random_graph)
        assert result.metadata["converged"]

        h = h_matrix(random_graph, pmf, tau)
        values, vectors = np.linalg.eigh(h)
        order = np.argsort(values)[::-1][:k]
        expected_values = values[order]
        # Eigenvalues (Ritz values off R) match the dense decomposition.
        np.testing.assert_allclose(
            result.metadata["eigenvalues"], expected_values, rtol=1e-6
        )
        # U U^T matches the rank-k H reconstruction (rotation invariant).
        expected_uut = (vectors[:, order] * expected_values) @ vectors[:, order].T
        np.testing.assert_allclose(
            result.u @ result.u.T, expected_uut, atol=1e-6
        )

    def test_v_is_wt_u(self, random_graph):
        method = GEBE(
            PoissonPMF(lam=1.0), 4, tau=5, normalization="sym", seed=0
        )
        result = method.fit(random_graph)
        w = normalize_weights(random_graph, "sym")
        np.testing.assert_allclose(result.v, w.T @ result.u)


class TestObjectiveQuality:
    def test_loss_decreases_with_rank(self, random_graph):
        pmf = PoissonPMF(lam=1.0)
        tau = 5
        losses = []
        for k in (2, 6, 12):
            result = GEBE(
                pmf, k, tau=tau, normalization="none", seed=0,
                max_iterations=500,
            ).fit(random_graph)
            loss = evaluate_objective(
                random_graph, result.u, result.v, pmf, tau
            )
            losses.append(loss.total)
        assert losses[0] >= losses[1] >= losses[2]


class TestInterface:
    def test_shapes_and_padding(self, figure1):
        result = GEBE(PoissonPMF(lam=1.0), 10, tau=4, seed=0).fit(figure1)
        # |U| = 4 < 10: padded with zero columns.
        assert result.u.shape == (4, 10)
        assert result.v.shape == (5, 10)
        assert np.allclose(result.u[:, 4:], 0.0)
        assert result.metadata["effective_dimension"] == 4

    def test_reproducible_with_seed(self, random_graph):
        a = gebe_poisson(6, tau=4, seed=42).fit(random_graph)
        b = gebe_poisson(6, tau=4, seed=42).fit(random_graph)
        np.testing.assert_array_equal(a.u, b.u)
        np.testing.assert_array_equal(a.v, b.v)

    def test_metadata_fields(self, random_graph):
        result = gebe_poisson(4, tau=3, seed=0).fit(random_graph)
        for key in ("pmf", "tau", "iterations", "converged", "normalization"):
            assert key in result.metadata
        assert result.method == "GEBE (Poisson)"

    def test_factory_names(self):
        assert gebe_uniform(4).name == "GEBE (Uniform)"
        assert gebe_geometric(4).name == "GEBE (Geometric)"
        assert gebe_poisson(4).name == "GEBE (Poisson)"

    def test_factory_normalization_defaults(self):
        assert gebe_uniform(4).normalization == "sym"
        assert gebe_geometric(4).normalization == "spectral"
        assert gebe_poisson(4).normalization == "spectral"

    def test_negative_tau_rejected(self):
        with pytest.raises(ValueError):
            GEBE(UniformPMF(tau=5), 4, tau=-1)

    def test_empty_side_rejected(self):
        graph = BipartiteGraph.from_dense(np.zeros((0, 3)))
        with pytest.raises(ValueError, match="empty side"):
            gebe_poisson(4).fit(graph)

    def test_timing_recorded(self, random_graph):
        result = gebe_poisson(4, tau=3, seed=0).fit(random_graph)
        assert result.elapsed_seconds > 0
