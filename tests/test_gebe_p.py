"""Unit tests for GEBE^p (Algorithm 2)."""

import numpy as np
import pytest

from repro.core import GEBEPoisson, PoissonPMF, gebe_poisson, poisson_eigenvalues
from repro.core.preprocess import normalize_weights
from repro.graph import BipartiteGraph
from scipy.linalg import expm


class TestPoissonEigenvalues:
    def test_formula(self):
        sigma = np.array([0.0, 0.5, 1.0])
        lam = 2.0
        expected = np.exp(-lam) * np.exp(lam * sigma ** 2)
        np.testing.assert_allclose(poisson_eigenvalues(sigma, lam), expected)

    def test_monotone_in_sigma(self):
        values = poisson_eigenvalues(np.array([0.1, 0.5, 0.9]), 1.0)
        assert (np.diff(values) > 0).all()

    def test_no_overflow_for_large_sigma(self):
        # The exp(lam * (sigma^2 - 1)) form overflows much later than the
        # naive e^{-lam} * e^{lam sigma^2} product.
        value = poisson_eigenvalues(np.array([20.0]), 1.0)
        assert np.isfinite(value).all()


class TestEquation16:
    """H_lambda = e^{-lambda} e^{lambda W W^T} and its eigensystem (Eq. 17)."""

    def test_eigendecomposition_matches_matrix_exponential(self, random_graph):
        lam = 1.0
        w = normalize_weights(random_graph, "sym").toarray()
        h_exact = np.exp(-lam) * expm(lam * (w @ w.T))
        method = GEBEPoisson(
            dimension=8, lam=lam, epsilon=0.01, normalization="sym", seed=0
        )
        result = method.fit(random_graph)
        # U U^T must match the best rank-k approximation of H_lambda.
        values, vectors = np.linalg.eigh(h_exact)
        order = np.argsort(values)[::-1][:8]
        expected = (vectors[:, order] * values[order]) @ vectors[:, order].T
        np.testing.assert_allclose(result.u @ result.u.T, expected, atol=1e-4)

    def test_matches_truncated_gebe(self, random_graph):
        """GEBE (Poisson, large tau) converges to GEBE^p's closed form."""
        closed = GEBEPoisson(
            dimension=5, lam=1.0, epsilon=0.01, normalization="sym", seed=0
        ).fit(random_graph)
        truncated = gebe_poisson(
            5, lam=1.0, tau=40, seed=0, normalization="sym",
            max_iterations=2000, tolerance=1e-13,
        ).fit(random_graph)
        np.testing.assert_allclose(
            closed.u @ closed.u.T, truncated.u @ truncated.u.T, atol=1e-5
        )


class TestInterface:
    def test_v_is_wt_u(self, random_graph):
        result = GEBEPoisson(dimension=4, seed=0).fit(random_graph)
        w = normalize_weights(random_graph, "spectral")
        np.testing.assert_allclose(result.v, w.T @ result.u)

    def test_shapes_padding(self, figure1):
        result = GEBEPoisson(dimension=12, seed=0).fit(figure1)
        assert result.u.shape == (4, 12)
        assert result.v.shape == (5, 12)
        assert np.allclose(result.u[:, 4:], 0.0)

    def test_reproducible_with_seed(self, random_graph):
        a = GEBEPoisson(dimension=6, seed=7).fit(random_graph)
        b = GEBEPoisson(dimension=6, seed=7).fit(random_graph)
        np.testing.assert_array_equal(a.u, b.u)

    def test_metadata(self, random_graph):
        result = GEBEPoisson(dimension=4, lam=2.0, epsilon=0.2, seed=0).fit(
            random_graph
        )
        assert result.metadata["lambda"] == 2.0
        assert result.metadata["epsilon"] == 0.2
        assert result.metadata["singular_values"].shape == (4,)
        assert result.method == "GEBE^p"

    def test_eigenvalues_consistent_with_singulars(self, random_graph):
        result = GEBEPoisson(dimension=4, lam=1.5, seed=0).fit(random_graph)
        np.testing.assert_allclose(
            result.metadata["eigenvalues"],
            poisson_eigenvalues(result.metadata["singular_values"], 1.5),
        )

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            GEBEPoisson(lam=0.0)
        with pytest.raises(ValueError):
            GEBEPoisson(epsilon=0.0)
        with pytest.raises(ValueError):
            GEBEPoisson(dimension=0)

    def test_power_strategy(self, random_graph):
        result = GEBEPoisson(
            dimension=4, svd_strategy="power", seed=0
        ).fit(random_graph)
        assert result.u.shape[1] == 4


class TestTheorem51:
    """Smaller epsilon -> better approximation of the exact H_lambda."""

    def test_epsilon_controls_error(self, rng):
        # A graph with slow spectral decay so epsilon genuinely matters.
        dense = rng.random((60, 50))
        dense[dense < 0.5] = 0.0
        graph = BipartiteGraph.from_dense(dense)
        lam = 1.0
        w = normalize_weights(graph, "sym").toarray()
        h_exact = np.exp(-lam) * expm(lam * (w @ w.T))
        errors = {}
        for eps, iters in ((0.9, 1), (0.05, None)):
            method = GEBEPoisson(
                dimension=8, lam=lam, epsilon=eps, normalization="sym", seed=3
            )
            if iters is not None:
                # force a genuinely loose run
                method_result = GEBEPoisson(
                    dimension=8, lam=lam, epsilon=eps, normalization="sym",
                    svd_strategy="power", seed=3,
                ).fit(graph)
            else:
                method_result = method.fit(graph)
            approx = method_result.u @ method_result.u.T
            errors[eps] = np.linalg.norm(approx - h_exact)
        assert errors[0.05] <= errors[0.9] + 1e-9
