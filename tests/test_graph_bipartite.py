"""Unit tests for the BipartiteGraph data structure."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graph import BipartiteGraph


class TestConstruction:
    def test_from_dense_shape(self):
        graph = BipartiteGraph.from_dense([[1.0, 0.0], [0.5, 2.0]])
        assert graph.num_u == 2
        assert graph.num_v == 2
        assert graph.num_edges == 3

    def test_accepts_sparse_input(self):
        w = sp.coo_matrix(([1.0], ([0], [1])), shape=(2, 3))
        graph = BipartiteGraph(w)
        assert graph.num_edges == 1
        assert graph.weight(0, 1) == 1.0

    def test_duplicate_entries_summed(self):
        w = sp.coo_matrix(([1.0, 2.0], ([0, 0], [0, 0])), shape=(1, 1))
        graph = BipartiteGraph(w)
        assert graph.weight(0, 0) == 3.0

    def test_explicit_zeros_eliminated(self):
        # CSR with an explicitly *stored* zero at (0, 0), built directly so
        # no pattern-changing assignment (and no SparseEfficiencyWarning,
        # which the pytest config escalates to an error) is involved.
        w = sp.csr_matrix(
            (np.array([0.0, 1.0]), np.array([0, 1]), np.array([0, 2, 2])),
            shape=(2, 2),
        )
        assert w.nnz == 2  # the zero is stored before construction...
        graph = BipartiteGraph(w)
        assert graph.num_edges == 1  # ...and eliminated by it

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            BipartiteGraph.from_dense([[-1.0]])

    def test_empty_graph(self):
        graph = BipartiteGraph.from_dense(np.zeros((3, 4)))
        assert graph.num_edges == 0
        assert graph.total_weight == 0.0
        assert graph.density == 0.0

    def test_from_edges_with_labels(self):
        graph = BipartiteGraph.from_edges(
            [("alice", "x", 2.0), ("bob", "x"), ("alice", "y", 1.5)]
        )
        assert graph.num_u == 2
        assert graph.num_v == 2
        assert graph.weight(graph.u_id("alice"), graph.v_id("y")) == 1.5
        assert graph.weight(graph.u_id("bob"), graph.v_id("x")) == 1.0

    def test_from_edges_integer_indices(self):
        graph = BipartiteGraph.from_edges([(0, 1, 1.0), (2, 0, 2.0)], num_u=4, num_v=3)
        assert graph.num_u == 4
        assert graph.num_v == 3
        assert graph.weight(2, 0) == 2.0
        assert graph.u_labels is None

    def test_from_edges_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            BipartiteGraph.from_edges([(5, 0)], num_u=2, num_v=2)

    def test_from_edges_aggregate_sum(self):
        graph = BipartiteGraph.from_edges(
            [(0, 0, 1.0), (0, 0, 2.0)], num_u=1, num_v=1
        )
        assert graph.weight(0, 0) == 3.0

    def test_from_edges_aggregate_max(self):
        graph = BipartiteGraph.from_edges(
            [(0, 0, 1.0), (0, 0, 2.0)], num_u=1, num_v=1, aggregate="max"
        )
        assert graph.weight(0, 0) == 2.0

    def test_from_edges_bad_aggregate(self):
        with pytest.raises(ValueError, match="aggregate"):
            BipartiteGraph.from_edges([(0, 0)], num_u=1, num_v=1, aggregate="min")

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError, match="duplicates"):
            BipartiteGraph(
                sp.csr_matrix(np.ones((2, 1))), u_labels=["same", "same"]
            )

    def test_label_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="u_labels"):
            BipartiteGraph(sp.csr_matrix(np.ones((2, 1))), u_labels=["one"])


class TestProperties:
    def test_counts(self, figure1):
        assert figure1.num_u == 4
        assert figure1.num_v == 5
        assert figure1.num_nodes == 9
        assert figure1.num_edges == 13

    def test_total_weight(self, figure1):
        assert figure1.total_weight == pytest.approx(13 * 0.5)

    def test_density(self):
        graph = BipartiteGraph.from_dense([[1.0, 1.0], [0.0, 0.0]])
        assert graph.density == pytest.approx(0.5)

    def test_is_unweighted(self):
        assert BipartiteGraph.from_dense([[1.0, 1.0]]).is_unweighted()
        assert not BipartiteGraph.from_dense([[1.0, 2.0]]).is_unweighted()

    def test_repr_mentions_sizes(self, figure1):
        text = repr(figure1)
        assert "|U|=4" in text and "|V|=5" in text and "|E|=13" in text


class TestDegreesAndNeighbors:
    def test_u_degrees(self, figure1):
        np.testing.assert_array_equal(figure1.u_degrees(), [3, 3, 3, 4])

    def test_v_degrees(self, figure1):
        np.testing.assert_array_equal(figure1.v_degrees(), [2, 3, 4, 2, 2])

    def test_weighted_degrees(self, tiny_graph):
        np.testing.assert_allclose(
            tiny_graph.u_degrees(weighted=True), [3.0, 1.0, 3.0]
        )
        np.testing.assert_allclose(
            tiny_graph.v_degrees(weighted=True), [1.0, 3.0, 3.0]
        )

    def test_u_neighbors(self, figure1):
        np.testing.assert_array_equal(sorted(figure1.u_neighbors(3)), [1, 2, 3, 4])

    def test_v_neighbors(self, figure1):
        np.testing.assert_array_equal(sorted(figure1.v_neighbors(0)), [0, 1])

    def test_neighbor_weights(self, tiny_graph):
        neighbors, weights = tiny_graph.u_neighbor_weights(0)
        np.testing.assert_array_equal(neighbors, [0, 1])
        np.testing.assert_allclose(weights, [1.0, 2.0])

    def test_v_neighbor_weights(self, tiny_graph):
        neighbors, weights = tiny_graph.v_neighbor_weights(1)
        np.testing.assert_array_equal(neighbors, [0, 1])
        np.testing.assert_allclose(weights, [2.0, 1.0])

    def test_has_edge(self, tiny_graph):
        assert tiny_graph.has_edge(0, 1)
        assert not tiny_graph.has_edge(1, 0)


class TestIterationAndConversion:
    def test_edges_iterates_all(self, tiny_graph):
        edges = set(tiny_graph.edges())
        assert edges == {(0, 0, 1.0), (0, 1, 2.0), (1, 1, 1.0), (2, 2, 3.0)}

    def test_edge_array_parallel(self, tiny_graph):
        u, v, w = tiny_graph.edge_array()
        assert u.shape == v.shape == w.shape == (4,)
        rebuilt = BipartiteGraph.from_edges(
            zip(u.tolist(), v.tolist(), w.tolist()), num_u=3, num_v=3
        )
        assert rebuilt == tiny_graph

    def test_to_dense_round_trip(self, tiny_graph):
        dense = tiny_graph.to_dense()
        assert BipartiteGraph.from_dense(dense) == tiny_graph

    def test_adjacency_symmetric(self, figure1):
        adjacency = figure1.adjacency()
        assert adjacency.shape == (9, 9)
        assert (adjacency != adjacency.T).nnz == 0
        # upper-right block equals W
        np.testing.assert_allclose(
            adjacency[:4, 4:].toarray(), figure1.to_dense()
        )
        # no intra-side edges
        assert adjacency[:4, :4].nnz == 0
        assert adjacency[4:, 4:].nnz == 0


class TestTransformations:
    def test_with_unit_weights(self, tiny_graph):
        unit = tiny_graph.with_unit_weights()
        assert unit.is_unweighted()
        assert unit.num_edges == tiny_graph.num_edges

    def test_normalized_by_max(self, tiny_graph):
        normalized = tiny_graph.normalized()
        assert normalized.w.data.max() == pytest.approx(1.0)
        assert normalized.weight(0, 1) == pytest.approx(2.0 / 3.0)

    def test_normalized_explicit_scale(self, tiny_graph):
        normalized = tiny_graph.normalized(max_weight=6.0)
        assert normalized.weight(2, 2) == pytest.approx(0.5)

    def test_normalized_rejects_bad_scale(self, tiny_graph):
        with pytest.raises(ValueError):
            tiny_graph.normalized(max_weight=0.0)

    def test_transpose_swaps_sides(self, figure1):
        transposed = figure1.transpose()
        assert transposed.num_u == 5
        assert transposed.num_v == 4
        np.testing.assert_allclose(
            transposed.to_dense(), figure1.to_dense().T
        )

    def test_subgraph(self, figure1):
        sub = figure1.subgraph([0, 1], [0, 1, 2])
        assert sub.num_u == 2
        assert sub.num_v == 3
        assert sub.num_edges == 6

    def test_subgraph_keeps_labels(self):
        graph = BipartiteGraph.from_edges([("a", "x"), ("b", "y")])
        sub = graph.subgraph([1], [1])
        assert sub.u_labels == ["b"]
        assert sub.v_labels == ["y"]

    def test_without_edges(self, tiny_graph):
        reduced = tiny_graph.without_edges(np.array([0]), np.array([1]))
        assert not reduced.has_edge(0, 1)
        assert reduced.num_edges == 3
        # original untouched
        assert tiny_graph.has_edge(0, 1)


class TestLabels:
    def test_labels_round_trip(self):
        graph = BipartiteGraph.from_edges([("a", "x"), ("b", "y")])
        assert graph.u_label(graph.u_id("a")) == "a"
        assert graph.v_label(graph.v_id("y")) == "y"

    def test_integer_fallback_without_labels(self, tiny_graph):
        assert tiny_graph.u_id(2) == 2
        assert tiny_graph.v_label(1) == 1

    def test_unknown_label_raises(self):
        graph = BipartiteGraph.from_edges([("a", "x")])
        with pytest.raises(KeyError):
            graph.u_id("nope")


class TestEquality:
    def test_equal_graphs(self, tiny_graph):
        other = BipartiteGraph.from_dense(tiny_graph.to_dense())
        assert tiny_graph == other

    def test_unequal_shapes(self, tiny_graph):
        other = BipartiteGraph.from_dense(np.ones((2, 2)))
        assert tiny_graph != other

    def test_unequal_weights(self, tiny_graph):
        dense = tiny_graph.to_dense()
        dense[0, 0] = 9.0
        assert tiny_graph != BipartiteGraph.from_dense(dense)

    def test_not_equal_to_other_types(self, tiny_graph):
        assert tiny_graph != "graph"
