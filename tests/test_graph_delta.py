"""Tests for the append-only edge-delta log (repro.graph.delta)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.datasets import erdos_renyi_bipartite
from repro.graph import (
    DELTA_SCHEMA,
    DELTA_SCHEMA_VERSION,
    BipartiteGraph,
    DeltaError,
    DeltaLog,
    EdgeDelta,
    apply_deltas,
)


@pytest.fixture
def base_graph():
    return BipartiteGraph.from_dense(
        [
            [1.0, 2.0, 0.0],
            [0.0, 1.0, 0.0],
            [0.0, 0.0, 3.0],
        ]
    )


class TestEdgeDelta:
    def test_valid_ops_construct(self):
        EdgeDelta("add", 0, 1, 2.0)
        EdgeDelta("reweight", 3, 4, 0.5)
        EdgeDelta("remove", 1, 1)

    def test_unknown_op_rejected(self):
        with pytest.raises(DeltaError, match="unknown delta op"):
            EdgeDelta("upsert", 0, 0, 1.0)

    def test_negative_index_rejected(self):
        with pytest.raises(DeltaError, match="negative edge index"):
            EdgeDelta("add", -1, 0, 1.0)

    def test_remove_must_not_carry_weight(self):
        with pytest.raises(DeltaError, match="must not carry a weight"):
            EdgeDelta("remove", 0, 0, 1.0)

    @pytest.mark.parametrize("weight", [0.0, -1.0, float("nan"), float("inf")])
    def test_add_needs_positive_finite_weight(self, weight):
        with pytest.raises(DeltaError):
            EdgeDelta("add", 0, 0, weight)

    def test_record_round_trip(self):
        delta = EdgeDelta("reweight", 2, 5, 1.25)
        assert EdgeDelta.from_record(delta.record(), "here") == delta

    def test_from_record_rejects_extra_fields(self):
        with pytest.raises(DeltaError, match="unexpected delta fields"):
            EdgeDelta.from_record(
                {"op": "add", "u": 0, "v": 0, "w": 1.0, "note": "hi"}, "here"
            )


class TestDeltaLog:
    def test_for_graph_binds_fingerprint_and_shape(self, base_graph):
        log = DeltaLog.for_graph(base_graph)
        assert (log.num_u, log.num_v) == (base_graph.num_u, base_graph.num_v)
        assert len(log) == 0

    def test_append_out_of_range_rejected(self, base_graph):
        log = DeltaLog.for_graph(base_graph)
        with pytest.raises(DeltaError, match="out of range"):
            log.add(3, 0, 1.0)
        with pytest.raises(DeltaError, match="out of range"):
            log.reweight(0, 3, 1.0)

    def test_counts(self, base_graph):
        log = DeltaLog.for_graph(base_graph)
        log.add(1, 2, 1.0)
        log.remove(0, 1)
        log.reweight(0, 0, 4.0)
        log.reweight(1, 1, 2.0)
        assert log.counts() == {"add": 1, "remove": 1, "reweight": 2}

    def test_checksum_covers_order_and_content(self, base_graph):
        a = DeltaLog.for_graph(base_graph)
        b = DeltaLog.for_graph(base_graph)
        a.add(1, 2, 1.0)
        a.remove(0, 1)
        b.remove(0, 1)
        b.add(1, 2, 1.0)
        assert a.checksum != b.checksum  # order matters
        c = DeltaLog.for_graph(base_graph)
        c.add(1, 2, 1.0)
        c.remove(0, 1)
        assert a.checksum == c.checksum  # identical sequence, same checksum

    def test_save_load_round_trip(self, base_graph, tmp_path):
        log = DeltaLog.for_graph(base_graph)
        log.add(1, 2, 1.5)
        log.reweight(0, 0, 2.0)
        log.remove(0, 1)
        path = tmp_path / "deltas.jsonl"
        log.save(path)
        loaded = DeltaLog.load(path)
        assert loaded.base_fingerprint == log.base_fingerprint
        assert loaded.deltas == log.deltas
        assert loaded.checksum == log.checksum

    def test_load_is_append_friendly(self, base_graph, tmp_path):
        log = DeltaLog.for_graph(base_graph)
        log.add(1, 2, 1.5)
        path = tmp_path / "deltas.jsonl"
        log.save(path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(
                json.dumps({"op": "reweight", "u": 0, "v": 0, "w": 3.0}) + "\n"
            )
        loaded = DeltaLog.load(path)
        assert len(loaded) == 2
        assert loaded.deltas[-1] == EdgeDelta("reweight", 0, 0, 3.0)

    def test_load_rejects_missing_header(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(DeltaError, match="missing header"):
            DeltaLog.load(path)

    def test_load_rejects_wrong_schema(self, base_graph, tmp_path):
        log = DeltaLog.for_graph(base_graph)
        path = tmp_path / "deltas.jsonl"
        log.save(path)
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header["schema"] = "someone/else"
        path.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
        with pytest.raises(DeltaError, match="is not"):
            DeltaLog.load(path)

    def test_load_rejects_future_version(self, base_graph, tmp_path):
        log = DeltaLog.for_graph(base_graph)
        path = tmp_path / "deltas.jsonl"
        log.save(path)
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["schema"] == DELTA_SCHEMA
        header["version"] = DELTA_SCHEMA_VERSION + 1
        path.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
        with pytest.raises(DeltaError, match="unsupported delta log version"):
            DeltaLog.load(path)

    def test_load_points_at_malformed_line(self, base_graph, tmp_path):
        log = DeltaLog.for_graph(base_graph)
        log.add(1, 2, 1.0)
        path = tmp_path / "deltas.jsonl"
        log.save(path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("not json\n")
        with pytest.raises(DeltaError, match=r":3: malformed delta line"):
            DeltaLog.load(path)


class TestApplyDeltas:
    def test_reweight_changes_only_that_edge(self, base_graph):
        log = DeltaLog.for_graph(base_graph)
        log.reweight(0, 1, 5.0)
        out = apply_deltas(base_graph, log)
        dense = out.w.toarray()
        assert dense[0, 1] == 5.0
        expected = base_graph.w.toarray()
        expected[0, 1] = 5.0
        np.testing.assert_array_equal(dense, expected)

    def test_add_and_remove(self, base_graph):
        log = DeltaLog.for_graph(base_graph)
        log.add(1, 0, 2.5)
        log.remove(2, 2)
        out = apply_deltas(base_graph, log)
        dense = out.w.toarray()
        assert dense[1, 0] == 2.5
        assert dense[2, 2] == 0.0
        assert out.num_edges == base_graph.num_edges  # one in, one out

    def test_base_graph_never_mutated(self, base_graph):
        before = base_graph.w.toarray().copy()
        log = DeltaLog.for_graph(base_graph)
        log.reweight(0, 0, 9.0)
        log.remove(0, 1)
        apply_deltas(base_graph, log)
        np.testing.assert_array_equal(base_graph.w.toarray(), before)

    def test_replay_is_deterministic(self):
        graph = erdos_renyi_bipartite(30, 20, 120, weighted=True, seed=11)
        log = DeltaLog.for_graph(graph)
        coo = graph.w.tocoo()
        for pos in range(0, coo.nnz, 7):
            log.reweight(int(coo.row[pos]), int(coo.col[pos]), float(coo.data[pos]) * 2)
        log.add(0, graph.num_v - 1, 0.5) if graph.w[0, graph.num_v - 1] == 0 else None
        a = apply_deltas(graph, log)
        b = apply_deltas(graph, log)
        assert a.w.indptr.tobytes() == b.w.indptr.tobytes()
        assert a.w.indices.tobytes() == b.w.indices.tobytes()
        assert a.w.data.tobytes() == b.w.data.tobytes()

    def test_fingerprint_mismatch_refused(self, base_graph):
        log = DeltaLog.for_graph(base_graph)
        log.reweight(0, 0, 2.0)
        other = BipartiteGraph.from_dense(
            [
                [1.0, 2.0, 0.0],
                [0.0, 1.0, 0.5],
                [0.0, 0.0, 3.0],
            ]
        )
        with pytest.raises(DeltaError, match="fingerprint mismatch"):
            apply_deltas(other, log)

    def test_shape_mismatch_refused(self, base_graph):
        log = DeltaLog.for_graph(base_graph)
        bigger = BipartiteGraph.from_dense(np.ones((4, 3)))
        with pytest.raises(DeltaError, match="binds a 3 x 3 base"):
            apply_deltas(bigger, log)

    def test_add_present_edge_refused(self, base_graph):
        log = DeltaLog.for_graph(base_graph)
        log.add(0, 0, 1.0)
        with pytest.raises(DeltaError, match=r"add\(0, 0\) but the edge is already"):
            apply_deltas(base_graph, log)

    def test_remove_absent_edge_refused(self, base_graph):
        log = DeltaLog.for_graph(base_graph)
        log.remove(1, 0)
        with pytest.raises(DeltaError, match=r"remove\(1, 0\) but the edge is absent"):
            apply_deltas(base_graph, log)

    def test_reweight_absent_edge_refused(self, base_graph):
        log = DeltaLog.for_graph(base_graph)
        log.reweight(1, 0, 2.0)
        with pytest.raises(DeltaError, match="the edge is absent"):
            apply_deltas(base_graph, log)

    def test_running_state_add_then_remove(self, base_graph):
        log = DeltaLog.for_graph(base_graph)
        log.add(1, 0, 2.0)
        log.reweight(1, 0, 3.0)
        log.remove(1, 0)
        out = apply_deltas(base_graph, log)
        np.testing.assert_array_equal(out.w.toarray(), base_graph.w.toarray())

    def test_double_add_refused(self, base_graph):
        log = DeltaLog.for_graph(base_graph)
        log.add(1, 0, 2.0)
        log.add(1, 0, 2.0)
        with pytest.raises(DeltaError, match="already present"):
            apply_deltas(base_graph, log)

    def test_saved_log_replays_identically(self, tmp_path):
        graph = erdos_renyi_bipartite(25, 15, 90, weighted=True, seed=3)
        log = DeltaLog.for_graph(graph)
        coo = graph.w.tocoo()
        log.reweight(int(coo.row[0]), int(coo.col[0]), float(coo.data[0]) + 1.0)
        log.remove(int(coo.row[1]), int(coo.col[1]))
        path = tmp_path / "log.jsonl"
        log.save(path)
        direct = apply_deltas(graph, log)
        replayed = apply_deltas(graph, DeltaLog.load(path))
        assert direct.w.data.tobytes() == replayed.w.data.tobytes()
        assert direct.w.indices.tobytes() == replayed.w.indices.tobytes()
