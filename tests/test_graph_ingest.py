"""Streaming ingest and the on-disk CSR graph store.

Pins the contracts docs/SCALING.md advertises:

* the chunked parser (:func:`iter_edge_chunks`) raises byte-identical
  error messages to the legacy ``read_edge_list`` path — which now *runs*
  on it, so the equivalence is checked by raising through both entry
  points;
* :func:`build_graph_store` publishes a store whose resident load matches
  ``read_edge_list`` bit-for-bit on duplicate-free input (structure always,
  weights up to summation order only when duplicates exist);
* ingest peak RSS is O(chunk + nodes), independent of the edge count.
"""

import threading
import time

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graph import (
    GraphStore,
    GraphStoreError,
    build_graph_store,
    iter_edge_chunks,
    read_edge_list,
)
from repro.obs import MemorySampler


def _parse_all(path, **kwargs):
    """Run the chunk parser to completion, returning (chunks, u_index, v_index)."""
    u_index, v_index = {}, {}
    chunks = list(
        iter_edge_chunks(path, u_index=u_index, v_index=v_index, **kwargs)
    )
    return chunks, u_index, v_index


class TestIterEdgeChunks:
    def test_chunk_sizes_and_first_seen_indices(self, tmp_path):
        path = tmp_path / "g.tsv"
        lines = [f"u{i % 4}\ti{i}\t{float(i + 1)!r}\n" for i in range(10)]
        path.write_text("".join(lines))
        chunks, u_index, v_index = _parse_all(path, chunk_edges=3)
        assert [c.u.shape[0] for c in chunks] == [3, 3, 3, 1]
        # First-seen order, independently per side.
        assert list(u_index) == ["u0", "u1", "u2", "u3"]
        assert list(v_index) == [f"i{i}" for i in range(10)]
        # Typed arrays, already label-resolved.
        first = chunks[0]
        assert first.u.dtype == np.int64
        assert first.weight.dtype == np.float64
        np.testing.assert_array_equal(first.u, [0, 1, 2])
        np.testing.assert_array_equal(first.weight, [1.0, 2.0, 3.0])

    def test_new_labels_reported_exactly_once(self, tmp_path):
        path = tmp_path / "g.tsv"
        path.write_text("a\tx\n" "b\tx\n" "a\ty\n" "c\ty\n")
        chunks, u_index, v_index = _parse_all(path, chunk_edges=2)
        seen_u = [label for c in chunks for label in c.new_u_labels]
        seen_v = [label for c in chunks for label in c.new_v_labels]
        assert seen_u == list(u_index) == ["a", "b", "c"]
        assert seen_v == list(v_index) == ["x", "y"]

    def test_unweighted_lines_default_to_one(self, tmp_path):
        path = tmp_path / "g.tsv"
        path.write_text("a\tx\n" "b\ty\t2.5\n")  # mixed; weighted=None
        chunks, _, _ = _parse_all(path)
        np.testing.assert_array_equal(chunks[0].weight, [1.0, 2.5])

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "g.tsv"
        path.write_text("# header\n\na\tx\t1.0\n")
        chunks, _, _ = _parse_all(path)
        assert sum(c.u.shape[0] for c in chunks) == 1

    def test_chunk_edges_must_be_positive(self, tmp_path):
        path = tmp_path / "g.tsv"
        path.write_text("a\tx\n")
        with pytest.raises(ValueError, match="chunk_edges must be positive"):
            _parse_all(path, chunk_edges=0)


class TestErrorMessageEquivalence:
    """Both entry points must raise the exact legacy diagnostics."""

    BAD_INPUTS = [
        ("a\n", {}, "{path}:1: expected at least 2 fields"),
        (
            "a\tx\t1.0\tjunk\n",
            {},
            "{path}:1: expected at most 3 fields, got 4",
        ),
        ("a\tx\n", {"weighted": True}, "{path}:1: expected a weight column"),
        (
            "a\tx\t1.0\n",
            {"weighted": False},
            "{path}:1: unexpected weight column "
            "(file has 3 fields but weighted=False was requested)",
        ),
        ("a\tx\tnan\n", {}, "{path}:1: non-finite weight 'nan'"),
        ("ok\tx\t1.0\nb\n", {}, "{path}:2: expected at least 2 fields"),
    ]

    @pytest.mark.parametrize("content,kwargs,message", BAD_INPUTS)
    def test_loader_and_ingest_raise_identically(
        self, tmp_path, content, kwargs, message
    ):
        path = tmp_path / "bad.tsv"
        path.write_text(content)
        expected = message.format(path=path)
        with pytest.raises(ValueError) as via_loader:
            read_edge_list(path, **kwargs)
        with pytest.raises(ValueError) as via_ingest:
            build_graph_store(path, tmp_path / "store", **kwargs)
        assert str(via_loader.value) == expected
        assert str(via_ingest.value) == expected
        # A failed ingest publishes nothing.
        assert not (tmp_path / "store").exists()


def _random_edge_file(path, rng, num_u=37, num_v=53, num_edges=700):
    """A duplicate-free weighted edge list touching every U node."""
    pairs = rng.permutation(num_u * num_v)[:num_edges]
    with open(path, "w", encoding="utf-8") as handle:
        for flat in pairs.tolist():
            u, v = divmod(flat, num_v)
            weight = float(rng.uniform(0.1, 5.0))
            handle.write(f"u{u}\tv{v}\t{weight!r}\n")


class TestBuildGraphStore:
    def test_matches_resident_loader_bit_identically(self, tmp_path):
        path = tmp_path / "g.tsv"
        _random_edge_file(path, np.random.default_rng(11))
        resident = read_edge_list(path)
        # chunk_edges far below the edge count forces multiple spill runs.
        store, stats = build_graph_store(
            path, tmp_path / "store", chunk_edges=64
        )
        assert stats.runs_spilled > 1
        assert stats.duplicates_merged == 0
        loaded = store.resident_graph().w
        np.testing.assert_array_equal(loaded.indptr, resident.w.indptr)
        np.testing.assert_array_equal(loaded.indices, resident.w.indices)
        np.testing.assert_array_equal(loaded.data, resident.w.data)
        assert store.resident_graph().u_labels == resident.u_labels
        assert store.resident_graph().v_labels == resident.v_labels

    def test_transposed_direction_is_the_transpose(self, tmp_path):
        path = tmp_path / "g.tsv"
        _random_edge_file(path, np.random.default_rng(13), num_edges=300)
        store, _ = build_graph_store(path, tmp_path / "store", chunk_edges=50)
        v2u = store.csr("v2u").to_scipy()
        expected = store.resident_graph().w.T.tocsr()
        expected.sort_indices()
        assert (v2u != expected).nnz == 0

    def test_duplicates_summed_in_input_order(self, tmp_path):
        path = tmp_path / "g.tsv"
        path.write_text(
            "a\tx\t1.5\n" "b\ty\t1.0\n" "a\tx\t2.0\n" "a\tx\t0.25\n"
        )
        store, stats = build_graph_store(
            path, tmp_path / "store", chunk_edges=2
        )
        assert stats.edges_read == 4
        assert stats.duplicates_merged == 2
        assert stats.nnz == store.nnz == 2
        graph = store.resident_graph()
        assert graph.weight(graph.u_id("a"), graph.v_id("x")) == 1.5 + 2.0 + 0.25

    def test_zero_aggregates_dropped(self, tmp_path):
        path = tmp_path / "g.tsv"
        path.write_text("a\tx\t0.0\n" "b\ty\t1.0\n" "c\tz\t2.0\nc\tz\t-2.0\n")
        store, stats = build_graph_store(path, tmp_path / "store")
        assert stats.zeros_dropped == 2
        assert store.nnz == 1
        # Dropped edges still claim their node ids (first-seen order).
        assert store.num_u == 3 and store.num_v == 3

    def test_negative_aggregate_rejected(self, tmp_path):
        path = tmp_path / "g.tsv"
        path.write_text("a\tx\t1.0\n" "a\tx\t-3.0\n")
        with pytest.raises(ValueError, match="must be non-negative"):
            build_graph_store(path, tmp_path / "store")
        assert not (tmp_path / "store").exists()

    def test_existing_dest_requires_force(self, tmp_path):
        path = tmp_path / "g.tsv"
        path.write_text("a\tx\t1.0\n")
        build_graph_store(path, tmp_path / "store")
        with pytest.raises(GraphStoreError, match="already exists"):
            build_graph_store(path, tmp_path / "store")
        path.write_text("a\tx\t9.0\n")
        store, _ = build_graph_store(path, tmp_path / "store", force=True)
        assert store.resident_graph().weight(0, 0) == 9.0

    def test_verify_catches_corruption(self, tmp_path):
        path = tmp_path / "g.tsv"
        _random_edge_file(path, np.random.default_rng(17), num_edges=120)
        store, _ = build_graph_store(path, tmp_path / "store")
        store.verify()  # clean store passes
        target = store.path / store.manifest["arrays"]["u2v_data"]["file"]
        raw = bytearray(target.read_bytes())
        raw[-1] ^= 0xFF
        target.write_bytes(bytes(raw))
        with pytest.raises(GraphStoreError, match="checksum mismatch"):
            GraphStore.open(store.path).verify()

    def test_open_missing_or_invalid(self, tmp_path):
        with pytest.raises(GraphStoreError, match="does not exist"):
            GraphStore.open(tmp_path / "nope")
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(GraphStoreError, match="missing manifest.json"):
            GraphStore.open(empty)

    def test_stats_property_and_nbytes(self, tmp_path):
        path = tmp_path / "g.tsv"
        _random_edge_file(path, np.random.default_rng(19), num_edges=200)
        store, stats = build_graph_store(path, tmp_path / "store")
        assert store.stats == stats.to_dict()
        itemsize = np.dtype(np.int64).itemsize
        expected = (
            (store.num_u + 1 + store.num_v + 1) * itemsize  # indptrs
            + 2 * store.nnz * itemsize  # indices, both directions
            + 2 * store.nnz * np.dtype(np.float64).itemsize  # data
        )
        assert store.nbytes() == expected


class TestIngestMemory:
    def test_peak_rss_is_chunk_bounded_not_edge_bounded(self, tmp_path):
        """Ingest RSS must track O(chunk + nodes), not the edge count.

        300k edges through the legacy tuple-list loader cost ~45 MB of
        resident tuples; the streaming pipeline with chunk_edges=8192 keeps
        under ~1 MB of chunk state.  The 32 MB ceiling is ~30x the expected
        footprint yet well below the tuple-list cost, so a regression to
        edge-proportional buffering trips it deterministically.
        """
        num_edges = 300_000
        path = tmp_path / "big.tsv"
        rng = np.random.default_rng(23)
        users = rng.integers(0, 2_000, size=num_edges)
        items = rng.integers(0, 5_000, size=num_edges)
        with open(path, "w", encoding="utf-8") as handle:
            block = 50_000
            for lo in range(0, num_edges, block):
                handle.write(
                    "".join(
                        f"u{u}\ti{v}\n"
                        for u, v in zip(
                            users[lo : lo + block].tolist(),
                            items[lo : lo + block].tolist(),
                        )
                    )
                )

        sampler = MemorySampler()
        sampler.sample()
        baseline = sampler.peak_rss_bytes
        if baseline == 0:
            pytest.skip("RSS sampling unavailable on this platform")
        done = threading.Event()

        def poll():
            while not done.is_set():
                sampler.sample()
                time.sleep(0.002)

        thread = threading.Thread(target=poll)
        thread.start()
        try:
            store, stats = build_graph_store(
                path, tmp_path / "store", chunk_edges=8192
            )
        finally:
            done.set()
            thread.join()
        sampler.sample()
        assert stats.runs_spilled >= num_edges // 8192
        assert store.nnz > 0
        delta = sampler.peak_rss_bytes - baseline
        assert delta < 32 * 1024 * 1024, (
            f"ingest grew RSS by {delta / 1e6:.1f} MB on {num_edges} edges; "
            "the streaming pipeline should stay chunk-bounded"
        )
