"""Unit tests for graph IO (TSV edge lists and NPZ bundles)."""

import numpy as np
import pytest

from repro.graph import (
    BipartiteGraph,
    load_npz,
    read_edge_list,
    save_npz,
    write_edge_list,
)


@pytest.fixture
def labeled_graph():
    return BipartiteGraph.from_edges(
        [("alice", "x", 2.0), ("bob", "x", 1.0), ("alice", "y", 0.5)]
    )


class TestEdgeList:
    def test_round_trip_weighted(self, tmp_path, labeled_graph):
        path = tmp_path / "graph.tsv"
        write_edge_list(labeled_graph, path)
        loaded = read_edge_list(path)
        assert loaded.num_u == 2
        assert loaded.num_v == 2
        assert loaded.weight(loaded.u_id("alice"), loaded.v_id("y")) == 0.5

    def test_round_trip_unweighted(self, tmp_path):
        graph = BipartiteGraph.from_edges([("a", "x"), ("b", "y")])
        path = tmp_path / "graph.tsv"
        write_edge_list(graph, path)
        content = path.read_text()
        assert "1.0" not in content  # weights omitted for unweighted graphs
        loaded = read_edge_list(path)
        assert loaded.is_unweighted()
        assert loaded.num_edges == 2

    def test_force_write_weights(self, tmp_path):
        graph = BipartiteGraph.from_edges([("a", "x")])
        path = tmp_path / "graph.tsv"
        write_edge_list(graph, path, write_weights=True)
        assert "1.0" in path.read_text()

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "graph.tsv"
        path.write_text("# a comment\n\na\tx\t2.0\n")
        loaded = read_edge_list(path)
        assert loaded.num_edges == 1

    def test_custom_delimiter(self, tmp_path):
        path = tmp_path / "graph.csv"
        path.write_text("a,x,3.5\n")
        loaded = read_edge_list(path, delimiter=",")
        assert loaded.weight(0, 0) == 3.5

    def test_weighted_false_rejects_third_column(self, tmp_path):
        # A weight column under weighted=False is a format mismatch: the
        # caller declared the file unweighted, the file disagrees.
        path = tmp_path / "graph.tsv"
        path.write_text("a\tx\t7.0\n")
        with pytest.raises(ValueError, match="weighted=False"):
            read_edge_list(path, weighted=False)

    def test_weighted_false_accepts_two_columns(self, tmp_path):
        path = tmp_path / "graph.tsv"
        path.write_text("a\tx\nb\ty\n")
        loaded = read_edge_list(path, weighted=False)
        assert loaded.is_unweighted()
        assert loaded.num_edges == 2

    def test_weighted_true_requires_column(self, tmp_path):
        path = tmp_path / "graph.tsv"
        path.write_text("a\tx\n")
        with pytest.raises(ValueError, match="weight column"):
            read_edge_list(path, weighted=True)

    def test_too_few_fields(self, tmp_path):
        path = tmp_path / "graph.tsv"
        path.write_text("lonely\n")
        with pytest.raises(ValueError, match="at least 2 fields"):
            read_edge_list(path)

    def test_too_many_fields(self, tmp_path):
        path = tmp_path / "graph.tsv"
        path.write_text("a\tx\t1.0\tbogus\n")
        with pytest.raises(ValueError, match="at most 3 fields"):
            read_edge_list(path)

    @pytest.mark.parametrize("bad", ["nan", "inf", "-inf", "NaN", "Infinity"])
    def test_non_finite_weights_rejected(self, tmp_path, bad):
        path = tmp_path / "graph.tsv"
        path.write_text(f"a\tx\t{bad}\n")
        with pytest.raises(ValueError, match="non-finite weight"):
            read_edge_list(path)

    def test_non_finite_weight_error_names_the_line(self, tmp_path):
        path = tmp_path / "graph.tsv"
        path.write_text("a\tx\t1.0\nb\ty\tnan\n")
        with pytest.raises(ValueError, match=":2:"):
            read_edge_list(path)

    def test_autodetect_mixed_columns(self, tmp_path):
        # weighted=None (default): per-line detection mixes 2- and
        # 3-column rows, defaulting absent weights to 1.0.
        path = tmp_path / "graph.tsv"
        path.write_text("a\tx\t2.5\nb\tx\nb\ty\t0.5\n")
        loaded = read_edge_list(path)
        assert loaded.weight(loaded.u_id("a"), loaded.v_id("x")) == 2.5
        assert loaded.weight(loaded.u_id("b"), loaded.v_id("x")) == 1.0
        assert loaded.weight(loaded.u_id("b"), loaded.v_id("y")) == 0.5

    def test_autodetect_still_rejects_non_finite(self, tmp_path):
        path = tmp_path / "graph.tsv"
        path.write_text("a\tx\nb\ty\tinf\n")
        with pytest.raises(ValueError, match="non-finite weight"):
            read_edge_list(path)

    def test_error_mentions_line_number(self, tmp_path):
        path = tmp_path / "graph.tsv"
        path.write_text("a\tx\nbad\n")
        with pytest.raises(ValueError, match=":2:"):
            read_edge_list(path)


class TestNpz:
    def test_round_trip_with_labels(self, tmp_path, labeled_graph):
        path = tmp_path / "graph.npz"
        save_npz(labeled_graph, path)
        loaded = load_npz(path)
        assert loaded == labeled_graph
        assert loaded.u_labels == labeled_graph.u_labels
        assert loaded.v_labels == labeled_graph.v_labels

    def test_round_trip_without_labels(self, tmp_path, random_graph):
        path = tmp_path / "graph.npz"
        save_npz(random_graph, path)
        loaded = load_npz(path)
        assert loaded == random_graph
        assert loaded.u_labels is None

    def test_preserves_exact_weights(self, tmp_path):
        graph = BipartiteGraph.from_dense([[0.1234567890123456]])
        path = tmp_path / "graph.npz"
        save_npz(graph, path)
        loaded = load_npz(path)
        assert loaded.weight(0, 0) == graph.weight(0, 0)

    def test_empty_graph_round_trip(self, tmp_path):
        graph = BipartiteGraph.from_dense(np.zeros((2, 3)))
        path = tmp_path / "graph.npz"
        save_npz(graph, path)
        loaded = load_npz(path)
        assert loaded.num_u == 2
        assert loaded.num_v == 3
        assert loaded.num_edges == 0

    def test_non_string_labels(self, tmp_path):
        graph = BipartiteGraph.from_edges([((1, "compound"), 42, 1.0)])
        path = tmp_path / "graph.npz"
        save_npz(graph, path)
        loaded = load_npz(path)
        # JSON round trip restores tuples via the hashability converter.
        assert loaded.u_labels == [(1, "compound")]
        assert loaded.v_labels == [42]

    def test_bundle_key_set_with_labels(self, tmp_path, labeled_graph):
        # Regression: save_npz used to pass allow_pickle=True *into*
        # np.savez_compressed, which stored it as a bogus array member.
        path = tmp_path / "graph.npz"
        save_npz(labeled_graph, path)
        with np.load(path, allow_pickle=True) as bundle:
            assert sorted(bundle.files) == [
                "data", "indices", "indptr", "shape", "u_labels", "v_labels",
            ]

    def test_bundle_key_set_without_labels(self, tmp_path):
        graph = BipartiteGraph.from_dense([[1.0, 0.0], [0.0, 2.0]])
        path = tmp_path / "graph.npz"
        save_npz(graph, path)
        with np.load(path, allow_pickle=False) as bundle:
            assert sorted(bundle.files) == ["data", "indices", "indptr", "shape"]

    def test_unlabeled_bundle_loads_without_pickle(self, tmp_path):
        # Without labels the bundle must be readable with pickle disabled.
        graph = BipartiteGraph.from_dense([[1.0, 0.5]])
        path = tmp_path / "graph.npz"
        save_npz(graph, path)
        with np.load(path, allow_pickle=False) as bundle:
            for key in bundle.files:
                assert bundle[key].dtype != object
        assert load_npz(path) == graph

    def test_loads_old_bundle_with_stray_allow_pickle_member(self, tmp_path):
        # Bundles written by older versions carry a stray "allow_pickle"
        # array member; the loader must ignore it.
        graph = BipartiteGraph.from_edges([("alice", "x", 2.0), ("bob", "y", 1.0)])
        w = graph.w
        path = tmp_path / "old.npz"
        np.savez_compressed(
            path,
            shape=np.asarray(w.shape, dtype=np.int64),
            indptr=w.indptr,
            indices=w.indices,
            data=w.data,
            u_labels=np.asarray(
                [f'"{label}"' for label in graph.u_labels], dtype=object
            ),
            v_labels=np.asarray(
                [f'"{label}"' for label in graph.v_labels], dtype=object
            ),
            allow_pickle=True,
        )
        loaded = load_npz(path)
        assert loaded == graph
        assert loaded.u_labels == ["alice", "bob"]


class TestCorruptBundles:
    """Hand-corrupted NPZ bundles must fail with pointed messages, not deep
    inside scipy or the kernels (see ``_validate_csr_arrays``)."""

    @pytest.fixture
    def arrays(self, random_graph):
        w = random_graph.w
        return {
            "shape": np.asarray(w.shape, dtype=np.int64),
            "indptr": w.indptr.copy(),
            "indices": w.indices.copy(),
            "data": w.data.copy(),
        }

    def _write(self, tmp_path, arrays):
        path = tmp_path / "corrupt.npz"
        np.savez_compressed(path, **arrays)
        return path

    def test_missing_arrays_named(self, tmp_path, arrays):
        del arrays["indptr"], arrays["data"]
        with pytest.raises(ValueError, match=r"missing arrays.*indptr"):
            load_npz(self._write(tmp_path, arrays))

    def test_float_indptr_rejected(self, tmp_path, arrays):
        arrays["indptr"] = arrays["indptr"].astype(np.float64)
        with pytest.raises(ValueError, match="'indptr' must be integer"):
            load_npz(self._write(tmp_path, arrays))

    def test_non_vector_shape_rejected(self, tmp_path, arrays):
        arrays["shape"] = np.asarray([[2, 3]], dtype=np.int64)
        with pytest.raises(ValueError, match="length-2 vector"):
            load_npz(self._write(tmp_path, arrays))

    def test_negative_shape_rejected(self, tmp_path, arrays):
        arrays["shape"] = np.asarray([-1, 3], dtype=np.int64)
        with pytest.raises(ValueError, match="non-negative"):
            load_npz(self._write(tmp_path, arrays))

    def test_indptr_length_mismatch_rejected(self, tmp_path, arrays):
        arrays["indptr"] = arrays["indptr"][:-1]
        with pytest.raises(ValueError, match="entries for"):
            load_npz(self._write(tmp_path, arrays))

    def test_decreasing_indptr_rejected(self, tmp_path, arrays):
        arrays["indptr"][1] = arrays["indptr"][-1]
        with pytest.raises(ValueError, match="non-decreasing"):
            load_npz(self._write(tmp_path, arrays))

    def test_truncated_data_rejected(self, tmp_path, arrays):
        arrays["data"] = arrays["data"][:-1]
        with pytest.raises(ValueError, match="declares"):
            load_npz(self._write(tmp_path, arrays))

    def test_out_of_range_indices_rejected(self, tmp_path, arrays):
        arrays["indices"][0] = int(arrays["shape"][1])
        with pytest.raises(ValueError, match=r"'indices' must lie in"):
            load_npz(self._write(tmp_path, arrays))

    def test_non_finite_weights_rejected(self, tmp_path, arrays):
        arrays["data"][0] = np.inf
        with pytest.raises(ValueError, match="non-finite"):
            load_npz(self._write(tmp_path, arrays))

    def test_error_names_the_file(self, tmp_path, arrays):
        arrays["data"][0] = np.nan
        path = self._write(tmp_path, arrays)
        with pytest.raises(ValueError, match="corrupt.npz"):
            load_npz(path)
