"""Unit tests for graph IO (TSV edge lists and NPZ bundles)."""

import numpy as np
import pytest

from repro.graph import (
    BipartiteGraph,
    load_npz,
    read_edge_list,
    save_npz,
    write_edge_list,
)


@pytest.fixture
def labeled_graph():
    return BipartiteGraph.from_edges(
        [("alice", "x", 2.0), ("bob", "x", 1.0), ("alice", "y", 0.5)]
    )


class TestEdgeList:
    def test_round_trip_weighted(self, tmp_path, labeled_graph):
        path = tmp_path / "graph.tsv"
        write_edge_list(labeled_graph, path)
        loaded = read_edge_list(path)
        assert loaded.num_u == 2
        assert loaded.num_v == 2
        assert loaded.weight(loaded.u_id("alice"), loaded.v_id("y")) == 0.5

    def test_round_trip_unweighted(self, tmp_path):
        graph = BipartiteGraph.from_edges([("a", "x"), ("b", "y")])
        path = tmp_path / "graph.tsv"
        write_edge_list(graph, path)
        content = path.read_text()
        assert "1.0" not in content  # weights omitted for unweighted graphs
        loaded = read_edge_list(path)
        assert loaded.is_unweighted()
        assert loaded.num_edges == 2

    def test_force_write_weights(self, tmp_path):
        graph = BipartiteGraph.from_edges([("a", "x")])
        path = tmp_path / "graph.tsv"
        write_edge_list(graph, path, write_weights=True)
        assert "1.0" in path.read_text()

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "graph.tsv"
        path.write_text("# a comment\n\na\tx\t2.0\n")
        loaded = read_edge_list(path)
        assert loaded.num_edges == 1

    def test_custom_delimiter(self, tmp_path):
        path = tmp_path / "graph.csv"
        path.write_text("a,x,3.5\n")
        loaded = read_edge_list(path, delimiter=",")
        assert loaded.weight(0, 0) == 3.5

    def test_weighted_false_ignores_third_column(self, tmp_path):
        path = tmp_path / "graph.tsv"
        path.write_text("a\tx\t7.0\n")
        loaded = read_edge_list(path, weighted=False)
        assert loaded.weight(0, 0) == 1.0

    def test_weighted_true_requires_column(self, tmp_path):
        path = tmp_path / "graph.tsv"
        path.write_text("a\tx\n")
        with pytest.raises(ValueError, match="weight column"):
            read_edge_list(path, weighted=True)

    def test_too_few_fields(self, tmp_path):
        path = tmp_path / "graph.tsv"
        path.write_text("lonely\n")
        with pytest.raises(ValueError, match="at least 2 fields"):
            read_edge_list(path)

    def test_error_mentions_line_number(self, tmp_path):
        path = tmp_path / "graph.tsv"
        path.write_text("a\tx\nbad\n")
        with pytest.raises(ValueError, match=":2:"):
            read_edge_list(path)


class TestNpz:
    def test_round_trip_with_labels(self, tmp_path, labeled_graph):
        path = tmp_path / "graph.npz"
        save_npz(labeled_graph, path)
        loaded = load_npz(path)
        assert loaded == labeled_graph
        assert loaded.u_labels == labeled_graph.u_labels
        assert loaded.v_labels == labeled_graph.v_labels

    def test_round_trip_without_labels(self, tmp_path, random_graph):
        path = tmp_path / "graph.npz"
        save_npz(random_graph, path)
        loaded = load_npz(path)
        assert loaded == random_graph
        assert loaded.u_labels is None

    def test_preserves_exact_weights(self, tmp_path):
        graph = BipartiteGraph.from_dense([[0.1234567890123456]])
        path = tmp_path / "graph.npz"
        save_npz(graph, path)
        loaded = load_npz(path)
        assert loaded.weight(0, 0) == graph.weight(0, 0)

    def test_empty_graph_round_trip(self, tmp_path):
        graph = BipartiteGraph.from_dense(np.zeros((2, 3)))
        path = tmp_path / "graph.npz"
        save_npz(graph, path)
        loaded = load_npz(path)
        assert loaded.num_u == 2
        assert loaded.num_v == 3
        assert loaded.num_edges == 0

    def test_non_string_labels(self, tmp_path):
        graph = BipartiteGraph.from_edges([((1, "compound"), 42, 1.0)])
        path = tmp_path / "graph.npz"
        save_npz(graph, path)
        loaded = load_npz(path)
        # JSON round trip restores tuples via the hashability converter.
        assert loaded.u_labels == [(1, "compound")]
        assert loaded.v_labels == [42]
