"""Unit tests for bipartite k-core filtering."""

import numpy as np
import pytest

from repro.datasets import complete_bipartite, star_graph
from repro.graph import BipartiteGraph, k_core, k_core_indices


class TestKCoreIndices:
    def test_complete_graph_survives(self):
        graph = complete_bipartite(5, 4)
        u_keep, v_keep = k_core_indices(graph, 3)
        np.testing.assert_array_equal(u_keep, np.arange(5))
        np.testing.assert_array_equal(v_keep, np.arange(4))

    def test_star_collapses(self):
        graph = star_graph(6)
        # each leaf has degree 1 < 2, so everything peels away
        u_keep, v_keep = k_core_indices(graph, 2)
        assert u_keep.size == 0
        assert v_keep.size == 0

    def test_zero_core_keeps_all(self):
        graph = star_graph(3)
        u_keep, v_keep = k_core_indices(graph, 0)
        assert u_keep.size == 1
        assert v_keep.size == 3

    def test_cascading_removal(self):
        # u0 - v0 - u1 - v1 chain plus a dense block; the chain peels off in
        # cascading rounds while the block survives.
        dense = np.zeros((5, 5))
        dense[2:, 2:] = 1.0  # 3x3 complete block
        dense[0, 0] = 1.0
        dense[1, 0] = 1.0
        dense[1, 1] = 1.0
        graph = BipartiteGraph.from_dense(dense)
        u_keep, v_keep = k_core_indices(graph, 2)
        np.testing.assert_array_equal(u_keep, [2, 3, 4])
        np.testing.assert_array_equal(v_keep, [2, 3, 4])

    def test_asymmetric_thresholds(self):
        # U nodes need >= 1 edge, V nodes need >= 3 edges.
        graph = complete_bipartite(3, 4)
        u_keep, v_keep = k_core_indices(graph, 1, 3)
        assert u_keep.size == 3
        assert v_keep.size == 4

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            k_core_indices(star_graph(2), -1)

    def test_weights_do_not_affect_core(self):
        # k-core counts edges, not weights: tiny weights still count.
        dense = np.array([[100.0, 0.1], [0.1, 0.1]])
        graph = BipartiteGraph.from_dense(dense)
        u_keep, v_keep = k_core_indices(graph, 2)
        np.testing.assert_array_equal(u_keep, [0, 1])
        np.testing.assert_array_equal(v_keep, [0, 1])


class TestKCore:
    def test_induced_subgraph(self):
        dense = np.zeros((4, 4))
        dense[:3, :3] = 1.0
        dense[3, 3] = 1.0  # pendant pair
        graph = BipartiteGraph.from_dense(dense)
        core = k_core(graph, 2)
        assert core.num_u == 3
        assert core.num_v == 3
        assert core.num_edges == 9

    def test_result_satisfies_threshold(self, rating_graph):
        core = k_core(rating_graph, 5)
        if core.num_u and core.num_v:
            assert core.u_degrees().min() >= 5
            assert core.v_degrees().min() >= 5

    def test_idempotent(self, rating_graph):
        once = k_core(rating_graph, 5)
        twice = k_core(once, 5)
        assert once == twice

    def test_fixed_point_requires_iteration(self):
        # A path graph: every interior node has degree 2, endpoints 1.
        # Removing endpoints reduces interior degrees, cascading fully.
        from repro.datasets import path_graph

        graph = path_graph(9)
        core = k_core(graph, 2)
        assert core.num_u == 0 or core.num_edges == 0

    def test_labels_preserved(self):
        graph = BipartiteGraph.from_edges(
            [("a", "x"), ("a", "y"), ("b", "x"), ("b", "y"), ("c", "z")]
        )
        core = k_core(graph, 2)
        assert set(core.u_labels) == {"a", "b"}
        assert set(core.v_labels) == {"x", "y"}
