"""Unit tests for graph statistics."""

import numpy as np
import pytest

from repro.datasets import (
    complete_bipartite,
    figure1_graph,
    load_dataset,
    path_graph,
    star_graph,
    two_cliques,
)
from repro.graph import (
    BipartiteGraph,
    connected_components,
    count_butterflies,
    degree_summary,
    giant_component_fraction,
    gini_coefficient,
    graph_summary,
)


class TestGini:
    def test_uniform_is_zero(self):
        assert gini_coefficient(np.full(50, 3.0)) == pytest.approx(0.0)

    def test_single_holder_near_one(self):
        values = np.zeros(100)
        values[0] = 10.0
        assert gini_coefficient(values) == pytest.approx(0.99, abs=0.01)

    def test_known_value(self):
        # For [0, 1]: mean absolute difference / (2 * mean) = 0.5.
        assert gini_coefficient(np.array([0.0, 1.0])) == pytest.approx(0.5)

    def test_all_zero(self):
        assert gini_coefficient(np.zeros(5)) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            gini_coefficient(np.array([]))
        with pytest.raises(ValueError):
            gini_coefficient(np.array([-1.0, 2.0]))


class TestDegreeSummary:
    def test_figure1_values(self):
        summary = degree_summary(figure1_graph(), "u")
        assert summary.minimum == 3
        assert summary.maximum == 4
        assert summary.mean == pytest.approx(13 / 4)

    def test_v_side(self):
        summary = degree_summary(figure1_graph(), "v")
        assert summary.maximum == 4
        assert summary.median == 2.0

    def test_side_validated(self):
        with pytest.raises(ValueError):
            degree_summary(figure1_graph(), "w")

    def test_power_law_dataset_is_skewed(self):
        graph = load_dataset("wikipedia", seed=0)
        summary = degree_summary(graph, "v")
        assert summary.gini > 0.2  # real-ish interaction data is unequal


class TestComponents:
    def test_connected_graph(self):
        count, labels = connected_components(figure1_graph())
        assert count == 1
        assert (labels == 0).all()

    def test_two_cliques(self):
        count, labels = connected_components(two_cliques(3))
        assert count == 2
        # U block 1 shares a label with V block 1.
        assert labels[0] == labels[6 + 0]
        assert labels[0] != labels[3]

    def test_isolated_nodes_are_singletons(self):
        graph = BipartiteGraph.from_dense(
            np.array([[1.0, 0.0], [0.0, 0.0]])
        )
        count, labels = connected_components(graph)
        assert count == 3  # {u0, v0}, {u1}, {v1}

    def test_giant_component_fraction(self):
        assert giant_component_fraction(figure1_graph()) == 1.0
        assert giant_component_fraction(two_cliques(3)) == pytest.approx(0.5)


class TestButterflies:
    def test_figure1_hand_count(self):
        # (u1,u2): C(3,2)=3; (u1,u4): 1; (u2,u4): 1; (u3,u4): 3 -> 8.
        assert count_butterflies(figure1_graph()) == 8

    def test_complete_bipartite(self):
        # K_{3,3}: C(3,2) * C(3,2) = 9 butterflies.
        assert count_butterflies(complete_bipartite(3, 3)) == 9

    def test_acyclic_graphs_have_none(self):
        assert count_butterflies(path_graph(6)) == 0
        assert count_butterflies(star_graph(5)) == 0

    def test_weights_ignored(self):
        weighted = BipartiteGraph.from_dense(
            np.array([[5.0, 2.0], [1.0, 9.0]])
        )
        assert count_butterflies(weighted) == 1


class TestSummary:
    def test_contains_all_fields(self):
        summary = graph_summary(figure1_graph())
        assert summary["num_edges"] == 13
        assert summary["weighted"] is True
        assert summary["giant_component"] == 1.0
        assert summary["butterflies"] == 8
        assert summary["u_degrees"].maximum == 4
