"""Integration tests: full pipelines and the paper's headline orderings."""

import numpy as np
import pytest

from repro import (
    BipartiteGraph,
    GEBEPoisson,
    MHPOnlyBNE,
    MHSOnlyBNE,
    gebe_poisson,
    read_edge_list,
    write_edge_list,
)
from repro.datasets import (
    BlockModel,
    RatingModel,
    latent_factor_ratings,
    stochastic_block_bipartite,
)
from repro.tasks import LinkPredictionTask, RecommendationTask


@pytest.fixture(scope="module")
def rec_task():
    model = RatingModel(
        num_users=800, num_items=400, edges_per_user=15,
        num_factors=24, num_communities=12, noise=0.3,
    )
    graph = latent_factor_ratings(model, seed=0)
    return RecommendationTask(graph, core=4, seed=0)


@pytest.fixture(scope="module")
def lp_task():
    model = BlockModel(
        num_u=600, num_v=400, num_blocks=8, num_edges=7000, in_out_ratio=6.0
    )
    graph = stochastic_block_bipartite(model, seed=0)
    return LinkPredictionTask(graph, seed=0)


class TestRecommendationPipeline:
    def test_gebe_p_beats_mhs_ablation(self, rec_task):
        """Table 4 shape: dropping MHP hurts ranking quality.

        MHS-BNE's objective is invariant to per-side rotations; our aligned
        implementation is its most favorable resolution (see EXPERIMENTS.md),
        so the robust orderings are the rank-sensitive metrics.
        """
        full = rec_task.run(GEBEPoisson(dimension=32, seed=0))
        mhs_only = rec_task.run(MHSOnlyBNE(dimension=32, seed=0))
        assert full.ndcg > mhs_only.ndcg
        assert full.mrr > mhs_only.mrr

    def test_gebe_p_at_least_matches_truncated_gebe(self, rec_task):
        """Table 4 shape: the closed form is >= the truncated solver."""
        closed = rec_task.run(GEBEPoisson(dimension=32, seed=0))
        truncated = rec_task.run(
            gebe_poisson(32, seed=0, max_iterations=50)
        )
        assert closed.f1 >= truncated.f1 - 0.01

    def test_gebe_p_much_faster_than_gebe(self, rec_task):
        """Figure 2 shape: the specialized solver wins on time."""
        closed = rec_task.run(GEBEPoisson(dimension=32, seed=0))
        truncated = rec_task.run(
            gebe_poisson(32, seed=0, max_iterations=50)
        )
        assert closed.elapsed_seconds < truncated.elapsed_seconds


class TestLinkPredictionPipeline:
    def test_gebe_p_beats_random_strongly(self, lp_task):
        report = lp_task.run(GEBEPoisson(dimension=32, seed=0))
        assert report.auc_roc > 0.7

    def test_ablations_complete(self, lp_task):
        mhp = lp_task.run(MHPOnlyBNE(dimension=32, seed=0))
        mhs = lp_task.run(MHSOnlyBNE(dimension=32, seed=0))
        assert mhp.auc_roc > 0.6
        assert mhs.auc_roc > 0.6


class TestEndToEndIO:
    def test_file_to_embeddings_to_recommendations(self, tmp_path):
        # Write a small labeled graph, read it back, embed, recommend.
        edges = [
            ("ann", "inception", 5.0),
            ("ann", "matrix", 4.0),
            ("bob", "matrix", 5.0),
            ("bob", "memento", 3.0),
            ("cat", "inception", 4.0),
            ("cat", "memento", 5.0),
            ("dan", "inception", 2.0),
            ("dan", "up", 5.0),
        ]
        graph = BipartiteGraph.from_edges(edges)
        path = tmp_path / "ratings.tsv"
        write_edge_list(graph, path)
        loaded = read_edge_list(path)

        result = GEBEPoisson(dimension=4, seed=0).fit(loaded)
        ann = loaded.u_id("ann")
        scores = result.scores_for_u(ann)
        # Every score is finite and the API round-trips labels.
        assert np.isfinite(scores).all()
        best = int(np.argmax(scores))
        assert loaded.v_label(best) in {"inception", "matrix", "memento", "up"}

    def test_embeddings_are_serializable(self, tmp_path, block_graph):
        result = GEBEPoisson(dimension=8, seed=0).fit(block_graph)
        path = tmp_path / "embeddings.npz"
        np.savez(path, u=result.u, v=result.v)
        loaded = np.load(path)
        np.testing.assert_array_equal(loaded["u"], result.u)
