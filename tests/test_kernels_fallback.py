"""The ``_HAVE_SPARSETOOLS = False`` fallback path of the kernels.

When scipy's low-level ``csr_matvecs`` / ``csc_matvecs`` routines are
unavailable, :mod:`repro.linalg.kernels` falls back to plain ``w @ block``
products.  That path must be **bit-identical** to the in-place sparsetools
path (both execute the same CSR/CSC operation order per element) and must
report **identical obs counts** (counting happens once per logical apply,
above the dispatch).
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro import obs
from repro.core import PoissonPMF
from repro.linalg import DtypePolicy, ExecPolicy, GramKernel, SparseKernel
from repro.linalg import kernels as kernels_module


@pytest.fixture
def no_sparsetools(monkeypatch):
    monkeypatch.setattr(kernels_module, "_HAVE_SPARSETOOLS", False)


@pytest.fixture
def w(rng):
    dense = np.where(rng.random((13, 9)) < 0.4, rng.random((13, 9)), 0.0)
    dense[0, 0] = 1.0  # at least one entry
    return sp.csr_matrix(dense)


def _threaded_policy(n_threads=4, compute="float64"):
    return DtypePolicy(
        compute=compute,
        exec_policy=ExecPolicy(n_threads=n_threads, serial_threshold=0),
    )


class TestFallbackBitIdentity:
    def test_matmul_matches_sparsetools_path(self, rng, w, monkeypatch):
        v_block = rng.standard_normal((9, 5))
        expected = SparseKernel(w).matmul(v_block)
        monkeypatch.setattr(kernels_module, "_HAVE_SPARSETOOLS", False)
        for reuse in (False, True):
            got = SparseKernel(w).matmul(v_block, reuse=reuse)
            np.testing.assert_array_equal(got, expected)

    def test_t_matmul_matches_sparsetools_path(self, rng, w, monkeypatch):
        u_block = rng.standard_normal((13, 5))
        expected = SparseKernel(w).t_matmul(u_block)
        monkeypatch.setattr(kernels_module, "_HAVE_SPARSETOOLS", False)
        for reuse in (False, True):
            got = SparseKernel(w).t_matmul(u_block, reuse=reuse)
            np.testing.assert_array_equal(got, expected)

    def test_gram_and_pmf_match_sparsetools_path(self, rng, w, monkeypatch):
        block = rng.standard_normal((13, 6))
        weights = PoissonPMF(lam=1.0).weights(4)
        expected_gram = GramKernel(w).gram_apply(block)
        expected_pmf = GramKernel(w).pmf_apply(block, weights)
        monkeypatch.setattr(kernels_module, "_HAVE_SPARSETOOLS", False)
        np.testing.assert_array_equal(GramKernel(w).gram_apply(block), expected_gram)
        np.testing.assert_array_equal(
            GramKernel(w).pmf_apply(block, weights), expected_pmf
        )

    def test_1d_blocks(self, rng, w, no_sparsetools):
        x = rng.standard_normal(9)
        y = rng.standard_normal(13)
        kernel = SparseKernel(w)
        np.testing.assert_array_equal(kernel.matmul(x), w @ x)
        np.testing.assert_array_equal(kernel.t_matmul(y), w.T @ y)

    def test_float32_fallback(self, rng, w, monkeypatch):
        block = rng.standard_normal((13, 4))
        policy = DtypePolicy.float32()
        expected = GramKernel(w, policy).gram_apply(block)
        monkeypatch.setattr(kernels_module, "_HAVE_SPARSETOOLS", False)
        got = GramKernel(w, policy).gram_apply(block)
        assert got.dtype == np.float32
        np.testing.assert_array_equal(got, expected)

    def test_threaded_policy_degrades_to_serial(self, rng, w, no_sparsetools):
        # Without sparsetools there is nothing GIL-free to shard; the
        # kernels must stay correct (and serial) under a threaded policy.
        block = rng.standard_normal((13, 6))
        weights = PoissonPMF(lam=1.0).weights(3)
        gram = GramKernel(w, _threaded_policy())
        np.testing.assert_array_equal(
            gram.pmf_apply(block, weights),
            GramKernel(w).pmf_apply(block, weights),
        )


class TestFallbackObsCounts:
    def _counts(self, w, rng_seed=3):
        rng = np.random.default_rng(rng_seed)
        block = rng.standard_normal((13, 6))
        v_block = rng.standard_normal((9, 6))
        weights = PoissonPMF(lam=1.0).weights(4)
        with obs.collect() as collector:
            SparseKernel(w).matmul(v_block)
            SparseKernel(w).t_matmul(block)
            gram = GramKernel(w)
            gram.gram_apply(block)
            gram.pmf_apply(block, weights)
        return collector.report(method="fallback", wall_seconds=0.0).ops

    def test_counts_identical_to_sparsetools_path(self, w, monkeypatch):
        reference = self._counts(w)
        assert reference["sparse_matvecs"] > 0
        monkeypatch.setattr(kernels_module, "_HAVE_SPARSETOOLS", False)
        assert self._counts(w) == reference
