"""Tests for the workspace-reusing kernels and the dtype policy.

The headline invariants:

* the workspace kernels are **bit-identical** to the allocation-per-call
  reference path in float64 (hypothesis property tests, including chunked
  application with ``block_cols`` smaller than the block width);
* the obs matvec counters are **unchanged** by the kernel refactor
  (differential test: legacy vs workspace policies produce identical
  counts);
* the float32 policy agrees with float64 within a tolerance budget.
"""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.core import GEBEPoisson, PoissonPMF, gebe_poisson
from repro.datasets import toy_graph
from repro.linalg import (
    DtypePolicy,
    GramKernel,
    MatrixFreeOperator,
    ProximityOperator,
    SparseKernel,
    gram_apply,
    pmf_weighted_apply,
    randomized_svd,
)


def random_sparse(rng: np.random.Generator, m: int, n: int, density: float):
    """A random non-negative CSR matrix with at least one entry."""
    mask = rng.random((m, n)) < density
    if not mask.any():
        mask[rng.integers(m), rng.integers(n)] = True
    dense = np.where(mask, rng.random((m, n)), 0.0)
    return sp.csr_matrix(dense)


@st.composite
def sparse_and_block(draw):
    """(W, block) pairs with varied shapes, densities, and block widths."""
    seed = draw(st.integers(0, 2**31 - 1))
    m = draw(st.integers(1, 12))
    n = draw(st.integers(1, 12))
    k = draw(st.integers(1, 9))
    density = draw(st.floats(0.05, 0.9))
    rng = np.random.default_rng(seed)
    w = random_sparse(rng, m, n, density)
    block = rng.standard_normal((m, k))
    return w, block


class TestDtypePolicy:
    def test_default_is_float64_workspace(self):
        policy = DtypePolicy()
        assert policy.compute_dtype == np.float64
        assert policy.workspace
        assert policy.is_exact
        assert policy.describe() == "float64/workspace"

    def test_legacy_and_float32_constructors(self):
        assert DtypePolicy.legacy().describe() == "float64/legacy"
        assert DtypePolicy.float32().describe() == "float32/workspace"
        assert not DtypePolicy.float32().is_exact

    def test_accumulate_must_be_float64(self):
        with pytest.raises(ValueError, match="accumulate"):
            DtypePolicy(accumulate="float32")

    def test_unknown_compute_dtype_rejected(self):
        with pytest.raises(ValueError, match="compute dtype"):
            DtypePolicy(compute="float16")

    def test_block_cols_must_be_positive(self):
        with pytest.raises(ValueError, match="block_cols"):
            DtypePolicy(block_cols=0)

    def test_with_workspace(self):
        assert not DtypePolicy().with_workspace(False).workspace


class TestSparseKernel:
    @settings(max_examples=50, deadline=None)
    @given(sparse_and_block())
    def test_matmul_bit_identical_to_scipy(self, data):
        w, block = data
        kernel = SparseKernel(w)
        v_block = np.random.default_rng(0).standard_normal((w.shape[1], block.shape[1]))
        expected = w @ v_block
        for reuse in (False, True):
            np.testing.assert_array_equal(kernel.matmul(v_block, reuse=reuse), expected)

    @settings(max_examples=50, deadline=None)
    @given(sparse_and_block())
    def test_t_matmul_bit_identical_to_scipy(self, data):
        w, block = data
        kernel = SparseKernel(w)
        expected = w.T @ block
        for reuse in (False, True):
            np.testing.assert_array_equal(kernel.t_matmul(block, reuse=reuse), expected)

    def test_1d_blocks(self, rng):
        w = random_sparse(rng, 6, 4, 0.5)
        kernel = SparseKernel(w)
        x = rng.standard_normal(4)
        y = rng.standard_normal(6)
        np.testing.assert_array_equal(kernel.matmul(x), w @ x)
        np.testing.assert_array_equal(kernel.t_matmul(y), w.T @ y)

    def test_reuse_buffer_is_overwritten(self, rng):
        w = random_sparse(rng, 5, 3, 0.6)
        kernel = SparseKernel(w)
        first = kernel.matmul(rng.standard_normal((3, 2)), reuse=True)
        snapshot = first.copy()
        second_input = rng.standard_normal((3, 2))
        second = kernel.matmul(second_input, reuse=True)
        assert second is not None
        assert not np.array_equal(first, snapshot)  # same storage, new values

    def test_workspace_grows_monotonically(self, rng):
        w = random_sparse(rng, 8, 5, 0.5)
        kernel = SparseKernel(w)
        kernel.matmul(rng.standard_normal((5, 2)), reuse=True)
        small = kernel.workspace_bytes()
        kernel.matmul(rng.standard_normal((5, 6)), reuse=True)
        assert kernel.workspace_bytes() > small


class TestGramKernelBitIdentity:
    @settings(max_examples=50, deadline=None)
    @given(sparse_and_block())
    def test_gram_apply_bit_identical(self, data):
        w, block = data
        np.testing.assert_array_equal(
            GramKernel(w).gram_apply(block), gram_apply(w, block)
        )

    @settings(max_examples=50, deadline=None)
    @given(sparse_and_block(), st.integers(0, 6))
    def test_pmf_apply_bit_identical(self, data, tau):
        w, block = data
        weights = PoissonPMF(lam=1.0).weights(tau)
        np.testing.assert_array_equal(
            GramKernel(w).pmf_apply(block, weights),
            pmf_weighted_apply(w, block, weights),
        )

    @settings(max_examples=50, deadline=None)
    @given(sparse_and_block(), st.integers(1, 4))
    def test_pmf_apply_chunked_bit_identical(self, data, block_cols):
        # Column chunking must preserve the per-element operation order.
        w, block = data
        weights = PoissonPMF(lam=1.0).weights(4)
        chunked = GramKernel(w, DtypePolicy(block_cols=block_cols))
        np.testing.assert_array_equal(
            chunked.pmf_apply(block, weights),
            pmf_weighted_apply(w, block, weights),
        )

    def test_gram_apply_chunked_bit_identical(self, rng):
        w = random_sparse(rng, 10, 7, 0.4)
        block = rng.standard_normal((10, 9))
        chunked = GramKernel(w, DtypePolicy(block_cols=2))
        np.testing.assert_array_equal(chunked.gram_apply(block), gram_apply(w, block))

    def test_1d_block(self, rng):
        w = random_sparse(rng, 6, 4, 0.5)
        weights = PoissonPMF(lam=1.0).weights(3)
        x = rng.standard_normal(6)
        out = GramKernel(w).pmf_apply(x, weights)
        assert out.shape == (6,)
        np.testing.assert_array_equal(out, pmf_weighted_apply(w, x, weights))


class TestOperatorPolicyEquivalence:
    def test_matrix_free_operator_workspace_vs_legacy(self, rng):
        w = random_sparse(rng, 9, 6, 0.4)
        weights = PoissonPMF(lam=1.0).weights(5)
        block = rng.standard_normal((9, 4))
        workspace = MatrixFreeOperator(w, weights)  # default policy
        legacy = MatrixFreeOperator(w, weights, policy=DtypePolicy.legacy())
        np.testing.assert_array_equal(workspace.matmat(block), legacy.matmat(block))
        vector = rng.standard_normal(9)
        np.testing.assert_array_equal(workspace.matvec(vector), legacy.matvec(vector))

    def test_proximity_operator_workspace_vs_legacy(self, rng):
        w = random_sparse(rng, 8, 5, 0.4)
        weights = PoissonPMF(lam=1.0).weights(4)
        workspace = ProximityOperator(w, weights)
        legacy = ProximityOperator(w, weights, policy=DtypePolicy.legacy())
        block = rng.standard_normal((5, 3))
        np.testing.assert_array_equal(workspace @ block, legacy @ block)
        tall = rng.standard_normal((8, 3))
        np.testing.assert_array_equal(workspace.T @ tall, legacy.T @ tall)
        wide = rng.standard_normal((3, 8))
        np.testing.assert_array_equal(wide @ workspace, wide @ legacy)

    def test_randomized_svd_workspace_vs_legacy(self, rng):
        # Same rng seed -> same Gaussian start -> bit-identical factors.
        w = random_sparse(rng, 12, 8, 0.4)
        for strategy in ("power", "block_krylov"):
            a = randomized_svd(
                w, 4, strategy=strategy, rng=np.random.default_rng(7)
            )
            b = randomized_svd(
                w,
                4,
                strategy=strategy,
                rng=np.random.default_rng(7),
                policy=DtypePolicy.legacy(),
            )
            np.testing.assert_array_equal(a.u, b.u)
            np.testing.assert_array_equal(a.s, b.s)
            np.testing.assert_array_equal(a.vt, b.vt)


class TestObsCounterDifferential:
    """The kernel refactor must not change operation accounting."""

    def _counts(self, policy):
        graph = toy_graph()
        with obs.collect() as collector:
            gebe_poisson(8, seed=0, max_iterations=5, dtype_policy=policy).fit(graph)
            GEBEPoisson(8, seed=0, dtype_policy=policy).fit(graph)
        report = collector.report(method="differential", wall_seconds=0.0)
        return report.ops

    def test_matvec_counts_identical_across_policies(self):
        reference = self._counts(DtypePolicy.legacy())
        for policy in (DtypePolicy(), DtypePolicy.float32(), DtypePolicy(block_cols=3)):
            candidate = self._counts(policy)
            assert candidate["sparse_matvecs"] == reference["sparse_matvecs"]
            assert candidate["flops"] == reference["flops"]
            assert candidate["qr_factorizations"] == reference["qr_factorizations"]


class TestFloat32Policy:
    def test_embeddings_close_to_float64_on_toy_graph(self):
        graph = toy_graph()
        exact = GEBEPoisson(8, seed=0).fit(graph)
        fast = GEBEPoisson(8, seed=0, dtype_policy=DtypePolicy.float32()).fit(graph)
        # Embeddings are sign/rotation-stable here because both runs share
        # the rng; float32 compute with float64 QR/Rayleigh-Ritz keeps ~6
        # significant digits.
        np.testing.assert_allclose(fast.u, exact.u, rtol=0, atol=1e-4)
        np.testing.assert_allclose(fast.v, exact.v, rtol=0, atol=1e-4)
        assert fast.u.dtype == np.float64  # results are always float64

    def test_gebe_float32_close_on_toy_graph(self):
        graph = toy_graph()
        exact = gebe_poisson(8, seed=0, max_iterations=10).fit(graph)
        fast = gebe_poisson(
            8, seed=0, max_iterations=10, dtype_policy=DtypePolicy.float32()
        ).fit(graph)
        np.testing.assert_allclose(fast.u, exact.u, rtol=0, atol=1e-4)

    def test_metadata_records_policy(self):
        graph = toy_graph()
        result = GEBEPoisson(4, seed=0, dtype_policy=DtypePolicy.float32()).fit(graph)
        assert result.metadata["dtype_policy"] == "float32/workspace"
        default = GEBEPoisson(4, seed=0).fit(graph)
        assert default.metadata["dtype_policy"] == "float64/workspace"
