"""Unit tests for Krylov subspace iteration."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import PoissonPMF
from repro.linalg import (
    MatrixFreeOperator,
    random_semi_unitary,
    subspace_distance,
    subspace_iteration,
)


def random_psd(n: int, rng: np.random.Generator, decay: float = 0.7) -> np.ndarray:
    """A random symmetric PSD matrix with geometrically decaying spectrum."""
    q, _ = np.linalg.qr(rng.standard_normal((n, n)))
    values = decay ** np.arange(n) * 10.0
    return (q * values) @ q.T


class TestSubspaceIteration:
    def test_recovers_top_eigenvalues(self, rng):
        matrix = random_psd(20, rng)
        reference = np.sort(np.linalg.eigvalsh(matrix))[::-1]
        result = subspace_iteration(matrix, 20, 4, rng=rng, max_iterations=500)
        np.testing.assert_allclose(result.values, reference[:4], rtol=1e-6)

    def test_recovers_top_eigenvectors(self, rng):
        matrix = random_psd(15, rng)
        result = subspace_iteration(matrix, 15, 3, rng=rng, max_iterations=500)
        # Each returned vector must satisfy H z = lambda z.
        for i in range(3):
            z = result.vectors[:, i]
            residual = matrix @ z - result.values[i] * z
            assert np.linalg.norm(residual) < 1e-5

    def test_converged_flag(self, rng):
        matrix = random_psd(10, rng)
        result = subspace_iteration(matrix, 10, 2, rng=rng, max_iterations=1000)
        assert result.converged
        assert result.iterations < 1000

    def test_budget_exhaustion_reported(self, rng):
        matrix = random_psd(30, rng, decay=0.999)  # tiny gaps: slow convergence
        result = subspace_iteration(
            matrix, 30, 3, rng=rng, max_iterations=2, tolerance=1e-14
        )
        assert not result.converged
        assert result.iterations == 2

    def test_values_sorted_descending(self, rng):
        matrix = random_psd(12, rng)
        result = subspace_iteration(matrix, 12, 5, rng=rng)
        assert (np.diff(result.values) <= 1e-12).all()

    def test_vectors_orthonormal(self, rng):
        matrix = random_psd(12, rng)
        result = subspace_iteration(matrix, 12, 4, rng=rng)
        gram = result.vectors.T @ result.vectors
        np.testing.assert_allclose(gram, np.eye(4), atol=1e-8)

    def test_matrix_free_operator_agrees_with_dense(self, rng):
        dense = rng.random((10, 6))
        dense[dense < 0.5] = 0.0
        w = sp.csr_matrix(dense)
        weights = PoissonPMF(lam=1.0).weights(4)
        operator = MatrixFreeOperator(w, weights)
        h = operator.to_dense()
        start = random_semi_unitary(10, 3, rng=np.random.default_rng(0))
        via_operator = subspace_iteration(operator, 10, 3, initial=start)
        via_dense = subspace_iteration(h, 10, 3, initial=start.copy())
        np.testing.assert_allclose(
            via_operator.values, via_dense.values, rtol=1e-8
        )

    def test_explicit_initial_block(self, rng):
        matrix = random_psd(8, rng)
        start = random_semi_unitary(8, 2, rng=rng)
        result = subspace_iteration(matrix, 8, 2, initial=start)
        assert result.values.shape == (2,)

    def test_initial_shape_validated(self, rng):
        matrix = random_psd(8, rng)
        with pytest.raises(ValueError, match="initial"):
            subspace_iteration(matrix, 8, 2, initial=np.zeros((8, 3)))

    def test_k_bounds_validated(self, rng):
        matrix = random_psd(5, rng)
        with pytest.raises(ValueError):
            subspace_iteration(matrix, 5, 0)
        with pytest.raises(ValueError):
            subspace_iteration(matrix, 5, 6)

    def test_callable_operator(self, rng):
        matrix = random_psd(9, rng)
        result = subspace_iteration(lambda b: matrix @ b, 9, 2, rng=rng)
        reference = np.sort(np.linalg.eigvalsh(matrix))[::-1][:2]
        np.testing.assert_allclose(result.values, reference, rtol=1e-5)

    def test_unsupported_operator_type(self):
        with pytest.raises(TypeError):
            subspace_iteration("not an operator", 5, 2)


class TestSubspaceDistance:
    def test_identical_spaces(self, rng):
        z = random_semi_unitary(10, 3, rng=rng)
        assert subspace_distance(z, z) == pytest.approx(0.0, abs=1e-6)

    def test_sign_flips_ignored(self, rng):
        z = random_semi_unitary(10, 3, rng=rng)
        assert subspace_distance(z, -z) == pytest.approx(0.0, abs=1e-6)

    def test_orthogonal_spaces(self):
        z1 = np.eye(6)[:, :2]
        z2 = np.eye(6)[:, 2:4]
        assert subspace_distance(z1, z2) == pytest.approx(np.sqrt(2))
