"""Unit tests for the matrix-free operators."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import PoissonPMF
from repro.linalg import MatrixFreeOperator, gram_apply, pmf_weighted_apply
from repro.linalg.ops import ProximityOperator


@pytest.fixture
def w_small(rng):
    dense = rng.random((12, 8))
    dense[dense < 0.6] = 0.0
    return sp.csr_matrix(dense)


class TestGramApply:
    def test_matches_dense(self, w_small, rng):
        block = rng.standard_normal((12, 3))
        expected = (w_small @ w_small.T) @ block
        np.testing.assert_allclose(gram_apply(w_small, block), expected)

    def test_identity_block(self, w_small):
        gram = gram_apply(w_small, np.eye(12))
        np.testing.assert_allclose(gram, (w_small @ w_small.T).toarray())


class TestPmfWeightedApply:
    def test_matches_dense_series(self, w_small, rng):
        weights = PoissonPMF(lam=1.5).weights(4)
        block = rng.standard_normal((12, 2))
        gram = (w_small @ w_small.T).toarray()
        expected = sum(
            weights[ell] * np.linalg.matrix_power(gram, ell) @ block
            for ell in range(5)
        )
        np.testing.assert_allclose(
            pmf_weighted_apply(w_small, block, weights), expected
        )

    def test_single_weight_is_scaling(self, w_small, rng):
        block = rng.standard_normal((12, 2))
        np.testing.assert_allclose(
            pmf_weighted_apply(w_small, block, [2.5]), 2.5 * block
        )

    def test_rejects_empty_weights(self, w_small):
        with pytest.raises(ValueError):
            pmf_weighted_apply(w_small, np.zeros((12, 1)), [])

    def test_does_not_mutate_input(self, w_small, rng):
        block = rng.standard_normal((12, 2))
        copy = block.copy()
        pmf_weighted_apply(w_small, block, [0.5, 0.5])
        np.testing.assert_array_equal(block, copy)


class TestMatrixFreeOperator:
    def test_shape(self, w_small):
        operator = MatrixFreeOperator(w_small, [1.0, 0.5])
        assert operator.shape == (12, 12)

    def test_to_dense_symmetric_psd(self, w_small):
        operator = MatrixFreeOperator(w_small, PoissonPMF(lam=1.0).weights(5))
        h = operator.to_dense()
        np.testing.assert_allclose(h, h.T, atol=1e-12)
        eigenvalues = np.linalg.eigvalsh(h)
        assert eigenvalues.min() > -1e-10

    def test_matvec_matches_matmat(self, w_small, rng):
        operator = MatrixFreeOperator(w_small, [0.3, 0.7])
        vector = rng.standard_normal(12)
        np.testing.assert_allclose(
            operator.matvec(vector),
            operator.matmat(vector.reshape(-1, 1)).ravel(),
        )

    def test_wrong_row_count_rejected(self, w_small):
        operator = MatrixFreeOperator(w_small, [1.0])
        with pytest.raises(ValueError, match="rows"):
            operator.matmat(np.zeros((5, 2)))

    def test_callable_alias(self, w_small, rng):
        operator = MatrixFreeOperator(w_small, [1.0, 1.0])
        block = rng.standard_normal((12, 2))
        np.testing.assert_allclose(operator(block), operator.matmat(block))


class TestProximityOperator:
    def test_shape(self, w_small):
        proximity = ProximityOperator(w_small, [1.0, 0.5])
        assert proximity.shape == (12, 8)
        assert proximity.T.shape == (8, 12)

    def test_matmul_matches_dense(self, w_small, rng):
        weights = PoissonPMF(lam=1.0).weights(3)
        proximity = ProximityOperator(w_small, weights)
        h = MatrixFreeOperator(w_small, weights).to_dense()
        p_dense = h @ w_small.toarray()
        block = rng.standard_normal((8, 2))
        np.testing.assert_allclose(proximity @ block, p_dense @ block)

    def test_transpose_matmul(self, w_small, rng):
        weights = [0.5, 0.25, 0.25]
        proximity = ProximityOperator(w_small, weights)
        p_dense = proximity.to_dense()
        block = rng.standard_normal((12, 3))
        np.testing.assert_allclose(proximity.T @ block, p_dense.T @ block)

    def test_rmatmul_from_ndarray(self, w_small, rng):
        weights = [0.5, 0.5]
        proximity = ProximityOperator(w_small, weights)
        p_dense = proximity.to_dense()
        left = rng.standard_normal((4, 12))
        np.testing.assert_allclose(left @ proximity, left @ p_dense)
