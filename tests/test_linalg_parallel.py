"""Tests for the parallel kernel executor (``repro.linalg.parallel``).

The headline invariants, per the determinism contract:

* **bit-identity across thread counts** — ``W @ X``, ``W.T @ X``,
  ``gram_apply`` and ``pmf_apply`` produce byte-for-byte identical results
  for ``n_threads in {1, 2, 4}``, in float64 *and* float32 (hypothesis
  property tests);
* **determinism across repeated runs** at a fixed thread count;
* **obs counters are unchanged by parallelism** — operations are counted
  once per logical apply, never per shard, so every thread count yields
  identical `sparse_matvecs` / `flops`;
* the partitionings are exact covers: row shards tile ``[0, n_rows)``,
  column shards tile ``[0, cols)``, each exactly once.
"""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.core import PoissonPMF
from repro.linalg import (
    DtypePolicy,
    ExecPolicy,
    GramKernel,
    ParallelExecutor,
    SparseKernel,
    gram_apply,
    pmf_weighted_apply,
)
from repro.linalg.parallel import column_shards, row_shards

THREAD_COUNTS = (1, 2, 4)


def _policy(n_threads: int, compute: str = "float64") -> DtypePolicy:
    """A policy pinned to ``n_threads`` with the auto-tuner disabled,
    so even test-sized applies exercise the sharded path."""
    return DtypePolicy(
        compute=compute,
        exec_policy=ExecPolicy(n_threads=n_threads, serial_threshold=0),
    )


def random_sparse(rng: np.random.Generator, m: int, n: int, density: float):
    mask = rng.random((m, n)) < density
    if not mask.any():
        mask[rng.integers(m), rng.integers(n)] = True
    dense = np.where(mask, rng.random((m, n)), 0.0)
    return sp.csr_matrix(dense)


@st.composite
def sparse_and_block(draw):
    """(W, V-side block, U-side block) with varied shapes and densities."""
    seed = draw(st.integers(0, 2**31 - 1))
    m = draw(st.integers(1, 16))
    n = draw(st.integers(1, 16))
    k = draw(st.integers(1, 9))
    density = draw(st.floats(0.05, 0.9))
    rng = np.random.default_rng(seed)
    w = random_sparse(rng, m, n, density)
    v_block = rng.standard_normal((n, k))
    u_block = rng.standard_normal((m, k))
    return w, v_block, u_block


class TestExecPolicy:
    def test_defaults(self):
        policy = ExecPolicy()
        assert policy.n_threads == 1
        assert policy.serial_threshold > 0

    def test_serial_constructor(self):
        assert ExecPolicy.serial().n_threads == 1

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError, match="n_threads"):
            ExecPolicy(n_threads=0)
        with pytest.raises(ValueError, match="serial_threshold"):
            ExecPolicy(serial_threshold=-1)

    def test_from_env_reads_thread_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_THREADS", "3")
        monkeypatch.setenv("REPRO_SERIAL_THRESHOLD", "123")
        policy = ExecPolicy.from_env()
        assert policy.n_threads == 3
        assert policy.serial_threshold == 123

    def test_from_env_defaults_to_cpu_count(self, monkeypatch):
        import os

        monkeypatch.delenv("REPRO_NUM_THREADS", raising=False)
        monkeypatch.delenv("REPRO_SERIAL_THRESHOLD", raising=False)
        assert ExecPolicy.from_env().n_threads == (os.cpu_count() or 1)

    def test_from_env_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_THREADS", "lots")
        with pytest.raises(ValueError, match="REPRO_NUM_THREADS"):
            ExecPolicy.from_env()
        monkeypatch.setenv("REPRO_NUM_THREADS", "0")
        with pytest.raises(ValueError, match="REPRO_NUM_THREADS"):
            ExecPolicy.from_env()

    def test_shards_for_auto_tune(self):
        policy = ExecPolicy(n_threads=4, serial_threshold=1000)
        assert policy.shards_for(999, limit=100) == 1  # below threshold
        assert policy.shards_for(1000, limit=100) == 4
        assert policy.shards_for(1000, limit=2) == 2  # grain-limited
        assert policy.shards_for(1000, limit=1) == 1
        assert ExecPolicy(n_threads=1).shards_for(10**9, limit=100) == 1

    def test_dtype_policy_with_threads(self):
        policy = DtypePolicy().with_threads(4)
        assert policy.n_threads == 4
        # The slug is thread-free: same policy label at every thread count.
        assert policy.describe() == DtypePolicy().with_threads(1).describe()


class TestShardPartitionings:
    @settings(max_examples=60, deadline=None)
    @given(sparse_and_block(), st.integers(1, 8))
    def test_row_shards_tile_the_row_range(self, data, n_shards):
        w, _, _ = data
        shards = row_shards(w.indptr, n_shards)
        assert shards[0][0] == 0 and shards[-1][1] == w.shape[0]
        for (_, hi), (lo, _) in zip(shards[:-1], shards[1:]):
            assert hi == lo  # contiguous, no overlap, no gap
        assert all(hi > lo for lo, hi in shards)
        assert len(shards) <= min(n_shards, w.shape[0])

    @settings(max_examples=60, deadline=None)
    @given(st.integers(1, 64), st.integers(1, 8))
    def test_column_shards_tile_the_column_range(self, cols, n_shards):
        shards = column_shards(cols, n_shards)
        assert shards[0][0] == 0 and shards[-1][1] == cols
        for (_, hi), (lo, _) in zip(shards[:-1], shards[1:]):
            assert hi == lo
        widths = [hi - lo for lo, hi in shards]
        assert max(widths) - min(widths) <= 1  # balanced

    def test_row_shards_balance_nnz(self):
        # One dense row among empty ones: the heavy row is one shard.
        w = sp.csr_matrix(np.vstack([np.ones((1, 50)), np.zeros((7, 50))]))
        shards = row_shards(w.indptr, 4)
        nnz_per = [w.indptr[hi] - w.indptr[lo] for lo, hi in shards]
        assert max(nnz_per) == w.nnz  # all mass in one shard, others empty rows

    def test_empty_matrix_single_shard(self):
        w = sp.csr_matrix((3, 4))
        assert row_shards(w.indptr, 4) == [(0, 3)]


class TestParallelExecutor:
    def test_single_task_runs_inline(self):
        import threading

        ran_on = []
        executor = ParallelExecutor(ExecPolicy(n_threads=4))
        executor.run([lambda: ran_on.append(threading.current_thread().name)])
        assert ran_on == [threading.current_thread().name]

    def test_worker_exception_propagates(self):
        executor = ParallelExecutor(ExecPolicy(n_threads=2))

        def boom():
            raise RuntimeError("shard failed")

        with pytest.raises(RuntimeError, match="shard failed"):
            executor.run([boom, lambda: None])

    def test_all_tasks_complete(self):
        executor = ParallelExecutor(ExecPolicy(n_threads=4))
        hits = [0] * 8
        executor.run([lambda i=i: hits.__setitem__(i, 1) for i in range(8)])
        assert hits == [1] * 8


class TestBitIdentityAcrossThreads:
    """Parallelism must never change results — not even the last bit."""

    @settings(max_examples=40, deadline=None)
    @given(sparse_and_block())
    def test_matmul(self, data):
        w, v_block, _ = data
        expected = SparseKernel(w, _policy(1)).matmul(v_block)
        for n_threads in THREAD_COUNTS:
            kernel = SparseKernel(w, _policy(n_threads))
            for _ in range(2):  # repeated runs at a fixed thread count
                np.testing.assert_array_equal(
                    kernel.matmul(v_block, reuse=True), expected
                )

    @settings(max_examples=40, deadline=None)
    @given(sparse_and_block())
    def test_t_matmul(self, data):
        w, _, u_block = data
        expected = SparseKernel(w, _policy(1)).t_matmul(u_block)
        for n_threads in THREAD_COUNTS:
            kernel = SparseKernel(w, _policy(n_threads))
            for _ in range(2):
                np.testing.assert_array_equal(
                    kernel.t_matmul(u_block, reuse=True), expected
                )

    @settings(max_examples=40, deadline=None)
    @given(sparse_and_block())
    def test_gram_apply(self, data):
        w, _, u_block = data
        expected = gram_apply(w, u_block)
        for n_threads in THREAD_COUNTS:
            np.testing.assert_array_equal(
                GramKernel(w, _policy(n_threads)).gram_apply(u_block), expected
            )

    @settings(max_examples=40, deadline=None)
    @given(sparse_and_block(), st.integers(0, 5))
    def test_pmf_apply(self, data, tau):
        w, _, u_block = data
        weights = PoissonPMF(lam=1.0).weights(tau)
        expected = pmf_weighted_apply(w, u_block, weights)
        for n_threads in THREAD_COUNTS:
            np.testing.assert_array_equal(
                GramKernel(w, _policy(n_threads)).pmf_apply(u_block, weights),
                expected,
            )

    @settings(max_examples=25, deadline=None)
    @given(sparse_and_block())
    def test_float32_bit_identical_across_threads(self, data):
        # float32 differs from float64 but must still be deterministic and
        # partition-independent: identical bytes at every thread count.
        w, v_block, u_block = data
        weights = PoissonPMF(lam=1.0).weights(3)
        serial = _policy(1, compute="float32")
        expected_mm = SparseKernel(w, serial).matmul(v_block)
        expected_pmf = GramKernel(w, serial).pmf_apply(u_block, weights)
        for n_threads in THREAD_COUNTS[1:]:
            policy = _policy(n_threads, compute="float32")
            got = SparseKernel(w, policy).matmul(v_block)
            assert got.dtype == np.float32
            np.testing.assert_array_equal(got, expected_mm)
            np.testing.assert_array_equal(
                GramKernel(w, policy).pmf_apply(u_block, weights), expected_pmf
            )

    def test_chunked_and_sharded_compose(self, rng):
        # block_cols chunking and column sharding stack without changing
        # results.
        w = random_sparse(rng, 14, 9, 0.4)
        block = rng.standard_normal((14, 11))
        weights = PoissonPMF(lam=1.0).weights(4)
        expected = pmf_weighted_apply(w, block, weights)
        for block_cols in (1, 2, 3):
            policy = DtypePolicy(
                block_cols=block_cols,
                exec_policy=ExecPolicy(n_threads=4, serial_threshold=0),
            )
            np.testing.assert_array_equal(
                GramKernel(w, policy).pmf_apply(block, weights), expected
            )


class TestObsCountsThreadInvariant:
    """Operations are counted once per logical apply, never per shard."""

    def _counts(self, n_threads):
        rng = np.random.default_rng(7)
        w = random_sparse(rng, 20, 12, 0.3)
        block = rng.standard_normal((20, 6))
        v_block = rng.standard_normal((12, 6))
        weights = PoissonPMF(lam=1.0).weights(4)
        policy = _policy(n_threads)
        with obs.collect() as collector:
            SparseKernel(w, policy).matmul(v_block)
            SparseKernel(w, policy).t_matmul(block)
            gram = GramKernel(w, policy)
            gram.gram_apply(block)
            gram.pmf_apply(block, weights)
        return collector.report(method="counts", wall_seconds=0.0).ops

    def test_counts_identical_across_thread_counts(self):
        reference = self._counts(1)
        assert reference["sparse_matvecs"] > 0
        for n_threads in THREAD_COUNTS[1:]:
            assert self._counts(n_threads) == reference


class TestThreadReporting:
    def test_threads_used_reflects_sharding(self, rng):
        w = random_sparse(rng, 16, 10, 0.5)
        block = rng.standard_normal((16, 8))
        gram = GramKernel(w, _policy(4))
        gram.gram_apply(block)
        assert gram.threads_used > 1

    def test_serial_threshold_keeps_toy_applies_serial(self, rng):
        w = random_sparse(rng, 16, 10, 0.5)
        block = rng.standard_normal((16, 8))
        policy = DtypePolicy(
            exec_policy=ExecPolicy(n_threads=4)  # default (large) threshold
        )
        gram = GramKernel(w, policy)
        gram.gram_apply(block)
        assert gram.threads_used == 1

    def test_collector_records_threads_and_workspace(self, rng):
        w = random_sparse(rng, 16, 10, 0.5)
        block = rng.standard_normal((16, 8))
        with obs.collect() as collector:
            gram = GramKernel(w, _policy(4))
            gram.pmf_apply(block, PoissonPMF(lam=1.0).weights(3))
        report = collector.report(method="reporting", wall_seconds=0.0)
        assert report.threads > 1
        assert report.memory["workspace_bytes"] == gram.workspace_bytes()
        assert report.memory["workspace_bytes"] > 0
        assert f"{report.threads} thread" in report.summary()

    def test_workspace_sums_per_slot_pools(self, rng):
        w = random_sparse(rng, 16, 10, 0.5)
        block = rng.standard_normal((16, 8))
        serial = GramKernel(w, _policy(1))
        serial.gram_apply(block)
        sharded = GramKernel(w, _policy(4))
        sharded.gram_apply(block)
        # Per-thread hop buffers make the sharded pool strictly bigger.
        assert sharded.workspace_bytes() > serial.workspace_bytes()
