"""Unit tests for QR utilities."""

import numpy as np
import pytest

from repro.linalg import is_semi_unitary, random_semi_unitary, thin_qr


class TestThinQR:
    def test_reconstruction(self, rng):
        block = rng.standard_normal((10, 4))
        q, r = thin_qr(block)
        np.testing.assert_allclose(q @ r, block, atol=1e-10)

    def test_q_orthonormal(self, rng):
        q, _ = thin_qr(rng.standard_normal((20, 6)))
        np.testing.assert_allclose(q.T @ q, np.eye(6), atol=1e-10)

    def test_r_upper_triangular(self, rng):
        _, r = thin_qr(rng.standard_normal((8, 5)))
        np.testing.assert_allclose(r, np.triu(r), atol=1e-12)

    def test_r_diagonal_non_negative(self, rng):
        for _ in range(5):
            _, r = thin_qr(rng.standard_normal((9, 4)))
            assert (np.diagonal(r) >= 0).all()

    def test_deterministic_sign_convention(self, rng):
        block = rng.standard_normal((10, 3))
        q1, r1 = thin_qr(block)
        q2, r2 = thin_qr(-block)
        # Same column space; R diagonals agree by the sign fix.
        np.testing.assert_allclose(
            np.abs(np.diagonal(r1)), np.abs(np.diagonal(r2)), atol=1e-10
        )

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            thin_qr(np.zeros(5))


class TestRandomSemiUnitary:
    def test_is_semi_unitary(self, rng):
        z = random_semi_unitary(15, 5, rng=rng)
        assert is_semi_unitary(z)

    def test_shape(self, rng):
        assert random_semi_unitary(7, 3, rng=rng).shape == (7, 3)

    def test_square_case(self, rng):
        z = random_semi_unitary(4, 4, rng=rng)
        np.testing.assert_allclose(z @ z.T, np.eye(4), atol=1e-10)

    def test_reproducible(self):
        a = random_semi_unitary(6, 2, rng=np.random.default_rng(1))
        b = random_semi_unitary(6, 2, rng=np.random.default_rng(1))
        np.testing.assert_array_equal(a, b)

    def test_invalid_sizes(self, rng):
        with pytest.raises(ValueError):
            random_semi_unitary(3, 5, rng=rng)
        with pytest.raises(ValueError):
            random_semi_unitary(3, 0, rng=rng)


class TestIsSemiUnitary:
    def test_detects_non_orthonormal(self, rng):
        block = rng.standard_normal((8, 3))
        assert not is_semi_unitary(block)

    def test_tolerance(self, rng):
        z = random_semi_unitary(10, 4, rng=rng)
        perturbed = z + 1e-6
        assert not is_semi_unitary(perturbed, tol=1e-9)
        assert is_semi_unitary(perturbed, tol=1e-3)
