"""Unit tests for the randomized SVD."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.linalg import exact_svd, krylov_iteration_count, randomized_svd


@pytest.fixture
def low_rank_matrix(rng):
    """A 30x20 matrix with sharply decaying spectrum (easy to approximate)."""
    u, _ = np.linalg.qr(rng.standard_normal((30, 10)))
    v, _ = np.linalg.qr(rng.standard_normal((20, 10)))
    s = 2.0 ** -np.arange(10) * 50.0
    return (u * s) @ v.T


class TestExactSVD:
    def test_reconstruction_full_rank(self, rng):
        matrix = rng.standard_normal((6, 4))
        result = exact_svd(matrix, 4)
        np.testing.assert_allclose(result.reconstruct(), matrix, atol=1e-10)

    def test_accepts_sparse(self, rng):
        dense = rng.random((8, 5))
        result = exact_svd(sp.csr_matrix(dense), 3)
        assert result.u.shape == (8, 3)
        assert result.rank == 3


class TestRandomizedSVD:
    @pytest.mark.parametrize("strategy", ["block_krylov", "power"])
    def test_close_to_exact(self, low_rank_matrix, strategy, rng):
        k = 5
        exact = exact_svd(low_rank_matrix, k)
        approx = randomized_svd(
            low_rank_matrix, k, epsilon=0.05, strategy=strategy, rng=rng
        )
        np.testing.assert_allclose(approx.s, exact.s, rtol=1e-4)
        # Compare projectors (vectors are sign/rotation ambiguous).
        exact_proj = exact.u @ exact.u.T
        approx_proj = approx.u @ approx.u.T
        np.testing.assert_allclose(approx_proj, exact_proj, atol=1e-3)

    def test_sparse_input(self, rng):
        dense = rng.random((40, 25))
        dense[dense < 0.7] = 0.0
        sparse = sp.csr_matrix(dense)
        approx = randomized_svd(sparse, 4, rng=rng)
        exact = exact_svd(sparse, 4)
        np.testing.assert_allclose(approx.s, exact.s, rtol=1e-3)

    def test_singular_values_sorted_non_negative(self, low_rank_matrix, rng):
        result = randomized_svd(low_rank_matrix, 6, rng=rng)
        assert (result.s >= 0).all()
        assert (np.diff(result.s) <= 1e-12).all()

    def test_orthonormal_factors(self, low_rank_matrix, rng):
        result = randomized_svd(low_rank_matrix, 5, rng=rng)
        np.testing.assert_allclose(
            result.u.T @ result.u, np.eye(5), atol=1e-8
        )
        np.testing.assert_allclose(
            result.vt @ result.vt.T, np.eye(5), atol=1e-8
        )

    def test_smaller_epsilon_not_worse(self, rng):
        # A harder spectrum: slow decay.
        matrix = rng.standard_normal((60, 40))
        k = 8
        exact = exact_svd(matrix, k)
        loose = randomized_svd(matrix, k, epsilon=0.9, iterations=1,
                               rng=np.random.default_rng(0))
        tight = randomized_svd(matrix, k, epsilon=0.05,
                               rng=np.random.default_rng(0))
        loose_err = np.abs(loose.s - exact.s).max()
        tight_err = np.abs(tight.s - exact.s).max()
        assert tight_err <= loose_err + 1e-12

    def test_reproducible_with_seed(self, low_rank_matrix):
        a = randomized_svd(low_rank_matrix, 3, rng=np.random.default_rng(9))
        b = randomized_svd(low_rank_matrix, 3, rng=np.random.default_rng(9))
        np.testing.assert_array_equal(a.u, b.u)
        np.testing.assert_array_equal(a.s, b.s)

    def test_explicit_iterations_override(self, low_rank_matrix, rng):
        result = randomized_svd(low_rank_matrix, 3, iterations=1, rng=rng)
        assert result.rank == 3

    def test_k_validation(self, low_rank_matrix, rng):
        with pytest.raises(ValueError):
            randomized_svd(low_rank_matrix, 0, rng=rng)
        with pytest.raises(ValueError):
            randomized_svd(low_rank_matrix, 21, rng=rng)

    def test_strategy_validation(self, low_rank_matrix, rng):
        with pytest.raises(ValueError, match="strategy"):
            randomized_svd(low_rank_matrix, 2, strategy="magic", rng=rng)

    def test_full_rank_k(self, rng):
        matrix = rng.standard_normal((10, 6))
        result = randomized_svd(matrix, 6, epsilon=0.01, rng=rng)
        exact = exact_svd(matrix, 6)
        np.testing.assert_allclose(result.s, exact.s, rtol=1e-5)


class TestIterationCount:
    def test_monotone_in_epsilon(self):
        assert krylov_iteration_count(1000, 0.01) >= krylov_iteration_count(
            1000, 0.5
        )

    def test_monotone_in_n(self):
        assert krylov_iteration_count(10 ** 6, 0.1) >= krylov_iteration_count(
            100, 0.1
        )

    def test_floor_of_two(self):
        assert krylov_iteration_count(2, 100.0) == 2

    def test_rejects_non_positive_epsilon(self):
        with pytest.raises(ValueError):
            krylov_iteration_count(100, 0.0)
