"""Unit tests for MHS/MHP — including the paper's own Table 2 numbers."""

import numpy as np
import pytest

from repro.core import (
    GeometricPMF,
    PoissonPMF,
    UniformPMF,
    h_matrix,
    h_matrix_v_side,
    mhp,
    mhp_matrix,
    mhs,
    mhs_matrix,
    mhs_matrix_v_side,
    path_weight_matrix,
)
from repro.datasets import figure1_graph, two_cliques
from repro.graph import BipartiteGraph


class TestPathWeightMatrix:
    def test_ell_zero_is_identity(self, figure1):
        np.testing.assert_array_equal(path_weight_matrix(figure1, 0), np.eye(4))

    def test_ell_one_counts_two_hop_paths(self):
        # u0 - v0 - u1: one length-2 path of weight 1.
        graph = BipartiteGraph.from_dense([[1.0], [1.0]])
        q2 = path_weight_matrix(graph, 1)
        assert q2[0, 1] == pytest.approx(1.0)
        assert q2[0, 0] == pytest.approx(1.0)

    def test_path_weights_multiply(self):
        graph = BipartiteGraph.from_dense([[2.0], [3.0]])
        q2 = path_weight_matrix(graph, 1)
        assert q2[0, 1] == pytest.approx(6.0)  # 2 * 3

    def test_power_property(self, figure1):
        q2 = path_weight_matrix(figure1, 1)
        q4 = path_weight_matrix(figure1, 2)
        np.testing.assert_allclose(q4, q2 @ q2)

    def test_negative_ell_rejected(self, figure1):
        with pytest.raises(ValueError):
            path_weight_matrix(figure1, -1)


class TestTable2:
    """The paper's Table 2: H on Figure 1 with Poisson(lambda=2)."""

    @pytest.fixture
    def h(self, figure1):
        return h_matrix(figure1, PoissonPMF(lam=2.0), tau=80)

    def test_diagonal_u1(self, h):
        assert h[0, 0] == pytest.approx(3.641, abs=2e-3)

    def test_u1_u2(self, h):
        assert h[0, 1] == pytest.approx(3.506, abs=2e-3)

    def test_u1_u4(self, h):
        assert h[0, 3] == pytest.approx(4.064, abs=2e-3)

    def test_diagonal_u4(self, h):
        assert h[3, 3] == pytest.approx(5.429, abs=2e-3)

    def test_symmetry(self, h):
        np.testing.assert_allclose(h, h.T)

    def test_counterintuitive_raw_h(self, h):
        # The motivating observation: raw H ranks (u2, u4) above (u2, u1)
        # even though u1/u2 share all neighbors.
        assert h[1, 3] > h[1, 0]

    def test_mhs_fixes_ordering(self, figure1):
        s = mhs_matrix(figure1, PoissonPMF(lam=2.0), tau=80)
        # After Eq. (4) normalization the intuitive ordering holds; the
        # running example quotes s(u2,u4) = 0.914 (the in-text 0.981 for
        # s(u1,u2) is inconsistent with the paper's own Table 2 — Eq. (4)
        # with the published H values gives 3.506/3.641 = 0.963).
        assert s[0, 1] > s[1, 3]
        assert s[1, 3] == pytest.approx(0.914, abs=2e-3)
        assert s[0, 1] == pytest.approx(0.963, abs=2e-3)


class TestLemma21:
    """MHS properties proved in Lemma 2.1."""

    @pytest.mark.parametrize(
        "pmf",
        [PoissonPMF(lam=1.0), GeometricPMF(alpha=0.5), UniformPMF(tau=10)],
    )
    def test_bounded_zero_one(self, figure1, pmf):
        s = mhs_matrix(figure1, pmf, tau=10)
        assert s.min() >= -1e-12
        assert s.max() <= 1.0 + 1e-12

    def test_unit_diagonal(self, figure1):
        s = mhs_matrix(figure1, PoissonPMF(lam=1.0), tau=10)
        np.testing.assert_allclose(np.diagonal(s), 1.0)

    def test_zero_across_components(self):
        graph = two_cliques(3)
        s = mhs_matrix(graph, PoissonPMF(lam=1.0), tau=12)
        np.testing.assert_allclose(s[:3, 3:], 0.0, atol=1e-12)

    def test_isolated_node(self):
        dense = np.array([[1.0, 0.0], [0.0, 0.0]])
        graph = BipartiteGraph.from_dense(dense)
        s = mhs_matrix(graph, PoissonPMF(lam=1.0), tau=5)
        assert s[1, 1] == 1.0  # Lemma 2.1(ii) pins the diagonal
        assert s[0, 1] == 0.0


class TestHMatrix:
    def test_tau_zero_is_scaled_identity(self, figure1):
        pmf = PoissonPMF(lam=1.0)
        h = h_matrix(figure1, pmf, tau=0)
        np.testing.assert_allclose(h, pmf.omega(0) * np.eye(4))

    def test_increasing_in_tau(self, figure1):
        pmf = PoissonPMF(lam=2.0)
        h5 = h_matrix(figure1, pmf, tau=5)
        h10 = h_matrix(figure1, pmf, tau=10)
        assert (h10 - h5).min() >= -1e-12

    def test_v_side_dimensions(self, figure1):
        hv = h_matrix_v_side(figure1, PoissonPMF(lam=1.0), tau=5)
        assert hv.shape == (5, 5)

    def test_v_side_equals_transpose_construction(self, random_graph):
        pmf = GeometricPMF(alpha=0.4)
        hv = h_matrix_v_side(random_graph, pmf, tau=4)
        expected = h_matrix(random_graph.transpose(), pmf, tau=4)
        np.testing.assert_allclose(hv, expected)

    def test_negative_tau_rejected(self, figure1):
        with pytest.raises(ValueError):
            h_matrix(figure1, PoissonPMF(lam=1.0), tau=-1)


class TestMHP:
    def test_equals_h_times_w(self, random_graph):
        pmf = PoissonPMF(lam=1.0)
        h = h_matrix(random_graph, pmf, tau=5)
        p = mhp_matrix(random_graph, pmf, tau=5)
        np.testing.assert_allclose(p, h @ random_graph.to_dense())

    def test_shape(self, figure1):
        p = mhp_matrix(figure1, PoissonPMF(lam=1.0), tau=5)
        assert p.shape == (4, 5)

    def test_zero_for_disconnected(self):
        graph = two_cliques(2)
        p = mhp_matrix(graph, PoissonPMF(lam=1.0), tau=8)
        np.testing.assert_allclose(p[:2, 2:], 0.0, atol=1e-12)

    def test_direct_neighbors_score_higher_than_strangers(self, figure1):
        p = mhp_matrix(figure1, PoissonPMF(lam=1.0), tau=10)
        # u1's direct neighbor v1 outranks v5 (reachable only via 3+ hops).
        assert p[0, 0] > p[0, 4]


class TestScalarAccessors:
    def test_mhs_scalar(self, figure1):
        s = mhs_matrix(figure1, PoissonPMF(lam=2.0), tau=20)
        assert mhs(figure1, PoissonPMF(lam=2.0), 20, 0, 1) == pytest.approx(
            s[0, 1]
        )

    def test_mhp_scalar(self, figure1):
        p = mhp_matrix(figure1, PoissonPMF(lam=2.0), tau=20)
        assert mhp(figure1, PoissonPMF(lam=2.0), 20, 2, 3) == pytest.approx(
            p[2, 3]
        )


class TestVSideMHS:
    def test_unit_diagonal(self, figure1):
        s = mhs_matrix_v_side(figure1, PoissonPMF(lam=2.0), tau=20)
        np.testing.assert_allclose(np.diagonal(s), 1.0)

    def test_shared_neighborhood_similarity(self, figure1):
        s = mhs_matrix_v_side(figure1, PoissonPMF(lam=2.0), tau=20)
        # v2 and v3 share neighbors {u1, u2, u4}; v1 and v5 share none.
        assert s[1, 2] > s[0, 4]
