"""Unit tests for classification metrics — hand-computed references."""

import numpy as np
import pytest

from repro.metrics import (
    accuracy,
    average_precision,
    classification_summary,
    log_loss,
    precision_recall_curve,
    roc_auc,
    roc_curve,
)


class TestRocAuc:
    def test_perfect_separation(self):
        labels = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        assert roc_auc(labels, scores) == 1.0

    def test_perfectly_wrong(self):
        labels = np.array([1, 1, 0, 0])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        assert roc_auc(labels, scores) == 0.0

    def test_hand_computed(self):
        # pairs: (pos 0.7 vs neg 0.4): win; (pos 0.3 vs neg 0.4): loss.
        labels = np.array([1, 1, 0])
        scores = np.array([0.7, 0.3, 0.4])
        assert roc_auc(labels, scores) == pytest.approx(0.5)

    def test_ties_count_half(self):
        labels = np.array([1, 0])
        scores = np.array([0.5, 0.5])
        assert roc_auc(labels, scores) == pytest.approx(0.5)

    def test_random_scores_near_half(self, rng):
        labels = rng.integers(0, 2, size=5000)
        labels[0], labels[1] = 0, 1
        scores = rng.random(5000)
        assert roc_auc(labels, scores) == pytest.approx(0.5, abs=0.03)

    def test_invariant_to_monotone_transform(self, rng):
        labels = rng.integers(0, 2, size=200)
        labels[:2] = [0, 1]
        scores = rng.standard_normal(200)
        assert roc_auc(labels, scores) == pytest.approx(
            roc_auc(labels, np.exp(scores))
        )

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            roc_auc(np.ones(5), np.random.random(5))

    def test_non_binary_rejected(self):
        with pytest.raises(ValueError):
            roc_auc(np.array([0, 2]), np.array([0.1, 0.2]))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            roc_auc(np.array([0, 1]), np.array([0.5]))


class TestCurves:
    def test_roc_curve_endpoints(self, rng):
        labels = rng.integers(0, 2, size=50)
        labels[:2] = [0, 1]
        scores = rng.random(50)
        fpr, tpr = roc_curve(labels, scores)
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == pytest.approx(1.0)
        assert tpr[-1] == pytest.approx(1.0)

    def test_roc_curve_monotone(self, rng):
        labels = rng.integers(0, 2, size=80)
        labels[:2] = [0, 1]
        scores = rng.random(80)
        fpr, tpr = roc_curve(labels, scores)
        assert (np.diff(fpr) >= 0).all()
        assert (np.diff(tpr) >= 0).all()

    def test_trapezoid_matches_rank_auc(self, rng):
        labels = rng.integers(0, 2, size=300)
        labels[:2] = [0, 1]
        scores = rng.random(300)
        fpr, tpr = roc_curve(labels, scores)
        trapezoid = float(np.trapezoid(tpr, fpr))
        assert trapezoid == pytest.approx(roc_auc(labels, scores), abs=1e-10)

    def test_pr_curve_final_recall_one(self, rng):
        labels = rng.integers(0, 2, size=60)
        labels[:2] = [0, 1]
        recall, precision = precision_recall_curve(labels, rng.random(60))
        assert recall[-1] == pytest.approx(1.0)
        assert (precision >= 0).all() and (precision <= 1).all()


class TestAveragePrecision:
    def test_perfect(self):
        labels = np.array([0, 1, 1])
        scores = np.array([0.1, 0.8, 0.9])
        assert average_precision(labels, scores) == pytest.approx(1.0)

    def test_hand_computed(self):
        # Ranking: pos(0.9), neg(0.8), pos(0.7).
        # R jumps: at rank1 P=1, at rank3 P=2/3 -> AP = .5*1 + .5*(2/3).
        labels = np.array([1, 0, 1])
        scores = np.array([0.9, 0.8, 0.7])
        assert average_precision(labels, scores) == pytest.approx(
            0.5 * 1.0 + 0.5 * (2 / 3)
        )

    def test_worst_case_lower_bound(self):
        labels = np.array([1, 0, 0, 0])
        scores = np.array([0.0, 0.5, 0.6, 0.7])
        # The single positive ranks last: AP = 1/4.
        assert average_precision(labels, scores) == pytest.approx(0.25)


class TestAccuracyLogLoss:
    def test_accuracy_threshold(self):
        labels = np.array([0, 1, 1, 0])
        scores = np.array([0.2, 0.7, 0.4, 0.6])
        assert accuracy(labels, scores) == pytest.approx(0.5)
        assert accuracy(labels, scores, threshold=0.65) == pytest.approx(0.75)

    def test_log_loss_perfect(self):
        labels = np.array([0, 1])
        probabilities = np.array([0.0, 1.0])
        assert log_loss(labels, probabilities) == pytest.approx(0.0, abs=1e-10)

    def test_log_loss_uniform(self):
        labels = np.array([0, 1])
        probabilities = np.array([0.5, 0.5])
        assert log_loss(labels, probabilities) == pytest.approx(np.log(2))

    def test_log_loss_clipping(self):
        labels = np.array([1.0])
        probabilities = np.array([0.0])  # would be -inf without clipping
        assert np.isfinite(log_loss(labels, probabilities))


class TestSummary:
    def test_contains_both_aucs(self, rng):
        labels = rng.integers(0, 2, size=100)
        labels[:2] = [0, 1]
        scores = rng.random(100)
        summary = classification_summary(labels, scores)
        assert set(summary) == {"auc_roc", "auc_pr"}
