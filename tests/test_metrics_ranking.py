"""Unit tests for ranking metrics — all against hand-computed values."""

import numpy as np
import pytest

from repro.metrics import (
    RankingScores,
    f1_at_n,
    ndcg_at_n,
    precision_at_n,
    recall_at_n,
    reciprocal_rank,
    score_rankings,
)


class TestPrecisionRecall:
    def test_perfect(self):
        assert precision_at_n([1, 2], [1, 2]) == 1.0
        assert recall_at_n([1, 2], [1, 2]) == 1.0

    def test_half_precision(self):
        assert precision_at_n([1, 9], [1, 2]) == 0.5

    def test_partial_recall(self):
        assert recall_at_n([1], [1, 2, 3, 4]) == 0.25

    def test_disjoint(self):
        assert precision_at_n([5, 6], [1, 2]) == 0.0
        assert recall_at_n([5, 6], [1, 2]) == 0.0

    def test_empty_recommendation(self):
        assert precision_at_n([], [1]) == 0.0
        assert recall_at_n([], [1]) == 0.0

    def test_empty_ground_truth(self):
        assert recall_at_n([1, 2], []) == 0.0


class TestF1:
    def test_hand_computed(self):
        # precision 1/2, recall 1/4 -> F1 = 2 * (1/2)(1/4) / (3/4) = 1/3.
        assert f1_at_n([1, 9], [1, 2, 3, 4]) == pytest.approx(1 / 3)

    def test_zero_when_no_overlap(self):
        assert f1_at_n([9], [1]) == 0.0

    def test_perfect(self):
        assert f1_at_n([1, 2, 3], [3, 1, 2]) == 1.0


class TestNDCG:
    def test_perfect_ranking(self):
        assert ndcg_at_n([1, 2, 3], [1, 2, 3]) == pytest.approx(1.0)

    def test_single_hit_at_position_two(self):
        # DCG = 1/log2(3); IDCG = 1/log2(2) = 1.
        expected = 1.0 / np.log2(3)
        assert ndcg_at_n([9, 1], [1]) == pytest.approx(expected)

    def test_hand_computed_mixed(self):
        # recommended [a, x, b], truth {a, b}:
        # DCG = 1/log2(2) + 0 + 1/log2(4) = 1 + 0.5 = 1.5
        # IDCG = 1/log2(2) + 1/log2(3)
        expected = 1.5 / (1.0 + 1.0 / np.log2(3))
        assert ndcg_at_n(["a", "x", "b"], ["a", "b"]) == pytest.approx(expected)

    def test_truth_larger_than_list(self):
        # ideal hits limited to the list length.
        value = ndcg_at_n([1], [1, 2, 3])
        assert value == pytest.approx(1.0)

    def test_no_hits(self):
        assert ndcg_at_n([7, 8], [1, 2]) == 0.0

    def test_empty_inputs(self):
        assert ndcg_at_n([], [1]) == 0.0
        assert ndcg_at_n([1], []) == 0.0


class TestMRR:
    def test_first_position(self):
        assert reciprocal_rank([3, 1], [3]) == 1.0

    def test_third_position(self):
        assert reciprocal_rank([9, 8, 3], [3]) == pytest.approx(1 / 3)

    def test_no_hit(self):
        assert reciprocal_rank([9, 8], [3]) == 0.0

    def test_earliest_hit_counts(self):
        assert reciprocal_rank([9, 1, 2], [2, 1]) == pytest.approx(0.5)


class TestAggregation:
    def test_streaming_average(self):
        scores = RankingScores()
        scores.update([1], [1])        # F1 = 1
        scores.update([9], [1])        # F1 = 0
        summary = scores.summary()
        assert summary["f1"] == pytest.approx(0.5)
        assert summary["mrr"] == pytest.approx(0.5)
        assert scores.num_users == 2

    def test_empty_truth_skipped(self):
        scores = RankingScores()
        scores.update([1], [])
        assert scores.num_users == 0
        assert scores.summary()["f1"] == 0.0

    def test_score_rankings_wrapper(self):
        summary = score_rankings([[1], [2]], [[1], [3]])
        assert summary["precision"] == pytest.approx(0.5)

    def test_all_metrics_present(self):
        summary = RankingScores().summary()
        assert set(summary) == {"precision", "recall", "f1", "ndcg", "mrr"}
