"""Unit tests for the unified objective (Eq. 9) and its theory."""

import numpy as np
import pytest

from repro.core import (
    PoissonPMF,
    evaluate_objective,
    h_matrix,
    mhp_matrix,
    mhs_matrix,
    mhs_matrix_v_side,
    proximity_loss,
    similarity_loss,
)
from repro.datasets import figure1_graph

PMF = PoissonPMF(lam=1.0)
TAU = 12


def optimal_embeddings(graph):
    """Eq. (10): X = Z sqrt(Lambda), Y = W^T X from the full eigensystem."""
    h = h_matrix(graph, PMF, TAU)
    values, vectors = np.linalg.eigh(h)
    values = np.clip(values, 0.0, None)
    x = vectors * np.sqrt(values)[np.newaxis, :]
    y = graph.to_dense().T @ x
    return x, y


class TestOptimalSolution:
    def test_full_rank_solution_has_zero_loss(self, figure1):
        """Section 3: Eq. (10) exactly optimizes Eq. (9)."""
        x, y = optimal_embeddings(figure1)
        loss = evaluate_objective(figure1, x, y, PMF, TAU)
        assert loss.proximity == pytest.approx(0.0, abs=1e-12)
        assert loss.similarity == pytest.approx(0.0, abs=1e-10)
        assert loss.total == pytest.approx(0.0, abs=1e-10)

    def test_lemma_2_2_v_side_similarity(self, figure1):
        """Lemma 2.2: at zero loss, V-side normalized distances match MHS."""
        x, y = optimal_embeddings(figure1)
        norms = np.linalg.norm(y, axis=1, keepdims=True)
        unit = y / np.where(norms > 0, norms, 1.0)
        s_v = mhs_matrix_v_side(figure1, PMF, TAU)
        for j in range(figure1.num_v):
            for h in range(figure1.num_v):
                if norms[j] == 0 or norms[h] == 0:
                    continue
                distance_sq = float(((unit[j] - unit[h]) ** 2).sum())
                assert 0.5 * distance_sq == pytest.approx(
                    1.0 - s_v[j, h], abs=1e-8
                )

    def test_truncated_rank_increases_loss(self, figure1):
        """Theorem 3.1: rank-k truncation gives small but nonzero loss."""
        h = h_matrix(figure1, PMF, TAU)
        values, vectors = np.linalg.eigh(h)
        order = np.argsort(values)[::-1]
        values, vectors = values[order], vectors[:, order]
        k = 2
        u = vectors[:, :k] * np.sqrt(np.clip(values[:k], 0, None))
        v = figure1.to_dense().T @ u
        loss = evaluate_objective(figure1, u, v, PMF, TAU)
        assert loss.total > 0
        # More rank, less loss.
        k = 4
        u4 = vectors[:, :k] * np.sqrt(np.clip(values[:k], 0, None))
        v4 = figure1.to_dense().T @ u4
        loss4 = evaluate_objective(figure1, u4, v4, PMF, TAU)
        assert loss4.total <= loss.total + 1e-12


class TestComponents:
    def test_proximity_loss_zero_for_exact(self, figure1):
        p = mhp_matrix(figure1, PMF, TAU)
        u, s, vt = np.linalg.svd(p, full_matrices=False)
        left = u * np.sqrt(s)
        right = (vt.T * np.sqrt(s))
        assert proximity_loss(left, right, p) == pytest.approx(0.0, abs=1e-15)

    def test_proximity_loss_positive_for_wrong(self, figure1):
        p = mhp_matrix(figure1, PMF, TAU)
        u = np.zeros((4, 3))
        v = np.zeros((5, 3))
        expected = (p ** 2).sum() / (4 * 5)
        assert proximity_loss(u, v, p) == pytest.approx(expected)

    def test_similarity_loss_scale_invariant(self, figure1, rng):
        s = mhs_matrix(figure1, PMF, TAU)
        u = rng.standard_normal((4, 3))
        assert similarity_loss(u, s) == pytest.approx(
            similarity_loss(5.0 * u, s)
        )

    def test_similarity_loss_zero_rows_handled(self, figure1):
        s = mhs_matrix(figure1, PMF, TAU)
        u = np.zeros((4, 2))
        value = similarity_loss(u, s)
        assert np.isfinite(value)


class TestValidation:
    def test_wrong_u_rows(self, figure1):
        with pytest.raises(ValueError, match="u has"):
            evaluate_objective(figure1, np.zeros((3, 2)), np.zeros((5, 2)), PMF, TAU)

    def test_wrong_v_rows(self, figure1):
        with pytest.raises(ValueError, match="v has"):
            evaluate_objective(figure1, np.zeros((4, 2)), np.zeros((4, 2)), PMF, TAU)

    def test_dimension_mismatch(self, figure1):
        with pytest.raises(ValueError, match="embedding dimension"):
            evaluate_objective(figure1, np.zeros((4, 2)), np.zeros((5, 3)), PMF, TAU)
