"""Tests for the observability layer (repro.obs).

Covers the four satellite requirements: nested timer totals, the
closed-form matvec accounting of Algorithm 2, JSON report round-tripping
against the validated schema, and the zero-overhead-by-default guard for
the no-op collector.
"""

import json
import time

import numpy as np
import pytest

from repro import obs
from repro.core import GEBEPoisson, PoissonPMF, GEBE
from repro.datasets import toy_graph
from repro.linalg import krylov_iteration_count
from repro.obs import (
    NULL,
    NullCollector,
    OpCounter,
    ProfileCollector,
    RunReport,
    StageTimer,
    validate_report,
)


# ---------------------------------------------------------------------------
# StageTimer
# ---------------------------------------------------------------------------
class TestStageTimer:
    def test_nested_totals_at_least_sum_of_children(self):
        timer = StageTimer()
        with timer.stage("parent"):
            with timer.stage("child_a"):
                time.sleep(0.002)
            with timer.stage("child_b"):
                time.sleep(0.002)
            time.sleep(0.001)  # time in the parent outside any child
        flat = timer.flatten()
        parent = flat["parent"]
        assert parent.seconds >= parent.child_seconds()
        assert parent.child_seconds() == pytest.approx(
            flat["parent/child_a"].seconds + flat["parent/child_b"].seconds
        )

    def test_paths_are_hierarchical(self):
        timer = StageTimer()
        with timer.stage("a"):
            with timer.stage("b"):
                with timer.stage("c"):
                    pass
        assert set(timer.flatten()) == {"a", "a/b", "a/b/c"}

    def test_reentry_accumulates_calls(self):
        timer = StageTimer()
        for _ in range(5):
            with timer.stage("loop"):
                with timer.stage("body"):
                    pass
        flat = timer.flatten()
        assert flat["loop"].calls == 5
        assert flat["loop/body"].calls == 5
        # A single record per path, not one per entry.
        assert len(flat) == 2

    def test_slash_in_name_rejected(self):
        timer = StageTimer()
        with pytest.raises(ValueError, match="must not contain"):
            with timer.stage("a/b"):
                pass

    def test_depth_tracks_stack(self):
        timer = StageTimer()
        assert timer.depth == 0
        with timer.stage("a"):
            assert timer.depth == 1
            with timer.stage("b"):
                assert timer.depth == 2
        assert timer.depth == 0


# ---------------------------------------------------------------------------
# OpCounter
# ---------------------------------------------------------------------------
class TestOpCounter:
    def test_spmv_tally_and_flops(self):
        counter = OpCounter()
        counter.count_spmv(nnz=100, cols=4)
        assert counter.sparse_matvecs == 4
        assert counter.flops == 2.0 * 100 * 4

    def test_gemm_qr_svd(self):
        counter = OpCounter()
        counter.count_gemm(10, 20, 30)
        counter.count_qr(50, 5)
        counter.count_svd(16, 40)
        assert counter.gemms == 1
        assert counter.qr_factorizations == 1
        assert counter.svd_factorizations == 1
        assert counter.flops == pytest.approx(
            2 * 10 * 20 * 30 + 2 * 50 * 25 + 4 * 16 * 40 * 16
        )


# ---------------------------------------------------------------------------
# Collector activation
# ---------------------------------------------------------------------------
class TestCollectorActivation:
    def test_default_is_the_null_singleton(self):
        assert obs.active() is NULL
        assert not obs.active().enabled

    def test_collect_activates_and_restores(self):
        with obs.collect() as collector:
            assert obs.active() is collector
            assert collector.enabled
        assert obs.active() is NULL

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with obs.collect():
                raise RuntimeError("boom")
        assert obs.active() is NULL

    def test_nested_collectors_restore_inner_to_outer(self):
        with obs.collect() as outer:
            with obs.collect() as inner:
                assert obs.active() is inner
            assert obs.active() is outer


# ---------------------------------------------------------------------------
# Matvec accounting vs Algorithm 2's closed form
# ---------------------------------------------------------------------------
def expected_gebe_p_matvecs(graph, dimension, epsilon, strategy):
    """Sparse-matvec count implied by Algorithm 2's iteration parameters.

    Both basis builders apply ``W`` (or ``W.T``) to a ``b``-wide block once
    to start and twice per iteration: ``b (2q + 1)`` matvecs.  Rayleigh-Ritz
    applies ``W.T`` to the final basis — ``b`` columns for power iteration,
    ``min((q + 1) b, |U|)`` for block Krylov (the stacked blocks, clipped by
    the thin QR).  The Eq. 13 read-out ``V = W^T U`` adds ``k`` more.
    """
    m = graph.num_u
    k = min(dimension, graph.num_u, graph.num_v)
    b = min(k + 8, min(graph.num_u, graph.num_v))  # default oversampling
    q = krylov_iteration_count(graph.num_v, epsilon, strategy)
    basis_width = min((q + 1) * b, m) if strategy == "block_krylov" else b
    return b * (2 * q + 1) + basis_width + k


class TestMatvecAccounting:
    @pytest.mark.parametrize("strategy", ["power", "block_krylov"])
    def test_gebe_p_matches_closed_form(self, strategy):
        graph = toy_graph()
        epsilon = 0.1
        with obs.collect() as collector:
            GEBEPoisson(
                dimension=6, epsilon=epsilon, svd_strategy=strategy, seed=0
            ).fit(graph)
        expected = expected_gebe_p_matvecs(graph, 6, epsilon, strategy)
        assert collector.ops.sparse_matvecs == expected

    def test_gebe_matches_iteration_count(self):
        graph = toy_graph()
        tau, k = 5, 4
        with obs.collect() as collector:
            result = GEBE(PoissonPMF(lam=1.0), dimension=k, tau=tau, seed=0).fit(
                graph
            )
        iterations = result.metadata["iterations"]
        # Each KSI iteration expands the tau-term series: 2 tau spmv per
        # k-wide block; the Eq. 13 read-out adds k more.
        expected = iterations * 2 * tau * k + k
        assert collector.ops.sparse_matvecs == expected

    def test_stage_tree_has_the_documented_paths(self):
        with obs.collect() as collector:
            GEBEPoisson(dimension=4, seed=0).fit(toy_graph())
        paths = set(collector.timer.flatten())
        assert {
            "gebe_p",
            "gebe_p/normalize",
            "gebe_p/rsvd",
            "gebe_p/rsvd/power_iter",
            "gebe_p/rsvd/rayleigh_ritz",
            "gebe_p/spectral_map",
            "gebe_p/project",
        } <= paths

    def test_memory_watermarks_populated(self):
        with obs.collect() as collector:
            GEBEPoisson(dimension=4, seed=0).fit(toy_graph())
        assert collector.memory.peak_rss_bytes > 0
        assert collector.memory.max_tracked_array_bytes > 0


# ---------------------------------------------------------------------------
# RunReport schema
# ---------------------------------------------------------------------------
def profiled_toy_report():
    graph = toy_graph()
    with obs.collect() as collector:
        result = GEBEPoisson(dimension=4, seed=0).fit(graph)
    return collector.report(
        method=result.method,
        dataset="toy",
        dimension=4,
        seed=0,
        wall_seconds=result.elapsed_seconds,
        metadata={"num_edges": graph.num_edges},
    )


class TestRunReport:
    def test_round_trips_through_json(self):
        report = profiled_toy_report()
        payload = json.loads(report.to_json())
        validate_report(payload)
        restored = RunReport.from_json(report.to_json())
        assert restored.method == report.method
        assert restored.dataset == "toy"
        assert restored.ops == report.to_dict()["ops"]
        assert restored.stage_seconds() == report.stage_seconds()
        # Serialization is stable: a second round trip is byte-identical.
        assert restored.to_json() == report.to_json()

    def test_report_contains_required_payload(self):
        payload = profiled_toy_report().to_dict()
        assert payload["ops"]["sparse_matvecs"] > 0
        assert payload["memory"]["peak_rss_bytes"] > 0
        seconds = profiled_toy_report().stage_seconds()
        assert "gebe_p/rsvd" in seconds
        assert all(value >= 0 for value in seconds.values())

    @pytest.mark.parametrize(
        "mutate, match",
        [
            (lambda p: p.update(version=99), "version"),
            (lambda p: p.update(schema="other"), "schema"),
            (lambda p: p.pop("ops"), "ops"),
            (lambda p: p["ops"].pop("sparse_matvecs"), "sparse_matvecs"),
            (lambda p: p["stages"][0].pop("path"), "path"),
            (lambda p: p.update(wall_seconds=-1.0), "wall_seconds"),
            (lambda p: p["memory"].update(peak_rss_bytes=-5), "peak_rss_bytes"),
            (lambda p: p.pop("threads"), "threads"),
            (lambda p: p.update(threads=0), "threads"),
            (lambda p: p.update(threads=True), "threads"),
            (lambda p: p["memory"].pop("workspace_bytes"), "workspace_bytes"),
        ],
    )
    def test_schema_violations_rejected(self, mutate, match):
        payload = profiled_toy_report().to_dict()
        mutate(payload)
        with pytest.raises(ValueError, match=match):
            validate_report(payload)

    def test_summary_is_one_line(self):
        summary = profiled_toy_report().summary()
        assert "\n" not in summary
        assert "GEBE^p" in summary

    def test_v2_thread_and_workspace_fields(self):
        # Schema v2: effective thread count and the kernel workspace
        # watermark (summed over per-thread pools) are part of the report.
        payload = profiled_toy_report().to_dict()
        assert payload["version"] == 8
        assert payload["threads"] >= 1
        assert payload["memory"]["workspace_bytes"] >= 0

    def test_v3_topk_candidates_field(self):
        # Schema v3: retrieval coverage is part of the ops block (zero for
        # a plain fit, counted by the topk engine's read-out).
        payload = profiled_toy_report().to_dict()
        assert payload["ops"]["topk_candidates"] == 0
        restored = RunReport.from_dict(payload)
        assert restored.threads == payload["threads"]
        assert "thread" in restored.summary()
        assert "workspace" in restored.summary()

    def test_v4_service_section_null_for_solver_runs(self):
        payload = profiled_toy_report().to_dict()
        assert payload["service"] is None
        assert RunReport.from_dict(payload).service is None

    def test_v4_service_section_round_trips(self):
        service = {
            "requests": 12,
            "batched_requests": 8,
            "batches": 2,
            "shed": 1,
            "deadline_exceeded": 0,
            "reloads": 1,
            "queue_depth_max": 4,
            "latency_ms": {"p50": 1.5, "p95": 9.0},
        }
        report = profiled_toy_report()
        report.service = service
        payload = report.to_dict()
        assert payload["service"]["requests"] == 12
        assert RunReport.from_dict(payload).service == service

    @pytest.mark.parametrize(
        "mutate, match",
        [
            (lambda p: p.pop("service"), "service"),
            (lambda p: p.update(service=[]), "service"),
            (lambda p: p["service"].pop("shed"), "shed"),
            (lambda p: p["service"].update(requests=-1), "requests"),
            (lambda p: p["service"].pop("latency_ms"), "latency_ms"),
            (lambda p: p["service"]["latency_ms"].update(p95=-2.0), "p95"),
        ],
    )
    def test_v4_service_violations_rejected(self, mutate, match):
        report = profiled_toy_report()
        report.service = {
            "requests": 1,
            "batched_requests": 0,
            "batches": 0,
            "shed": 0,
            "deadline_exceeded": 0,
            "reloads": 0,
            "queue_depth_max": 1,
            "latency_ms": {"p50": 0.1, "p95": 0.2},
        }
        payload = report.to_dict()
        mutate(payload)
        with pytest.raises(ValueError, match=match):
            validate_report(payload)

    def test_v3_documents_upgrade_to_current(self):
        payload = profiled_toy_report().to_dict()
        payload["version"] = 3
        del payload["service"]
        del payload["refresh"]
        del payload["ops"]["ann_probes"]
        del payload["ops"]["ann_candidates"]
        restored = RunReport.from_dict(payload)
        assert restored.service is None
        assert restored.refresh is None
        assert restored.ops["ann_probes"] == 0
        assert restored.to_dict()["version"] == 8

    def test_v4_documents_upgrade_to_current(self):
        payload = profiled_toy_report().to_dict()
        payload["version"] = 4
        del payload["refresh"]
        del payload["ops"]["ann_probes"]
        del payload["ops"]["ann_candidates"]
        restored = RunReport.from_dict(payload)
        assert restored.ops["ann_probes"] == 0
        assert restored.ops["ann_candidates"] == 0
        assert restored.to_dict()["version"] == 8

    def test_v5_documents_upgrade_to_current(self):
        payload = profiled_toy_report().to_dict()
        payload["version"] = 5
        del payload["refresh"]
        restored = RunReport.from_dict(payload)
        assert restored.refresh is None
        assert restored.to_dict()["version"] == 8

    def test_v6_refresh_section_null_for_plain_fits(self):
        payload = profiled_toy_report().to_dict()
        assert payload["refresh"] is None
        assert RunReport.from_dict(payload).refresh is None

    def test_v6_documents_upgrade_to_v7(self):
        payload = profiled_toy_report().to_dict()
        payload["version"] = 6
        del payload["ooc"]
        restored = RunReport.from_dict(payload)
        assert restored.ooc is None
        assert restored.to_dict()["version"] == 8

    def test_v7_ooc_section_null_for_plain_fits(self):
        payload = profiled_toy_report().to_dict()
        assert payload["ooc"] is None
        assert RunReport.from_dict(payload).ooc is None

    def test_v7_documents_upgrade_to_v8(self):
        payload = profiled_toy_report().to_dict()
        payload["version"] = 7
        del payload["similarity"]
        restored = RunReport.from_dict(payload)
        assert restored.similarity is None
        assert restored.to_dict()["version"] == 8

    def test_v8_similarity_section_null_for_plain_fits(self):
        payload = profiled_toy_report().to_dict()
        assert payload["similarity"] is None
        assert RunReport.from_dict(payload).similarity is None

    def test_v8_similarity_section_round_trips(self):
        report = profiled_toy_report()
        report.similarity = {
            "mode": "mhs",
            "side": "u",
            "tau": 5,
            "sources": 16,
            "block_sources": 8,
            "matvecs": 160,
        }
        payload = report.to_dict()
        assert payload["similarity"]["mode"] == "mhs"
        assert RunReport.from_dict(payload).similarity == report.similarity

    @pytest.mark.parametrize(
        "mutate, match",
        [
            (lambda p: p.pop("similarity"), "similarity"),
            (lambda p: p.update(similarity=[]), "similarity"),
            (lambda p: p["similarity"].update(mode="cosine"), "mode"),
            (lambda p: p["similarity"].update(side="w"), "side"),
            (lambda p: p["similarity"].update(tau=-1), "tau"),
            (lambda p: p["similarity"].pop("matvecs"), "matvecs"),
        ],
    )
    def test_v8_similarity_violations_rejected(self, mutate, match):
        report = profiled_toy_report()
        report.similarity = {
            "mode": "mhp",
            "side": "v",
            "tau": 3,
            "sources": 4,
            "block_sources": 4,
            "matvecs": 28,
        }
        payload = report.to_dict()
        mutate(payload)
        with pytest.raises(ValueError, match=match):
            validate_report(payload)

    def test_v7_ooc_section_round_trips(self):
        report = profiled_toy_report()
        report.ooc = {
            "budget_mb": 64.0,
            "bytes_copied_in": 1 << 20,
            "peak_rss_bytes": 1 << 24,
        }
        payload = report.to_dict()
        assert payload["ooc"]["budget_mb"] == 64.0
        assert RunReport.from_dict(payload).ooc == report.ooc

    @pytest.mark.parametrize(
        "mutate, match",
        [
            (lambda p: p.pop("ooc"), "ooc"),
            (lambda p: p.update(ooc=[]), "ooc"),
            (lambda p: p["ooc"].update(budget_mb=-1.0), "budget_mb"),
            (lambda p: p["ooc"].pop("bytes_copied_in"), "bytes_copied_in"),
            (lambda p: p["ooc"].update(peak_rss_bytes=-5), "peak_rss_bytes"),
        ],
    )
    def test_v7_ooc_violations_rejected(self, mutate, match):
        report = profiled_toy_report()
        report.ooc = {
            "budget_mb": None,
            "bytes_copied_in": 0,
            "peak_rss_bytes": 0,
        }
        payload = report.to_dict()
        mutate(payload)
        with pytest.raises(ValueError, match=match):
            validate_report(payload)

    def test_v6_refresh_section_round_trips(self):
        refresh = {
            "mode": "warm",
            "reason": "ok",
            "residual": 0.02,
            "tolerance": 0.158,
            "warm_rank": 16,
            "warm_matvecs": 152,
            "cold_matvecs": 448,
        }
        report = profiled_toy_report()
        report.refresh = refresh
        payload = report.to_dict()
        assert payload["refresh"]["mode"] == "warm"
        assert RunReport.from_dict(payload).refresh == refresh

    @pytest.mark.parametrize(
        "mutate, match",
        [
            (lambda p: p.pop("refresh"), "refresh"),
            (lambda p: p["refresh"].update(mode="hot"), "mode"),
            (lambda p: p["refresh"].update(reason=""), "reason"),
            (lambda p: p["refresh"].update(tolerance=-0.1), "tolerance"),
            (lambda p: p["refresh"].update(warm_rank=-1), "warm_rank"),
            (lambda p: p["refresh"].update(warm_matvecs=1.5), "warm_matvecs"),
        ],
    )
    def test_v6_refresh_violations_rejected(self, mutate, match):
        report = profiled_toy_report()
        report.refresh = {
            "mode": "cold_fallback",
            "reason": "residual",
            "residual": 0.7,
            "tolerance": 0.1,
            "warm_rank": 8,
            "warm_matvecs": None,
            "cold_matvecs": 300,
        }
        payload = report.to_dict()
        mutate(payload)
        with pytest.raises(ValueError, match=match):
            validate_report(payload)

    def test_v5_ann_ops_fields(self):
        # Schema v5: ANN coverage is part of the ops block (zero for a
        # plain fit, counted by the IVF index's search path).
        payload = profiled_toy_report().to_dict()
        assert payload["ops"]["ann_probes"] == 0
        assert payload["ops"]["ann_candidates"] == 0
        counter = OpCounter()
        counter.count_ann_probe(8)
        counter.count_ann_probe(8)
        counter.count_ann_candidates(123)
        assert counter.ann_probes == 16
        assert counter.ann_candidates == 123
        assert counter.to_dict()["ann_probes"] == 16


# ---------------------------------------------------------------------------
# Zero-overhead-by-default guard
# ---------------------------------------------------------------------------
class TestNoOpOverhead:
    def test_noop_calls_are_cheap(self):
        """Benchmark guard for the profiling-off path.

        A GEBE^p toy-scale run makes on the order of 10^2 instrumented
        calls over a multi-millisecond solve, so holding the no-op path
        under ~2.5 microseconds per call bounds the instrumentation
        overhead far below the 5% acceptance budget.  The bound is ~30x
        above what the no-op costs in practice, so the guard only fires on
        a real regression (e.g. the no-op path starting to allocate).
        """
        collector = obs.active()
        assert isinstance(collector, NullCollector) and not collector.enabled
        calls = 100_000
        started = time.perf_counter()
        for _ in range(calls):
            collector.count_spmv(1000, 8)
            with collector.stage("hot"):
                pass
        elapsed = time.perf_counter() - started
        assert elapsed < calls * 2.5e-6, (
            f"no-op instrumentation costs {elapsed / calls * 1e9:.0f} ns per "
            "call pair; the profiling-off path must stay negligible"
        )

    def test_noop_stage_is_shared_and_stateless(self):
        first = NULL.stage("a")
        second = NULL.stage("b")
        assert first is second  # no per-call allocation

    def test_null_collector_records_nothing(self):
        NULL.count_spmv(10, 10)
        NULL.count_gemm(1, 2, 3)
        NULL.note_array(1 << 30)
        NULL.sample_memory()  # all no-ops; nothing to assert beyond no crash
        assert not hasattr(NULL, "ops")
