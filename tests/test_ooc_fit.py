"""Out-of-core fit: bit-identity to the resident path and budget-bounded RSS.

The store layer's contract (see ``repro/graph/store.py``) is that every
blocked product performs, per output element, exactly the floating-point
operations of the resident scipy path in the same order — so a GEBE^p fit
over a memory-mapped store must be **bit-identical** to the fit over the
same store loaded resident, at every thread count and staging budget.
These tests pin that claim (the bench's ``ooc_runs`` axis gates on the
same invariant at scale), plus the peak-RSS win the whole path exists for.
"""

import tempfile
from pathlib import Path

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.core import GEBEPoisson
from repro.graph import build_graph_store
from repro.graph.store import OocWorkspace, StoreCSR, row_blocks
from repro.linalg import DtypePolicy, SparseKernel
from repro.obs import current_rss_bytes


def _random_edge_file(path, rng, num_u=40, num_v=60, num_edges=500):
    pairs = rng.permutation(num_u * num_v)[:num_edges]
    with open(path, "w", encoding="utf-8") as handle:
        for flat in pairs.tolist():
            u, v = divmod(flat, num_v)
            weight = float(rng.uniform(0.1, 5.0))
            handle.write(f"u{u}\tv{v}\t{weight!r}\n")


def _fit(graph, *, threads=1, budget_mb=None, seed=7):
    policy = DtypePolicy.default().with_threads(threads)
    if budget_mb is not None:
        policy = policy.with_ooc_budget(budget_mb)
    return GEBEPoisson(dimension=8, seed=seed, dtype_policy=policy).fit(graph)


@pytest.fixture(scope="module")
def fit_store(tmp_path_factory):
    root = tmp_path_factory.mktemp("ooc-fit")
    path = root / "g.tsv"
    _random_edge_file(path, np.random.default_rng(31))
    store, _ = build_graph_store(path, root / "store", chunk_edges=128)
    return store


@pytest.fixture(scope="module")
def anchor(fit_store):
    """The resident single-thread fit every out-of-core fit must reproduce."""
    return _fit(fit_store.resident_graph())


# ---------------------------------------------------------------------------
# Blocked-operator building blocks
# ---------------------------------------------------------------------------
class TestRowBlocks:
    @settings(max_examples=60, deadline=None)
    @given(
        counts=st.lists(st.integers(0, 40), min_size=1, max_size=50),
        max_nnz=st.integers(1, 64),
    )
    def test_blocks_partition_rows_within_budget(self, counts, max_nnz):
        indptr = np.zeros(len(counts) + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        blocks = list(row_blocks(indptr, 0, len(counts), max_nnz))
        # Exact partition of [0, n) in order.
        assert blocks[0][0] == 0 and blocks[-1][1] == len(counts)
        for (_, prev_hi), (lo, hi) in zip(blocks, blocks[1:]):
            assert lo == prev_hi
            assert hi > lo
        for lo, hi in blocks:
            nnz = int(indptr[hi] - indptr[lo])
            # Budget respected unless a single row alone exceeds it.
            assert nnz <= max_nnz or hi == lo + 1
            assert hi - lo <= max_nnz

    def test_single_wide_row_forms_own_block(self):
        indptr = np.array([0, 100, 101], dtype=np.int64)
        assert list(row_blocks(indptr, 0, 2, 8)) == [(0, 1), (1, 2)]


class TestOocWorkspace:
    def test_staged_block_matches_direct_slices(self):
        rng = np.random.default_rng(5)
        w = sp.random(20, 30, density=0.3, random_state=3, format="csr")
        csr = StoreCSR(w.indptr, w.indices, w.data, w.shape)
        ws = OocWorkspace(1 << 20, w.indices.dtype, w.data.dtype)
        indptr, indices, data = ws.stage(csr, 4, 11)
        start, stop = int(w.indptr[4]), int(w.indptr[11])
        np.testing.assert_array_equal(indptr, w.indptr[4:12] - w.indptr[4])
        np.testing.assert_array_equal(indices, w.indices[start:stop])
        np.testing.assert_array_equal(data, w.data[start:stop])
        assert rng is not None  # silence lint on unused rng

    def test_bytes_copied_odometer(self):
        w = sp.random(16, 16, density=0.4, random_state=9, format="csr")
        csr = StoreCSR(w.indptr, w.indices, w.data, w.shape)
        ws = OocWorkspace(1 << 20, w.indices.dtype, w.data.dtype)
        assert ws.bytes_copied == 0
        indptr, indices, data = ws.stage(csr, 0, 16)
        expected = indptr.nbytes + indices.nbytes + data.nbytes
        assert ws.bytes_copied == expected
        ws.stage(csr, 0, 16)
        assert ws.bytes_copied == 2 * expected

    def test_tiny_budget_still_admits_one_element(self):
        ws = OocWorkspace(1, np.dtype(np.int64), np.dtype(np.float64))
        assert ws.max_nnz == 1


class TestBlockedProductsBitIdentical:
    """Kernel products under any budget == scipy products, bit for bit."""

    @pytest.mark.parametrize("budget_mb", [1e-4, 0.01, 64.0])
    def test_matmul_and_t_matmul(self, budget_mb):
        rng = np.random.default_rng(41)
        w = sp.random(37, 53, density=0.15, random_state=11, format="csr")
        csr = StoreCSR(w.indptr, w.indices, w.data, w.shape)
        policy = DtypePolicy.default().with_ooc_budget(budget_mb)
        kernel = SparseKernel(csr, policy)
        x = rng.standard_normal((53, 5))
        y = rng.standard_normal((37, 5))
        assert np.array_equal(kernel.matmul(x), w @ x)
        assert np.array_equal(kernel.t_matmul(y), w.T @ y)

    def test_serial_operators_match_scipy(self):
        rng = np.random.default_rng(43)
        w = sp.random(23, 31, density=0.2, random_state=13, format="csr")
        csr = StoreCSR(w.indptr, w.indices, w.data, w.shape)
        x = rng.standard_normal((31, 3))
        y = rng.standard_normal((23, 3))
        assert np.array_equal(csr @ x, w @ x)
        assert np.array_equal(csr.T @ y, w.T @ y)
        assert np.array_equal(y.T @ csr, y.T @ w)


# ---------------------------------------------------------------------------
# The fit-level contract
# ---------------------------------------------------------------------------
class TestFitBitIdentity:
    @pytest.mark.parametrize("threads", [1, 2, 4])
    @pytest.mark.parametrize("budget_mb", [0.05, 1.0])
    def test_store_fit_matches_resident_anchor(
        self, fit_store, anchor, threads, budget_mb
    ):
        result = _fit(
            fit_store.graph(), threads=threads, budget_mb=budget_mb
        )
        assert np.array_equal(result.u, anchor.u)
        assert np.array_equal(result.v, anchor.v)

    def test_resident_fit_is_thread_invariant(self, fit_store, anchor):
        # The anchor itself must not depend on executor width, or the
        # mmap-vs-resident comparison above would be ill-posed.
        result = _fit(fit_store.resident_graph(), threads=4)
        assert np.array_equal(result.u, anchor.u)
        assert np.array_equal(result.v, anchor.v)


@pytest.mark.slow
class TestFitBitIdentityProperties:
    """Hypothesis sweep: ingest arbitrary edge lists, fit both ways."""

    @settings(max_examples=10, deadline=None)
    @given(
        edges=st.lists(
            st.tuples(
                st.integers(0, 9),
                st.integers(0, 9),
                st.floats(0.1, 5.0, allow_nan=False),
            ),
            min_size=1,
            max_size=50,
        ),
        threads=st.sampled_from([1, 4]),
        budget_mb=st.sampled_from([0.001, 0.5]),
    )
    def test_random_graphs_fit_bit_identically(self, edges, threads, budget_mb):
        with tempfile.TemporaryDirectory(prefix="repro-ooc-prop-") as tmp:
            path = Path(tmp) / "g.tsv"
            with open(path, "w", encoding="utf-8") as handle:
                for u, v, weight in edges:
                    handle.write(f"u{u}\ti{v}\t{float(weight)!r}\n")
            store, _ = build_graph_store(
                path, Path(tmp) / "store", chunk_edges=7
            )
            reference = _fit(store.resident_graph())
            result = _fit(
                store.graph(), threads=threads, budget_mb=budget_mb
            )
            assert np.array_equal(result.u, reference.u)
            assert np.array_equal(result.v, reference.v)


# ---------------------------------------------------------------------------
# Peak-RSS regression
# ---------------------------------------------------------------------------
_RSS_PROBE = """
import sys, threading, time
from repro.graph import GraphStore
from repro.core import GEBEPoisson
from repro.linalg import DtypePolicy
from repro.obs import MemorySampler

mode, store_path, budget_mb = sys.argv[1], sys.argv[2], float(sys.argv[3])
store = GraphStore.open(store_path)
sampler = MemorySampler()
sampler.sample()
baseline = sampler.peak_rss_bytes
done = threading.Event()

def poll():
    while not done.is_set():
        sampler.sample()
        time.sleep(0.002)

thread = threading.Thread(target=poll)
thread.start()
try:
    # Graph construction counts: the resident path pays for its arrays here.
    if mode == "mmap":
        graph = store.graph()
        policy = DtypePolicy.default().with_ooc_budget(budget_mb)
    else:
        graph = store.resident_graph()
        policy = DtypePolicy.default()
    GEBEPoisson(dimension=8, seed=7, dtype_policy=policy).fit(graph)
finally:
    done.set()
    thread.join()
sampler.sample()
print(sampler.peak_rss_bytes - baseline)
"""


def _fit_rss_delta(store_path, mode, budget_mb):
    """Peak RSS growth of open-store -> fit, measured in a fresh process."""
    import os
    import subprocess
    import sys

    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(Path(__file__).resolve().parent.parent / "src")
        + os.pathsep
        + env.get("PYTHONPATH", "")
    )
    proc = subprocess.run(
        [sys.executable, "-c", _RSS_PROBE, mode, str(store_path), str(budget_mb)],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return int(proc.stdout.strip())


@pytest.mark.slow
class TestFitPeakRss:
    def test_mmap_fit_stays_under_resident_footprint(self, tmp_path):
        """The out-of-core fit must not materialize the store's arrays.

        On a store whose CSR arrays dwarf the dense embedding blocks, the
        mmap fit's RSS growth must stay below the store size (it streams
        budget-sized slices) and below the growth of the same fit over the
        resident-loaded graph (which pays for the full arrays up front).
        """
        if current_rss_bytes() is None:
            pytest.skip("RSS sampling unavailable on this platform")
        num_edges, num_u, num_v = 600_000, 1_500, 5_000
        rng = np.random.default_rng(47)
        users = rng.integers(0, num_u, size=num_edges)
        items = rng.integers(0, num_v, size=num_edges)
        path = tmp_path / "big.tsv"
        with open(path, "w", encoding="utf-8") as handle:
            block = 50_000
            for lo in range(0, num_edges, block):
                handle.write(
                    "".join(
                        f"u{u}\ti{v}\n"
                        for u, v in zip(
                            users[lo : lo + block].tolist(),
                            items[lo : lo + block].tolist(),
                        )
                    )
                )
        store, _ = build_graph_store(path, tmp_path / "store")
        budget_mb = 2.0

        # The copy odometer and bit-identity checks run in-process.
        with obs.collect() as collector:
            mmap_fit = _fit(store.graph(), budget_mb=budget_mb)
            section = collector.ooc_section(budget_mb=budget_mb)
        resident_fit = _fit(store.resident_graph())
        assert np.array_equal(mmap_fit.u, resident_fit.u)
        assert np.array_equal(mmap_fit.v, resident_fit.v)
        # The kernels streamed the matrix rather than loading it: at least
        # one full pass of the u2v indices+data went through staging.
        assert section["bytes_copied_in"] >= store.nnz * 16

        # RSS deltas come from fresh subprocesses: in-process measurement is
        # order-contaminated (freed pages stay resident, so whichever fit
        # runs second reuses the first one's arena and "grows" less).
        delta_mmap = _fit_rss_delta(store.path, "mmap", budget_mb)
        delta_resident = _fit_rss_delta(store.path, "resident", budget_mb)
        assert delta_mmap < store.nbytes(), (
            f"mmap fit grew RSS by {delta_mmap / 1e6:.1f} MB, at least the "
            f"whole {store.nbytes() / 1e6:.1f} MB store — not out-of-core"
        )
        assert delta_mmap < delta_resident, (
            f"mmap fit RSS growth ({delta_mmap / 1e6:.1f} MB) should undercut "
            f"the resident fit's ({delta_resident / 1e6:.1f} MB)"
        )
