"""Unit tests for the path-length PMFs (paper Eq. 6-8)."""

import math

import numpy as np
import pytest

from repro.core import GeometricPMF, PoissonPMF, UniformPMF, make_pmf


class TestUniform:
    def test_constant_weight(self):
        pmf = UniformPMF(tau=5)
        assert pmf.omega(0) == pytest.approx(0.2)
        assert pmf.omega(5) == pytest.approx(0.2)

    def test_zero_beyond_tau(self):
        pmf = UniformPMF(tau=5)
        assert pmf.omega(6) == 0.0

    def test_paper_mass_quirk(self):
        # Eq. (6) sums to (tau + 1) / tau, reproduced verbatim.
        pmf = UniformPMF(tau=4)
        assert pmf.truncation_mass(4) == pytest.approx(5 / 4)

    def test_requires_positive_tau(self):
        with pytest.raises(ValueError):
            UniformPMF(tau=0)

    def test_negative_ell_rejected(self):
        with pytest.raises(ValueError):
            UniformPMF(tau=2).omega(-1)


class TestGeometric:
    def test_values(self):
        pmf = GeometricPMF(alpha=0.3)
        assert pmf.omega(0) == pytest.approx(0.3)
        assert pmf.omega(2) == pytest.approx(0.3 * 0.49)

    def test_mass_approaches_one(self):
        pmf = GeometricPMF(alpha=0.5)
        assert pmf.truncation_mass(60) == pytest.approx(1.0, abs=1e-12)

    def test_decreasing(self):
        pmf = GeometricPMF(alpha=0.2)
        weights = pmf.weights(10)
        assert (np.diff(weights) < 0).all()

    def test_alpha_bounds(self):
        with pytest.raises(ValueError):
            GeometricPMF(alpha=0.0)
        with pytest.raises(ValueError):
            GeometricPMF(alpha=1.0)


class TestPoisson:
    def test_values_match_formula(self):
        pmf = PoissonPMF(lam=2.0)
        for ell in range(6):
            expected = math.exp(-2.0) * 2.0 ** ell / math.factorial(ell)
            assert pmf.omega(ell) == pytest.approx(expected)

    def test_mass_approaches_one(self):
        pmf = PoissonPMF(lam=1.0)
        assert pmf.truncation_mass(40) == pytest.approx(1.0, abs=1e-12)

    def test_mode_at_lambda(self):
        # For integer lambda the PMF peaks at ell = lambda (and lambda - 1).
        pmf = PoissonPMF(lam=3.0)
        weights = pmf.weights(10)
        assert np.argmax(weights) in (2, 3)

    def test_large_ell_stable(self):
        pmf = PoissonPMF(lam=1.0)
        assert pmf.omega(300) == pytest.approx(0.0, abs=1e-300)
        assert np.isfinite(pmf.omega(300))

    def test_lambda_positive(self):
        with pytest.raises(ValueError):
            PoissonPMF(lam=0.0)
        with pytest.raises(ValueError):
            PoissonPMF(lam=-1.0)


class TestWeightsVector:
    def test_length(self):
        assert PoissonPMF(lam=1.0).weights(7).shape == (8,)

    def test_negative_tau_rejected(self):
        with pytest.raises(ValueError):
            PoissonPMF(lam=1.0).weights(-1)

    def test_matches_elementwise(self):
        pmf = GeometricPMF(alpha=0.4)
        weights = pmf.weights(5)
        for ell, weight in enumerate(weights):
            assert weight == pytest.approx(pmf.omega(ell))


class TestFactory:
    def test_uniform(self):
        pmf = make_pmf("uniform", tau=7)
        assert isinstance(pmf, UniformPMF)
        assert pmf.tau == 7

    def test_geometric(self):
        pmf = make_pmf("geometric", alpha=0.25)
        assert isinstance(pmf, GeometricPMF)
        assert pmf.alpha == 0.25

    def test_poisson(self):
        pmf = make_pmf("Poisson", lam=2.0)
        assert isinstance(pmf, PoissonPMF)
        assert pmf.lam == 2.0

    def test_defaults(self):
        assert make_pmf("poisson").lam == 1.0
        assert make_pmf("geometric").alpha == 0.5
        assert make_pmf("uniform").tau == 20

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown PMF"):
            make_pmf("zipf")
