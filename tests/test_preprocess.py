"""Unit tests for weight normalization."""

import numpy as np
import pytest

from repro.core.preprocess import SPECTRAL_TOP, normalize_weights
from repro.graph import BipartiteGraph


def top_singular_value(matrix) -> float:
    return float(np.linalg.svd(matrix.toarray(), compute_uv=False)[0])


class TestSym:
    def test_top_singular_value_is_one(self, random_graph):
        normalized = normalize_weights(random_graph, "sym")
        assert top_singular_value(normalized) == pytest.approx(1.0, abs=1e-10)

    def test_sqrt_degree_vectors_attain_it(self, random_graph):
        normalized = normalize_weights(random_graph, "sym")
        du = np.sqrt(random_graph.u_degrees(weighted=True))
        dv = np.sqrt(random_graph.v_degrees(weighted=True))
        du /= np.linalg.norm(du)
        dv /= np.linalg.norm(dv)
        assert float(du @ (normalized @ dv)) == pytest.approx(1.0, abs=1e-10)

    def test_preserves_sparsity_pattern(self, random_graph):
        normalized = normalize_weights(random_graph, "sym")
        assert normalized.nnz == random_graph.num_edges
        np.testing.assert_array_equal(
            normalized.indices, random_graph.w.indices
        )

    def test_isolated_nodes_stay_zero(self):
        dense = np.array([[1.0, 0.0], [0.0, 0.0]])
        graph = BipartiteGraph.from_dense(dense)
        normalized = normalize_weights(graph, "sym")
        assert np.isfinite(normalized.toarray()).all()

    def test_does_not_mutate_graph(self, random_graph):
        before = random_graph.w.data.copy()
        normalize_weights(random_graph, "sym")
        np.testing.assert_array_equal(random_graph.w.data, before)


class TestSpectral:
    def test_top_singular_value_is_spectral_top(self, random_graph):
        normalized = normalize_weights(random_graph, "spectral")
        assert top_singular_value(normalized) == pytest.approx(
            SPECTRAL_TOP, abs=1e-8
        )

    def test_constant_multiple_of_sym(self, random_graph):
        sym = normalize_weights(random_graph, "sym")
        spectral = normalize_weights(random_graph, "spectral")
        np.testing.assert_allclose(spectral.data, SPECTRAL_TOP * sym.data)


class TestMaxAndNone:
    def test_max_rescales_to_unit_max(self, tiny_graph):
        normalized = normalize_weights(tiny_graph, "max")
        assert normalized.data.max() == pytest.approx(1.0)
        assert normalized[0, 1] == pytest.approx(2.0 / 3.0)

    def test_none_is_copy(self, tiny_graph):
        normalized = normalize_weights(tiny_graph, "none")
        np.testing.assert_allclose(
            normalized.toarray(), tiny_graph.to_dense()
        )
        normalized.data[:] = 0.0
        assert tiny_graph.total_weight > 0  # original untouched


class TestPatternPreservation:
    """Regression tests for the sparsity-pattern contract (obs PR).

    ``normalize_weights`` must keep every stored entry of ``W`` for all
    modes — zero-degree nodes and subnormal weights included.  The old
    ``diags @ W @ diags`` implementation dropped entries whose scaled value
    underflowed to zero (and would drop zero-degree rows structurally).
    """

    def test_zero_degree_node_keeps_pattern(self):
        # u1 and v2 are isolated (zero degree); their rows/columns carry no
        # entries, and the present entries must all survive.
        graph = BipartiteGraph.from_edges(
            [(0, 0, 2.0), (2, 1, 3.0)], num_u=3, num_v=3
        )
        assert graph.u_degrees()[1] == 0
        assert graph.v_degrees()[2] == 0
        for mode in ("sym", "spectral", "max", "none"):
            normalized = normalize_weights(graph, mode)
            assert normalized.nnz == graph.num_edges, mode
            np.testing.assert_array_equal(normalized.indices, graph.w.indices)
            np.testing.assert_array_equal(normalized.indptr, graph.w.indptr)
            assert np.isfinite(normalized.data).all()

    def test_subnormal_weight_not_dropped(self):
        # The hypothesis counterexample that exposed the bug: a subnormal
        # weight next to a normal one underflowed to zero mid-product and
        # the sparse matmul pruned it.
        graph = BipartiteGraph.from_dense([[4.0, 5e-324]])
        for mode in ("sym", "spectral", "max"):
            normalized = normalize_weights(graph, mode)
            assert normalized.nnz == graph.num_edges, mode
        sym = normalize_weights(graph, "sym")
        assert sym.data[1] > 0.0  # value survives, not just the slot

    def test_single_subnormal_entry_normalizes_to_one(self):
        # Both degrees subnormal: the combined inverse-degree factor is
        # inf, but applied largest-first the entry still normalizes to 1.
        graph = BipartiteGraph.from_dense([[5e-324]])
        sym = normalize_weights(graph, "sym")
        assert sym.data[0] == pytest.approx(1.0)


class TestValidation:
    def test_unknown_mode(self, tiny_graph):
        with pytest.raises(ValueError, match="unknown normalization"):
            normalize_weights(tiny_graph, "l2")

    def test_empty_graph_any_mode(self):
        graph = BipartiteGraph.from_dense(np.zeros((2, 2)))
        for mode in ("sym", "spectral", "max", "none"):
            normalized = normalize_weights(graph, mode)
            assert normalized.nnz == 0
