"""Property-based tests (hypothesis) for core invariants.

These check the paper's lemmas and the substrate's algebraic invariants on
*arbitrary* random bipartite graphs and inputs, not just hand-picked cases.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import (
    GeometricPMF,
    PoissonPMF,
    UniformPMF,
    h_matrix,
    mhp_matrix,
    mhs_matrix,
)
from repro.core.preprocess import normalize_weights
from repro.graph import BipartiteGraph
from repro.linalg import pmf_weighted_apply, thin_qr
from repro.metrics import (
    average_precision,
    f1_at_n,
    ndcg_at_n,
    precision_at_n,
    recall_at_n,
    roc_auc,
)
from repro.walks import AliasTable

pytestmark = pytest.mark.slow


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------
@st.composite
def bipartite_graphs(draw, max_u=8, max_v=8):
    """Random small weighted bipartite graphs (possibly with isolates)."""
    num_u = draw(st.integers(1, max_u))
    num_v = draw(st.integers(1, max_v))
    dense = draw(
        arrays(
            np.float64,
            (num_u, num_v),
            elements=st.floats(0.0, 5.0, allow_nan=False),
        )
    )
    # Sparsify: zero out below a random threshold.
    threshold = draw(st.floats(0.0, 4.0))
    dense = np.where(dense >= threshold, dense, 0.0)
    return BipartiteGraph.from_dense(dense)


@st.composite
def pmfs(draw):
    kind = draw(st.sampled_from(["uniform", "geometric", "poisson"]))
    if kind == "uniform":
        return UniformPMF(tau=draw(st.integers(1, 10)))
    if kind == "geometric":
        return GeometricPMF(alpha=draw(st.floats(0.05, 0.95)))
    return PoissonPMF(lam=draw(st.floats(0.1, 5.0)))


# ---------------------------------------------------------------------------
# Lemma 2.1 on arbitrary graphs and PMFs
# ---------------------------------------------------------------------------
class TestMHSProperties:
    @settings(max_examples=40, deadline=None)
    @given(graph=bipartite_graphs(), pmf=pmfs())
    def test_lemma_2_1_bounds(self, graph, pmf):
        s = mhs_matrix(graph, pmf, tau=6)
        assert s.min() >= -1e-9
        assert s.max() <= 1.0 + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(graph=bipartite_graphs(), pmf=pmfs())
    def test_lemma_2_1_unit_diagonal(self, graph, pmf):
        s = mhs_matrix(graph, pmf, tau=6)
        np.testing.assert_allclose(np.diagonal(s), 1.0)

    @settings(max_examples=40, deadline=None)
    @given(graph=bipartite_graphs(), pmf=pmfs())
    def test_symmetry(self, graph, pmf):
        s = mhs_matrix(graph, pmf, tau=6)
        np.testing.assert_allclose(s, s.T, atol=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(graph=bipartite_graphs(), pmf=pmfs())
    def test_h_psd(self, graph, pmf):
        h = h_matrix(graph, pmf, tau=6)
        eigenvalues = np.linalg.eigvalsh(h)
        assert eigenvalues.min() >= -1e-8 * max(1.0, abs(eigenvalues).max())

    @settings(max_examples=30, deadline=None)
    @given(graph=bipartite_graphs(), pmf=pmfs())
    def test_mhp_non_negative(self, graph, pmf):
        p = mhp_matrix(graph, pmf, tau=6)
        assert p.min() >= -1e-10


# ---------------------------------------------------------------------------
# Linear algebra invariants
# ---------------------------------------------------------------------------
class TestLinalgProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        block=arrays(
            np.float64,
            (7, 3),
            elements=st.floats(-10, 10, allow_nan=False),
        )
    )
    def test_thin_qr_reconstructs(self, block):
        q, r = thin_qr(block)
        np.testing.assert_allclose(q @ r, block, atol=1e-8)
        assert (np.diagonal(r) >= -1e-12).all()

    @settings(max_examples=30, deadline=None)
    @given(graph=bipartite_graphs(), pmf=pmfs())
    def test_operator_linearity(self, graph, pmf):
        weights = pmf.weights(4)
        rng = np.random.default_rng(0)
        x = rng.standard_normal((graph.num_u, 2))
        y = rng.standard_normal((graph.num_u, 2))
        left = pmf_weighted_apply(graph.w, x + 2.0 * y, weights)
        right = pmf_weighted_apply(graph.w, x, weights) + 2.0 * pmf_weighted_apply(
            graph.w, y, weights
        )
        np.testing.assert_allclose(left, right, atol=1e-8)


# ---------------------------------------------------------------------------
# Normalization invariants
# ---------------------------------------------------------------------------
class TestNormalizationProperties:
    @settings(max_examples=40, deadline=None)
    @given(graph=bipartite_graphs())
    def test_sym_spectrum_bounded(self, graph):
        normalized = normalize_weights(graph, "sym")
        if normalized.nnz == 0:
            return
        top = np.linalg.svd(normalized.toarray(), compute_uv=False)[0]
        assert top <= 1.0 + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(graph=bipartite_graphs())
    def test_pattern_preserved(self, graph):
        for mode in ("sym", "spectral", "max"):
            normalized = normalize_weights(graph, mode)
            assert normalized.nnz == graph.num_edges


# ---------------------------------------------------------------------------
# Metric invariants
# ---------------------------------------------------------------------------
class TestMetricProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        recommended=st.lists(st.integers(0, 20), max_size=10, unique=True),
        truth=st.lists(st.integers(0, 20), max_size=10, unique=True),
    )
    def test_ranking_metrics_bounded(self, recommended, truth):
        for metric in (precision_at_n, recall_at_n, f1_at_n, ndcg_at_n):
            value = metric(recommended, truth)
            assert 0.0 <= value <= 1.0 + 1e-12

    @settings(max_examples=50, deadline=None)
    @given(
        scores=arrays(
            np.float64, 20, elements=st.floats(-5, 5, allow_nan=False)
        ),
        labels=arrays(np.int64, 20, elements=st.integers(0, 1)),
    )
    def test_auc_complement_symmetry(self, scores, labels):
        if labels.sum() in (0, labels.size):
            return  # needs both classes
        auc = roc_auc(labels, scores)
        flipped = roc_auc(1 - labels, scores)
        assert auc + flipped == pytest.approx(1.0, abs=1e-9)
        assert 0.0 <= average_precision(labels, scores) <= 1.0


# ---------------------------------------------------------------------------
# Alias table correctness on arbitrary distributions
# ---------------------------------------------------------------------------
class TestAliasProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        weights=st.lists(
            st.floats(0.0, 10.0, allow_nan=False), min_size=1, max_size=12
        ).filter(lambda ws: sum(ws) > 0.1)
    )
    def test_empirical_distribution_matches(self, weights):
        table = AliasTable(weights)
        rng = np.random.default_rng(0)
        draws = table.sample(30_000, rng=rng)
        counts = np.bincount(draws, minlength=len(weights)) / draws.size
        expected = np.asarray(weights) / np.sum(weights)
        np.testing.assert_allclose(counts, expected, atol=0.03)
