"""Property-based tests (hypothesis) for the linalg substrate.

Hardens the solver's numerical kernels on *arbitrary* inputs: thin-QR
orthonormality/idempotence, KSI basis orthonormality, and the randomized
SVD's near-optimal low-rank reconstruction guarantee.  These suites draw
many examples per property, so the whole module carries the ``slow``
marker (``make test-fast`` skips it).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.linalg import (
    exact_svd,
    is_semi_unitary,
    randomized_svd,
    subspace_iteration,
    thin_qr,
)

pytestmark = pytest.mark.slow


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------
@st.composite
def gaussian_blocks(draw, max_n=12):
    """Random tall Gaussian blocks (full column rank almost surely)."""
    n = draw(st.integers(2, max_n))
    k = draw(st.integers(1, n))
    seed = draw(st.integers(0, 2**32 - 1))
    return np.random.default_rng(seed).standard_normal((n, k))


@st.composite
def dense_matrices(draw, max_m=10, max_n=10):
    """Small dense matrices with bounded, well-scaled entries."""
    m = draw(st.integers(2, max_m))
    n = draw(st.integers(2, max_n))
    return draw(
        arrays(
            np.float64,
            (m, n),
            elements=st.floats(-5.0, 5.0, allow_nan=False, width=32),
        )
    )


@st.composite
def psd_matrices(draw, max_n=10):
    """Symmetric positive semidefinite matrices ``B @ B.T``."""
    b = draw(dense_matrices(max_m=max_n, max_n=max_n))
    return b @ b.T


# ---------------------------------------------------------------------------
# thin_qr
# ---------------------------------------------------------------------------
class TestThinQR:
    @settings(max_examples=50, deadline=None)
    @given(gaussian_blocks())
    def test_factorization_reconstructs_and_q_is_orthonormal(self, block):
        q, r = thin_qr(block)
        assert q.shape == block.shape
        assert is_semi_unitary(q, tol=1e-8)
        assert np.allclose(q @ r, block, atol=1e-8)

    @settings(max_examples=50, deadline=None)
    @given(gaussian_blocks())
    def test_sign_convention_makes_r_diagonal_nonnegative(self, block):
        _, r = thin_qr(block)
        assert np.all(np.diagonal(r) >= 0)

    @settings(max_examples=50, deadline=None)
    @given(gaussian_blocks())
    def test_idempotent_on_orthonormal_input(self, block):
        """Re-factorizing ``Q`` must return ``Q`` itself with ``R ~= I``.

        This is the property KSI leans on: the iterate block is already
        orthonormal after the previous step, so a repeated QR must be a
        stable fixed point (deterministic sign fix included).
        """
        q, _ = thin_qr(block)
        q2, r2 = thin_qr(q)
        assert np.allclose(q2, q, atol=1e-10)
        assert np.allclose(r2, np.eye(q.shape[1]), atol=1e-10)


# ---------------------------------------------------------------------------
# subspace_iteration (KSI)
# ---------------------------------------------------------------------------
class TestSubspaceIteration:
    @settings(max_examples=30, deadline=None)
    @given(psd_matrices(), st.integers(1, 4), st.integers(0, 2**31 - 1))
    def test_basis_orthonormal_and_values_sorted(self, matrix, k, seed):
        n = matrix.shape[0]
        k = min(k, n)
        result = subspace_iteration(
            matrix, n, k, rng=np.random.default_rng(seed)
        )
        assert result.vectors.shape == (n, k)
        assert is_semi_unitary(result.vectors, tol=1e-6)
        assert np.all(result.values >= 0)
        assert np.all(np.diff(result.values) <= 1e-12)  # non-increasing

    @settings(max_examples=30, deadline=None)
    @given(psd_matrices(), st.integers(0, 2**31 - 1))
    def test_ritz_values_within_spectrum_bounds(self, matrix, seed):
        n = matrix.shape[0]
        top = float(np.linalg.eigvalsh(matrix)[-1])
        result = subspace_iteration(
            matrix, n, min(2, n), rng=np.random.default_rng(seed)
        )
        # Ritz values of a PSD operator live inside its spectrum.
        assert np.all(result.values <= top * (1 + 1e-8) + 1e-8)


# ---------------------------------------------------------------------------
# randomized_svd
# ---------------------------------------------------------------------------
class TestRandomizedSVD:
    @settings(max_examples=30, deadline=None)
    @given(
        dense_matrices(),
        st.integers(1, 4),
        st.sampled_from(["power", "block_krylov"]),
        st.integers(0, 2**31 - 1),
    )
    def test_reconstruction_error_near_optimal(self, matrix, k, strategy, seed):
        """``(1 + eps)``-style guarantee against the exact rank-k truncation.

        Eckart-Young makes the exact rank-k error a hard floor; the
        randomized factorization must land within a small multiplicative
        slack of it (generous relative to the Musco-Musco bound, so the
        test is deterministic-seed stable rather than flaky).
        """
        k = min(k, min(matrix.shape))
        exact = exact_svd(matrix, k)
        optimal = float(np.linalg.norm(matrix - exact.reconstruct()))
        approx = randomized_svd(
            matrix,
            k,
            epsilon=0.01,
            strategy=strategy,
            rng=np.random.default_rng(seed),
        )
        achieved = float(np.linalg.norm(matrix - approx.reconstruct()))
        assert achieved <= optimal * 1.05 + 1e-7
        # Eckart-Young also lower-bounds: no rank-k factorization beats it.
        assert achieved >= optimal - 1e-7

    @settings(max_examples=30, deadline=None)
    @given(
        dense_matrices(),
        st.integers(1, 4),
        st.sampled_from(["power", "block_krylov"]),
        st.integers(0, 2**31 - 1),
    )
    def test_factor_shapes_and_invariants(self, matrix, k, strategy, seed):
        k = min(k, min(matrix.shape))
        result = randomized_svd(
            matrix, k, strategy=strategy, rng=np.random.default_rng(seed)
        )
        m, n = matrix.shape
        assert result.u.shape == (m, k)
        assert result.s.shape == (k,)
        assert result.vt.shape == (k, n)
        assert np.all(result.s >= 0)
        assert np.all(np.diff(result.s) <= 1e-10)  # non-increasing
        # Singular values cannot exceed the exact ones (Rayleigh-Ritz on a
        # subspace only shrinks them).
        exact = exact_svd(matrix, k)
        assert np.all(result.s <= exact.s + 1e-8)
