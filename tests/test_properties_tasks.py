"""Property-based tests for splits, k-core, and embedding invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import GEBEPoisson
from repro.datasets import erdos_renyi_bipartite
from repro.graph import k_core
from repro.tasks import split_edges


@st.composite
def er_graphs(draw):
    num_u = draw(st.integers(4, 25))
    num_v = draw(st.integers(4, 25))
    max_edges = num_u * num_v
    num_edges = draw(st.integers(2, min(60, max_edges)))
    seed = draw(st.integers(0, 10_000))
    weighted = draw(st.booleans())
    return erdos_renyi_bipartite(
        num_u, num_v, num_edges, weighted=weighted, seed=seed
    )


class TestSplitProperties:
    @settings(max_examples=40, deadline=None)
    @given(graph=er_graphs(), fraction=st.floats(0.1, 0.9), seed=st.integers(0, 999))
    def test_exact_partition(self, graph, fraction, seed):
        split = split_edges(graph, fraction, seed=seed)
        assert split.train.num_edges + split.num_test_edges == graph.num_edges
        train_edges = set(zip(*split.train.edge_array()[:2]))
        test_edges = set(zip(split.test_u, split.test_v))
        assert not train_edges & test_edges

    @settings(max_examples=40, deadline=None)
    @given(graph=er_graphs(), seed=st.integers(0, 999))
    def test_test_weights_match_original(self, graph, seed):
        split = split_edges(graph, 0.5, seed=seed)
        for u, v, w in zip(split.test_u, split.test_v, split.test_w):
            assert graph.weight(int(u), int(v)) == w


class TestKCoreProperties:
    @settings(max_examples=40, deadline=None)
    @given(graph=er_graphs(), k=st.integers(0, 5))
    def test_survivors_meet_threshold(self, graph, k):
        core = k_core(graph, k)
        if core.num_u and core.num_v and core.num_edges:
            assert core.u_degrees().min() >= k
            assert core.v_degrees().min() >= k

    @settings(max_examples=30, deadline=None)
    @given(graph=er_graphs(), k=st.integers(0, 4))
    def test_idempotent(self, graph, k):
        once = k_core(graph, k)
        assert k_core(once, k) == once

    @settings(max_examples=30, deadline=None)
    @given(graph=er_graphs(), k=st.integers(1, 5))
    def test_monotone_in_k(self, graph, k):
        smaller = k_core(graph, k)
        larger = k_core(graph, k + 1)
        assert larger.num_edges <= smaller.num_edges


class TestEmbeddingInvariants:
    @settings(max_examples=15, deadline=None)
    @given(graph=er_graphs(), k=st.integers(1, 4))
    def test_gebe_p_output_finite_and_shaped(self, graph, k):
        result = GEBEPoisson(dimension=k, seed=0).fit(graph)
        assert result.u.shape == (graph.num_u, k)
        assert result.v.shape == (graph.num_v, k)
        assert np.isfinite(result.u).all()
        assert np.isfinite(result.v).all()

    @settings(max_examples=15, deadline=None)
    @given(graph=er_graphs())
    def test_eigenvalue_range_under_sym(self, graph):
        # Under sym normalization sigma <= 1, so Poisson eigenvalues lie in
        # [e^-lam, 1].
        lam = 1.0
        result = GEBEPoisson(
            dimension=2, lam=lam, normalization="sym", seed=0
        ).fit(graph)
        values = result.metadata["eigenvalues"]
        assert (values <= 1.0 + 1e-6).all()
        assert (values >= np.exp(-lam) - 1e-6).all()
