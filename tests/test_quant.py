"""Differential suite for the quantized top-k engine and its codec.

The headline claim of :class:`repro.tasks.topk.QuantizedTopKEngine` is that
quantization moves the *embeddings*, never the *retrieval*: over the
dequantized float64 matrices the engine's lists are element-identical to a
plain :class:`~repro.tasks.TopKEngine`, and its scores are the exact
float64 dot products — at every block size, every thread count, and both
storage codecs.  This suite pins that claim three ways:

* **lists** — ``array_equal`` against the exact engine over
  ``engine.dequantized()`` across block sizes {1, 7, all} x threads
  {1, 4} x {float16, int8};
* **scores** — ``array_equal`` against an independent fixed-order
  ``einsum`` evaluation of the dequantized matrices (the engine's scores
  are a pure function of codes + scales, so they must not shift with any
  execution knob);
* **all-ties fixtures** — integer embeddings whose quantization is
  *exactly representable* (int8 scale 1.0, float16 power-of-two scale),
  where every candidate ties and only the id-ascending tie-break orders
  the lists; scores compare at full precision against the BLAS engine
  too, because the dots are exactly representable.

Runs under ``REPRO_NUM_THREADS=4`` as well (Makefile THREADED_TESTS).
"""

import numpy as np
import pytest

from repro.core.quantize import (
    QUANT_DTYPES,
    column_error_bound,
    dequantize_columns,
    quantize_columns,
)
from repro.graph import BipartiteGraph
from repro.linalg.policy import DtypePolicy
from repro.tasks import TopKEngine
from repro.tasks.topk import QuantizedTopKEngine

NUM_USERS, NUM_ITEMS, DIM = 24, 64, 12


def _random_embeddings(seed=101):
    rng = np.random.default_rng(seed)
    return (
        rng.standard_normal((NUM_USERS, DIM)),
        rng.standard_normal((NUM_ITEMS, DIM)),
    )


def _quant_engine(u, v, quant_dtype, **kwargs):
    u_codes, u_scales = quantize_columns(u, quant_dtype)
    v_codes, v_scales = quantize_columns(v, quant_dtype)
    return QuantizedTopKEngine(
        u_codes, u_scales, v_codes, v_scales, quant_dtype=quant_dtype, **kwargs
    )


def _einsum_truth(u_deq, v_deq):
    """The independent ground truth: fixed-order float64 dots."""
    return np.einsum("uk,ik->ui", u_deq, v_deq)


def _gather(engine, n, **kwargs):
    """All blocks of ``iter_top_items(..., with_scores=True)`` stitched."""
    users, items, scores = [], [], []
    for block_users, block_items, block_scores in engine.iter_top_items(
        n, with_scores=True, **kwargs
    ):
        users.append(block_users)
        items.append(block_items)
        scores.append(block_scores)
    return (
        np.concatenate(users),
        np.concatenate(items),
        np.concatenate(scores),
    )


# ----------------------------------------------------------------------
# Codec
# ----------------------------------------------------------------------
class TestCodec:
    @pytest.mark.parametrize("quant_dtype", QUANT_DTYPES)
    def test_round_trip_within_error_bound(self, quant_dtype):
        u, _ = _random_embeddings()
        codes, scales = quantize_columns(u, quant_dtype)
        assert codes.dtype == np.dtype(quant_dtype)
        assert scales.shape == (DIM,)
        assert np.all(scales > 0)
        back = dequantize_columns(codes, scales)
        bound = column_error_bound(scales, quant_dtype)
        assert np.all(np.abs(back - u) <= bound + 1e-12)

    def test_error_bound_formulas(self):
        scales = np.array([1.0, 4.0, 0.5])
        np.testing.assert_allclose(
            column_error_bound(scales, "float16"), scales * 2.0**-11
        )
        np.testing.assert_allclose(
            column_error_bound(scales, "int8"), scales * 0.5
        )

    def test_all_zero_column_codes_to_zero(self):
        array = np.zeros((5, 3))
        array[:, 1] = [1.0, -2.0, 0.5, 0.0, 2.0]
        for quant_dtype in QUANT_DTYPES:
            codes, scales = quantize_columns(array, quant_dtype)
            back = dequantize_columns(codes, scales)
            assert scales[0] == 1.0 and scales[2] == 1.0
            assert np.all(back[:, 0] == 0.0) and np.all(back[:, 2] == 0.0)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError, match="must be one of"):
            quantize_columns(np.zeros((2, 2)), "int4")
        with pytest.raises(ValueError, match="2-D"):
            quantize_columns(np.zeros(4), "int8")
        with pytest.raises(ValueError, match="non-finite"):
            quantize_columns(np.array([[np.inf, 0.0]]), "float16")
        with pytest.raises(ValueError, match="do not align"):
            dequantize_columns(np.zeros((2, 3), dtype=np.int8), np.ones(2))
        with pytest.raises(ValueError, match="must be one of"):
            column_error_bound(np.ones(2), "bfloat16")

    def test_int8_codes_clip_to_symmetric_range(self):
        array = np.array([[-3.0], [3.0], [1.5]])
        codes, scales = quantize_columns(array, "int8")
        assert codes.min() == -127 and codes.max() == 127
        assert scales[0] == pytest.approx(3.0 / 127.0)


# ----------------------------------------------------------------------
# The differential grid: block sizes x threads x codecs
# ----------------------------------------------------------------------
class TestDifferentialGrid:
    @pytest.mark.parametrize("quant_dtype", QUANT_DTYPES)
    @pytest.mark.parametrize("threads", [1, 4])
    @pytest.mark.parametrize("block_rows", [1, 7, None])
    def test_lists_identical_scores_exact(
        self, quant_dtype, threads, block_rows
    ):
        u, v = _random_embeddings()
        policy = DtypePolicy.default().with_threads(threads)
        engine = _quant_engine(
            u, v, quant_dtype, policy=policy, block_rows=block_rows
        )
        u_deq, v_deq = engine.dequantized()
        expected = TopKEngine(u_deq, v_deq, policy=policy).top_items(10)
        users, items, scores = _gather(engine, 10)
        np.testing.assert_array_equal(users, np.arange(NUM_USERS))
        np.testing.assert_array_equal(items, expected)
        truth = _einsum_truth(u_deq, v_deq)
        np.testing.assert_array_equal(
            scores, np.take_along_axis(truth, items, axis=1)
        )

    @pytest.mark.parametrize("quant_dtype", QUANT_DTYPES)
    def test_block_size_never_changes_scores(self, quant_dtype):
        """Scores are a pure function of codes + scales: sweeping the block
        size (which reshapes the approximate GEMM and the candidate sets)
        must not move a single bit."""
        u, v = _random_embeddings(seed=7)
        reference = None
        for block_rows in (1, 7, None):
            engine = _quant_engine(u, v, quant_dtype, block_rows=block_rows)
            _, items, scores = _gather(engine, 9)
            if reference is None:
                reference = (items, scores)
            else:
                np.testing.assert_array_equal(items, reference[0])
                np.testing.assert_array_equal(scores, reference[1])

    @pytest.mark.parametrize("quant_dtype", QUANT_DTYPES)
    def test_exclusions_match_exact_engine(self, quant_dtype):
        u, v = _random_embeddings(seed=19)
        rng = np.random.default_rng(20)
        edges = [
            (int(user), int(item), 1.0)
            for user in range(NUM_USERS)
            for item in rng.choice(NUM_ITEMS, size=6, replace=False)
        ]
        graph = BipartiteGraph.from_edges(edges)
        engine = _quant_engine(u, v, quant_dtype, block_rows=5)
        u_deq, v_deq = engine.dequantized()
        expected = TopKEngine(u_deq, v_deq).top_items(8, exclude=graph)
        _, items, scores = _gather(engine, 8, exclude=graph)
        np.testing.assert_array_equal(items, expected)
        # No excluded pair survives, and the scores stay exact.
        truth = _einsum_truth(u_deq, v_deq)
        np.testing.assert_array_equal(
            scores, np.take_along_axis(truth, items, axis=1)
        )
        dense = graph.w.toarray()
        for user in range(NUM_USERS):
            seen = items[user][items[user] < graph.num_v]
            assert not np.any(dense[user, seen] > 0)

    @pytest.mark.parametrize("quant_dtype", QUANT_DTYPES)
    def test_user_subset(self, quant_dtype):
        u, v = _random_embeddings(seed=23)
        users = np.array([2, 11, 23], dtype=np.int64)
        engine = _quant_engine(u, v, quant_dtype)
        u_deq, v_deq = engine.dequantized()
        expected = TopKEngine(u_deq, v_deq).top_items(6, users=users)
        np.testing.assert_array_equal(
            engine.top_items(6, users=users), expected
        )

    @pytest.mark.parametrize("quant_dtype", QUANT_DTYPES)
    def test_user_scores_bit_identical_to_iter(self, quant_dtype):
        u, v = _random_embeddings(seed=31)
        engine = _quant_engine(u, v, quant_dtype)
        u_deq, v_deq = engine.dequantized()
        truth = _einsum_truth(u_deq, v_deq)
        for user in (0, 13, NUM_USERS - 1):
            np.testing.assert_array_equal(engine.user_scores(user), truth[user])

    @pytest.mark.parametrize("quant_dtype", QUANT_DTYPES)
    def test_n_larger_than_item_count_clamps(self, quant_dtype):
        u, v = _random_embeddings(seed=37)
        engine = _quant_engine(u, v, quant_dtype)
        u_deq, v_deq = engine.dequantized()
        expected = TopKEngine(u_deq, v_deq).top_items(NUM_ITEMS + 50)
        np.testing.assert_array_equal(
            engine.top_items(NUM_ITEMS + 50), expected
        )


# ----------------------------------------------------------------------
# All-ties fixtures with exactly representable quantization
# ----------------------------------------------------------------------
def _int8_integer_fixture():
    """Codes whose dequantization is *exact*: amax 127 makes the int8
    scale exactly 1.0, so every dequantized value is the integer itself
    and every dot product is exactly representable in float64."""
    rng = np.random.default_rng(41)
    u = rng.choice([0.0, 64.0, -127.0, 127.0], size=(16, 6))
    v = rng.choice([0.0, 64.0, -127.0, 127.0], size=(48, 6))
    u[0, :] = 127.0  # force amax = 127 in every column
    v[0, :] = -127.0
    return u, v


def _float16_power_of_two_fixture():
    """Values {0, +-1, +-2, +-4} with amax 4: the scale is the power of
    two 4.0, the codes {0, +-0.25, +-0.5, +-1} are exact in float16, and
    dequantization reproduces the inputs bit-for-bit."""
    rng = np.random.default_rng(43)
    u = rng.choice([0.0, 1.0, -1.0, 2.0, -2.0, 4.0, -4.0], size=(16, 6))
    v = rng.choice([0.0, 1.0, -1.0, 2.0, -2.0, 4.0, -4.0], size=(48, 6))
    u[0, :] = 4.0
    v[0, :] = -4.0
    return u, v


class TestAllTiesIntegerFixtures:
    @pytest.mark.parametrize(
        "quant_dtype,fixture",
        [
            ("int8", _int8_integer_fixture),
            ("float16", _float16_power_of_two_fixture),
        ],
    )
    @pytest.mark.parametrize("block_rows", [1, 7, None])
    def test_quantization_is_exact_and_lists_tie_break_by_id(
        self, quant_dtype, fixture, block_rows
    ):
        u, v = fixture()
        engine = _quant_engine(u, v, quant_dtype, block_rows=block_rows)
        u_deq, v_deq = engine.dequantized()
        # The fixture's whole point: dequantization is the identity here.
        np.testing.assert_array_equal(u_deq, u)
        np.testing.assert_array_equal(v_deq, v)
        # Massed ties: lists AND scores fully array_equal against the BLAS
        # engine — legitimate here because every dot is exactly
        # representable, so BLAS and einsum cannot disagree.
        exact = TopKEngine(u, v)
        blocks = list(exact.iter_top_items(10, with_scores=True))
        expected_items = np.concatenate([b[1] for b in blocks])
        expected_scores = np.concatenate([b[2] for b in blocks])
        _, items, scores = _gather(engine, 10)
        np.testing.assert_array_equal(items, expected_items)
        np.testing.assert_array_equal(scores, expected_scores)

    def test_fixture_actually_mass_ties(self):
        u, v = _int8_integer_fixture()
        truth = _einsum_truth(u, v)
        # Guard against the fixture degenerating: ties must dominate, or
        # the id-ascending tie-break isn't being exercised.
        _, counts = np.unique(truth, return_counts=True)
        assert counts.max() >= 10


# ----------------------------------------------------------------------
# Engine plumbing
# ----------------------------------------------------------------------
class TestEnginePlumbing:
    def test_constructor_validates(self):
        u, v = _random_embeddings()
        u_codes, u_scales = quantize_columns(u, "int8")
        v_codes, v_scales = quantize_columns(v, "int8")
        with pytest.raises(ValueError, match="quant_dtype"):
            QuantizedTopKEngine(
                u_codes, u_scales, v_codes, v_scales, quant_dtype="int4"
            )
        with pytest.raises(ValueError, match="expected float16"):
            QuantizedTopKEngine(
                u_codes, u_scales, v_codes, v_scales, quant_dtype="float16"
            )
        with pytest.raises(ValueError, match="scales must be"):
            QuantizedTopKEngine(
                u_codes, u_scales[:-1], v_codes, v_scales, quant_dtype="int8"
            )
        with pytest.raises(ValueError, match="dimension mismatch"):
            QuantizedTopKEngine(
                u_codes,
                u_scales,
                v_codes[:, :-1],
                v_scales[:-1],
                quant_dtype="int8",
            )

    def test_clone_for_worker_identical_results(self):
        u, v = _random_embeddings(seed=53)
        engine = _quant_engine(u, v, "float16", block_rows=7)
        _, items, scores = _gather(engine, 8)
        clone = engine.clone_for_worker()
        assert clone.quant_dtype == engine.quant_dtype
        assert clone.reranked_candidates == 0
        _, clone_items, clone_scores = _gather(clone, 8)
        np.testing.assert_array_equal(clone_items, items)
        np.testing.assert_array_equal(clone_scores, scores)

    def test_reranked_candidates_counts_pairs(self):
        u, v = _random_embeddings(seed=59)
        engine = _quant_engine(u, v, "int8")
        assert engine.reranked_candidates == 0
        engine.top_items(5)
        first = engine.reranked_candidates
        assert first > 0
        engine.top_items(5)
        assert engine.reranked_candidates == 2 * first
        # The margin is doing its job: far fewer pairs reranked than the
        # full cross product would cost.
        assert first < NUM_USERS * NUM_ITEMS

    def test_resident_bytes_smaller_than_exact(self):
        u, v = _random_embeddings(seed=61)
        quant = _quant_engine(u, v, "int8")
        exact = TopKEngine(u, v)
        assert quant.resident_bytes() < exact.resident_bytes()
