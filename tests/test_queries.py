"""Unit tests for matrix-free MHS/MHP queries (vs the dense references)."""

import numpy as np
import pytest

from repro.core import (
    MeasureQueries,
    PoissonPMF,
    UniformPMF,
    h_matrix,
    mhp_matrix,
    mhs_matrix,
)
from repro.datasets import figure1_graph

PMF = PoissonPMF(lam=1.5)
TAU = 8


@pytest.fixture
def queries(random_graph):
    return MeasureQueries(random_graph, PMF, TAU, normalization="none")


@pytest.fixture
def dense(random_graph):
    return {
        "h": h_matrix(random_graph, PMF, TAU),
        "p": mhp_matrix(random_graph, PMF, TAU),
        "s": mhs_matrix(random_graph, PMF, TAU),
    }


class TestRowQueries:
    def test_h_row_matches_dense(self, queries, dense, random_graph):
        for u in (0, random_graph.num_u // 2, random_graph.num_u - 1):
            np.testing.assert_allclose(queries.h_row(u), dense["h"][u], atol=1e-10)

    def test_mhp_row_matches_dense(self, queries, dense):
        np.testing.assert_allclose(queries.mhp_row(3), dense["p"][3], atol=1e-10)

    def test_mhs_row_matches_dense(self, queries, dense):
        np.testing.assert_allclose(queries.mhs_row(5), dense["s"][5], atol=1e-10)

    def test_table2_anchor(self):
        queries = MeasureQueries(
            figure1_graph(), PoissonPMF(lam=2.0), 60, normalization="none"
        )
        assert queries.h_row(0)[0] == pytest.approx(3.641, abs=2e-3)
        assert queries.mhs(1, 3) == pytest.approx(0.914, abs=2e-3)


class TestPairQueries:
    def test_mhs_pair_matches_dense(self, queries, dense):
        assert queries.mhs(2, 7) == pytest.approx(dense["s"][2, 7])

    def test_mhs_self_is_one(self, queries):
        assert queries.mhs(4, 4) == 1.0

    def test_mhp_pair_matches_dense(self, queries, dense):
        assert queries.mhp(1, 6) == pytest.approx(dense["p"][1, 6])


class TestDiagonal:
    def test_matches_dense_diagonal(self, queries, dense):
        np.testing.assert_allclose(
            queries.h_diagonal(), np.diagonal(dense["h"]), atol=1e-10
        )

    def test_cached_between_calls(self, queries):
        first = queries.h_diagonal()
        assert queries.h_diagonal() is first

    def test_blocked_computation_agrees(self, random_graph, dense):
        small_blocks = MeasureQueries(random_graph, PMF, TAU, normalization="none")
        np.testing.assert_allclose(
            small_blocks.h_diagonal(block_size=3),
            np.diagonal(dense["h"]),
            atol=1e-10,
        )


class TestValidation:
    def test_u_index_bounds(self, queries, random_graph):
        with pytest.raises(IndexError):
            queries.h_row(random_graph.num_u)
        with pytest.raises(IndexError):
            queries.mhs(0, random_graph.num_u)

    def test_v_index_bounds(self, queries, random_graph):
        with pytest.raises(IndexError):
            queries.mhp(0, random_graph.num_v)

    def test_negative_tau(self, random_graph):
        with pytest.raises(ValueError):
            MeasureQueries(random_graph, UniformPMF(tau=5), -1)


class TestSeededProbing:
    def test_seed_fixes_schedule_not_values(self, random_graph, dense):
        # The probe-block schedule is a seeded permutation; the diagonal
        # entries are bit-identical whatever the schedule.
        anchor = MeasureQueries(
            random_graph, PMF, TAU, normalization="none"
        ).h_diagonal()
        for seed in (0, 7, 1234):
            probed = MeasureQueries(
                random_graph, PMF, TAU, normalization="none"
            ).h_diagonal(block_size=3, seed=seed)
            np.testing.assert_array_equal(probed, anchor)
        np.testing.assert_allclose(anchor, np.diagonal(dense["h"]), atol=1e-10)


class TestEngineDelegation:
    def test_rows_bitwise_identical_to_similarity_engine(self, random_graph):
        # MeasureQueries is a thin veneer: one-hot applies route through the
        # blocked SimilarityEngine, so single rows are its rows bit-for-bit.
        from repro.tasks import SimilarityEngine

        queries = MeasureQueries(random_graph, PMF, TAU, normalization="none")
        engine = SimilarityEngine(random_graph, PMF, TAU, normalization="none")
        for u in (0, random_graph.num_u - 1):
            np.testing.assert_array_equal(
                queries.h_row(u), engine.h_rows([u])[0]
            )
            np.testing.assert_array_equal(
                queries.mhp_row(u), engine.mhp_rows([u])[0]
            )
