"""Tests for warm-started SVD refresh (repro.linalg.refresh) and its wiring.

Covers the three layers of the incremental pipeline's refit step:

* ``refresh_svd`` — warm acceptance, bit-identical cold fallback for every
  rejection reason, and the matvec savings the warm schedule exists for.
* ``SpectrumCache`` warm mode — nearest-ancestor lookup on a miss.
* ``GEBEPoisson(warm_start=...)`` — the solver-level entry point and its
  ``metadata["refresh"]`` record.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.core import GEBEPoisson
from repro.datasets import erdos_renyi_bipartite
from repro.graph import DeltaLog, apply_deltas
from repro.linalg import (
    SpectrumCache,
    default_residual_tolerance,
    exact_svd,
    randomized_svd,
    refresh_svd,
    svd_residual,
    warm_basis_from_embedding,
    warm_iteration_count,
)


def _perturbed(matrix, scale=1e-3, seed=99):
    """The matrix plus a small random perturbation of its stored values."""
    out = matrix.copy()
    rng = np.random.default_rng(seed)
    out.data = out.data * (1.0 + scale * rng.standard_normal(out.data.shape))
    return out


@pytest.fixture
def sparse_w():
    return erdos_renyi_bipartite(60, 40, 400, weighted=True, seed=2).w


class TestWarmIterationCount:
    def test_strictly_below_cold_schedule(self):
        from repro.linalg import krylov_iteration_count

        for n, eps in [(1000, 0.1), (10_000, 0.1), (1000, 0.05)]:
            cold = krylov_iteration_count(n, eps)
            warm = warm_iteration_count(n, eps)
            assert 1 <= warm < cold


class TestRefreshSVD:
    def test_warm_accepted_on_small_delta(self, sparse_w):
        k = 8
        base = randomized_svd(sparse_w, k, rng=np.random.default_rng(0))
        nearby = _perturbed(sparse_w)
        svd, info = refresh_svd(nearby, k, warm_start=base.u, seed=0)
        assert info.mode == "warm"
        assert info.reason == "ok"
        assert info.residual <= info.tolerance
        assert info.warm_rank == k
        # The warm result is a genuine factorization of the new matrix.
        assert svd_residual(nearby, svd) <= info.tolerance

    def test_warm_saves_matvecs(self, sparse_w):
        k = 8
        base = randomized_svd(sparse_w, k, rng=np.random.default_rng(0))
        nearby = _perturbed(sparse_w)
        with obs.collect() as cold_collector:
            refresh_svd(nearby, k, warm_start=None, seed=0)
        with obs.collect() as warm_collector:
            _, info = refresh_svd(nearby, k, warm_start=base.u, seed=0)
        assert info.mode == "warm"
        assert warm_collector.ops.sparse_matvecs < cold_collector.ops.sparse_matvecs
        assert warm_collector.ops.qr_factorizations < cold_collector.ops.qr_factorizations

    @pytest.mark.parametrize(
        "warm_start, reason",
        [
            (None, "no_warm_start"),
            ("wrong_rows", "incompatible"),
            ("empty", "incompatible"),
        ],
    )
    def test_structural_fallback_reasons(self, sparse_w, warm_start, reason):
        if warm_start == "wrong_rows":
            warm_start = np.ones((sparse_w.shape[0] + 1, 4))
        elif warm_start == "empty":
            warm_start = np.ones((sparse_w.shape[0], 0))
        svd, info = refresh_svd(sparse_w, 6, warm_start=warm_start, seed=0)
        assert info.mode == "cold_fallback"
        assert info.reason == reason
        assert np.isnan(info.residual)
        cold = randomized_svd(sparse_w, 6, rng=np.random.default_rng(0))
        np.testing.assert_array_equal(svd.u, cold.u)
        np.testing.assert_array_equal(svd.s, cold.s)

    def test_residual_fallback_is_bit_identical_cold(self, sparse_w):
        # A basis from an unrelated random matrix with a tiny tolerance: the
        # warm attempt must be rejected and the fallback must match a fit
        # that never warm-started, bit for bit.
        rng = np.random.default_rng(7)
        junk = np.linalg.qr(rng.standard_normal((sparse_w.shape[0], 6)))[0]
        svd, info = refresh_svd(
            sparse_w, 6, warm_start=junk, seed=0, residual_tolerance=1e-14
        )
        assert info.mode == "cold_fallback"
        assert info.reason == "residual"
        assert np.isfinite(info.residual) and info.residual > info.tolerance
        cold = randomized_svd(sparse_w, 6, rng=np.random.default_rng(0))
        np.testing.assert_array_equal(svd.u, cold.u)
        np.testing.assert_array_equal(svd.s, cold.s)
        np.testing.assert_array_equal(svd.vt, cold.vt)

    def test_to_dict_maps_nan_residual_to_none(self, sparse_w):
        _, info = refresh_svd(sparse_w, 4, warm_start=None, seed=0)
        payload = info.to_dict()
        assert payload["residual"] is None
        assert payload["mode"] == "cold_fallback"

    def test_default_tolerance_validates(self):
        assert default_residual_tolerance(0.1) == pytest.approx(np.sqrt(0.1) / 2)
        with pytest.raises(ValueError):
            default_residual_tolerance(0.0)


class TestWarmBasisFromEmbedding:
    def test_recovers_orthonormal_basis(self, sparse_w):
        svd = exact_svd(sparse_w, 6)
        scaled = svd.u * (svd.s[np.newaxis, :] + 1.0)  # a U = Phi * diag(c)
        basis = warm_basis_from_embedding(scaled)
        np.testing.assert_allclose(basis.T @ basis, np.eye(6), atol=1e-10)
        # Same column spans, up to sign.
        overlap = np.abs(np.sum(basis * svd.u, axis=0))
        np.testing.assert_allclose(overlap, np.ones(6), atol=1e-10)

    def test_drops_zero_padded_columns(self):
        u = np.zeros((10, 5))
        u[:, :3] = np.random.default_rng(0).standard_normal((10, 3))
        basis = warm_basis_from_embedding(u)
        assert basis.shape == (10, 3)

    def test_effective_dimension_slices_first(self):
        u = np.random.default_rng(0).standard_normal((10, 5))
        basis = warm_basis_from_embedding(u, effective_dimension=2)
        assert basis.shape == (10, 2)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError, match="must be 2-D"):
            warm_basis_from_embedding(np.ones(4))


class TestSpectrumCacheWarm:
    def test_nearest_ancestor_served_on_miss(self, sparse_w):
        cache = SpectrumCache()
        kwargs = dict(strategy="power", seed=0)
        _, first = cache.get_or_compute(sparse_w, 8, 0.1, **kwargs)
        assert first == "miss"
        nearby = _perturbed(sparse_w)
        _, second = cache.get_or_compute(nearby, 8, 0.1, warm=True, **kwargs)
        assert second == "warm"
        assert cache.warm_hits == 1
        assert cache.last_refresh is not None
        assert cache.last_refresh.mode == "warm"
        # The refreshed entry is cached under the new matrix's key.
        _, third = cache.get_or_compute(nearby, 8, 0.1, warm=True, **kwargs)
        assert third == "hit"

    def test_warm_candidate_ignores_other_settings(self, sparse_w):
        cache = SpectrumCache()
        cache.get_or_compute(sparse_w, 8, 0.1, strategy="power", seed=0)
        nearby = _perturbed(sparse_w)
        assert (
            cache.warm_candidate(nearby, 8, 0.1, strategy="power", seed=1) is None
        )
        assert (
            cache.warm_candidate(nearby, 8, 0.2, strategy="power", seed=0) is None
        )
        found = cache.warm_candidate(nearby, 8, 0.1, strategy="power", seed=0)
        assert found is not None and found.shape == (sparse_w.shape[0], 8)

    def test_warm_false_stays_cold(self, sparse_w):
        cache = SpectrumCache()
        cache.get_or_compute(sparse_w, 8, 0.1, strategy="power", seed=0)
        _, event = cache.get_or_compute(
            _perturbed(sparse_w), 8, 0.1, strategy="power", seed=0
        )
        assert event == "miss"
        assert cache.warm_hits == 0


class TestGEBEPoissonWarm:
    def test_explicit_warm_start_records_metadata_and_saves_matvecs(self):
        graph = erdos_renyi_bipartite(60, 40, 400, weighted=True, seed=2)
        base = GEBEPoisson(dimension=8, seed=0).fit(graph)
        log = DeltaLog.for_graph(graph)
        coo = graph.w.tocoo()
        for pos in range(0, coo.nnz, 50):
            log.reweight(
                int(coo.row[pos]), int(coo.col[pos]), float(coo.data[pos]) * 1.1
            )
        new_graph = apply_deltas(graph, log)
        with obs.collect() as cold_collector:
            GEBEPoisson(dimension=8, seed=0).fit(new_graph)
        basis = warm_basis_from_embedding(
            base.u, base.metadata.get("effective_dimension")
        )
        with obs.collect() as warm_collector:
            warm = GEBEPoisson(dimension=8, seed=0, warm_start=basis).fit(new_graph)
        refresh = warm.metadata["refresh"]
        assert refresh["mode"] == "warm"
        assert refresh["reason"] == "ok"
        assert warm_collector.ops.sparse_matvecs < cold_collector.ops.sparse_matvecs

    def test_cache_warm_mode_end_to_end(self):
        graph = erdos_renyi_bipartite(50, 30, 300, weighted=True, seed=4)
        cache = SpectrumCache()
        GEBEPoisson(dimension=6, seed=0, spectrum_cache=cache).fit(graph)
        log = DeltaLog.for_graph(graph)
        coo = graph.w.tocoo()
        log.reweight(int(coo.row[0]), int(coo.col[0]), float(coo.data[0]) * 1.2)
        new_graph = apply_deltas(graph, log)
        result = GEBEPoisson(
            dimension=6, seed=0, spectrum_cache=cache, warm=True
        ).fit(new_graph)
        assert result.metadata["spectrum_cache"] in ("warm", "warm_fallback")
        assert "refresh" in result.metadata
        if result.metadata["spectrum_cache"] == "warm":
            assert result.metadata["refresh"]["mode"] == "warm"

    def test_warm_quality_matches_cold(self):
        # The accepted warm refit is an eps-class approximation like the
        # cold one: compare both against the exact truncated SVD.
        graph = erdos_renyi_bipartite(60, 40, 400, weighted=True, seed=2)
        base = GEBEPoisson(dimension=8, seed=0).fit(graph)
        log = DeltaLog.for_graph(graph)
        coo = graph.w.tocoo()
        log.reweight(int(coo.row[0]), int(coo.col[0]), float(coo.data[0]) * 1.3)
        new_graph = apply_deltas(graph, log)
        basis = warm_basis_from_embedding(base.u)
        warm = GEBEPoisson(dimension=8, seed=0, warm_start=basis).fit(new_graph)
        cold = GEBEPoisson(dimension=8, seed=0).fit(new_graph)
        assert warm.metadata["refresh"]["mode"] == "warm"
        # Both are eps = 0.1 randomized approximations, not the same bits —
        # agreement is to the guarantee class, not machine precision.
        np.testing.assert_allclose(
            np.sort(warm.metadata["singular_values"]),
            np.sort(cold.metadata["singular_values"]),
            rtol=1e-2,
        )
