"""Tests for the versioned artifact store (repro.serve.artifacts)."""

import json

import numpy as np
import pytest

from repro.ann import INDEX_FILE, IVFIndex
from repro.core.quantize import dequantize_columns
from repro.graph import BipartiteGraph
from repro.serve import (
    ArtifactError,
    ArtifactStore,
    EmbeddingService,
    array_checksum,
    load_embedding_arrays,
)
from repro.serve.artifacts import (
    ARTIFACT_SCHEMA_NAME,
    ARTIFACT_SCHEMA_VERSION,
    EMBEDDINGS_FILE,
    MANIFEST_FILE,
    STAGING_PREFIX,
)


@pytest.fixture
def embeddings():
    rng = np.random.default_rng(11)
    return rng.standard_normal((20, 6)), rng.standard_normal((14, 6))


@pytest.fixture
def graph():
    rng = np.random.default_rng(5)
    edges = [
        (int(u), int(v), 1.0)
        for u in range(20)
        for v in rng.choice(14, size=4, replace=False)
    ]
    return BipartiteGraph.from_edges(edges)


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


class TestChecksum:
    def test_identical_arrays_collide(self):
        a = np.arange(12.0).reshape(3, 4)
        assert array_checksum(a) == array_checksum(a.copy())

    def test_dtype_changes_checksum(self):
        a = np.arange(12.0).reshape(3, 4)
        assert array_checksum(a) != array_checksum(a.astype(np.float32))

    def test_shape_changes_checksum(self):
        a = np.arange(12.0)
        assert array_checksum(a) != array_checksum(a.reshape(3, 4))

    def test_noncontiguous_view_matches_copy(self):
        a = np.arange(24.0).reshape(4, 6)
        view = a[:, ::2]
        assert array_checksum(view) == array_checksum(view.copy())


class TestPublishResolve:
    def test_publish_assigns_monotone_versions(self, store, embeddings):
        u, v = embeddings
        assert store.publish("toy", u, v).version == 1
        assert store.publish("toy", u * 2, v).version == 2
        assert store.versions("toy") == [1, 2]
        assert store.names() == ["toy"]

    def test_resolve_latest_and_pinned(self, store, embeddings):
        u, v = embeddings
        store.publish("toy", u, v)
        store.publish("toy", u * 2, v)
        assert store.resolve("toy").version == 2
        assert store.resolve("toy", 1).version == 1
        assert store.resolve("toy").tag == "toy@v2"

    def test_resolve_unknown_fails(self, store, embeddings):
        u, v = embeddings
        with pytest.raises(ArtifactError, match="no published versions"):
            store.resolve("toy")
        store.publish("toy", u, v)
        with pytest.raises(ArtifactError, match="no version 9"):
            store.resolve("toy", 9)

    def test_incomplete_version_is_invisible(self, store, embeddings):
        u, v = embeddings
        ref = store.publish("toy", u, v)
        # A half-written version (no manifest) must never be resolved.
        partial = ref.path.parent / "v0002"
        partial.mkdir()
        (partial / "u.npy").write_bytes(b"garbage")
        assert store.versions("toy") == [1]
        assert store.resolve("toy").version == 1

    def test_bad_names_rejected(self, store, embeddings):
        u, v = embeddings
        for name in ("", "../escape", "a/b", ".hidden"):
            with pytest.raises(ArtifactError, match="invalid artifact name"):
                store.publish(name, u, v)

    def test_non_2d_embeddings_rejected(self, store):
        with pytest.raises(ArtifactError, match="2-D"):
            store.publish("toy", np.zeros(4), np.zeros((4, 2)))

    def test_manifest_records_provenance(self, store, embeddings, graph):
        u, v = embeddings
        ref = store.publish(
            "toy", u, v, graph=graph, method="GEBE^p", dataset="toy",
            metadata={"note": "test"},
        )
        manifest = ref.manifest
        assert manifest["method"] == "GEBE^p"
        assert manifest["dataset"] == "toy"
        assert manifest["num_u"] == 20
        assert manifest["num_v"] == 14
        assert manifest["dimension"] == 6
        assert manifest["metadata"] == {"note": "test"}
        assert ref.has_graph


class TestVerifyLoad:
    def test_round_trip(self, store, embeddings, graph):
        u, v = embeddings
        store.publish("toy", u, v, graph=graph)
        loaded = store.load("toy")
        np.testing.assert_array_equal(loaded.u, u)
        np.testing.assert_array_equal(loaded.v, v)
        assert loaded.graph.num_u == graph.num_u
        assert loaded.graph.num_edges == graph.num_edges

    def test_verify_detects_bit_corruption(self, store, embeddings):
        u, v = embeddings
        ref = store.publish("toy", u, v)
        store.verify(ref)  # pristine artifact passes
        corrupted = np.load(ref.path / "u.npy").copy()
        corrupted[0, 0] += 1.0
        np.save(ref.path / "u.npy", corrupted)
        with pytest.raises(ArtifactError, match="checksum mismatch"):
            store.verify(store.resolve("toy"))
        with pytest.raises(ArtifactError, match="checksum mismatch"):
            store.load("toy")

    def test_verify_detects_shape_tamper(self, store, embeddings):
        u, v = embeddings
        ref = store.publish("toy", u, v)
        truncated = np.load(ref.path / "u.npy")[:-1].copy()
        np.save(ref.path / "u.npy", truncated)
        with pytest.raises(ArtifactError, match="manifest says"):
            store.verify(store.resolve("toy"))

    def test_verify_detects_extra_arrays(self, store, embeddings, graph):
        u, v = embeddings
        ref = store.publish("toy", u, v, graph=graph)
        arrays = dict(np.load(ref.path / "graph.npz"))
        arrays["sneaky"] = np.zeros(3)
        np.savez_compressed(ref.path / "graph.npz", **arrays)
        with pytest.raises(ArtifactError, match="unexpected arrays"):
            store.verify(store.resolve("toy"))

    def test_tampered_manifest_rejected(self, store, embeddings):
        u, v = embeddings
        ref = store.publish("toy", u, v)
        manifest = json.loads((ref.path / "manifest.json").read_text())
        manifest["artifact_version"] = 7
        (ref.path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ArtifactError, match="identifies itself"):
            store.resolve("toy")

    def test_load_without_verify_skips_checksums(self, store, embeddings):
        u, v = embeddings
        ref = store.publish("toy", u, v)
        tampered = np.load(ref.path / "u.npy").copy()
        tampered[0, 0] += 1.0
        np.save(ref.path / "u.npy", tampered)
        loaded = store.load("toy", verify=False)  # trusts the bytes
        assert loaded.u[0, 0] == tampered[0, 0]

    def test_graph_user_mismatch_rejected(self, store, embeddings):
        u, v = embeddings
        small = BipartiteGraph.from_edges([(0, 0, 1.0), (1, 1, 1.0)])
        with np.errstate(all="ignore"):
            store.publish("toy", u, v, graph=small)
        with pytest.raises(ArtifactError, match="graph is"):
            store.load("toy")


class TestMemoryMappedLoad:
    """The v2 per-array layout: mmap by default, eager on request."""

    def test_mmap_load_returns_memmaps(self, store, embeddings):
        u, v = embeddings
        store.publish("toy", u, v)
        loaded = store.load("toy")
        assert isinstance(loaded.u, np.memmap)
        assert isinstance(loaded.v, np.memmap)
        np.testing.assert_array_equal(np.asarray(loaded.u), u)
        np.testing.assert_array_equal(np.asarray(loaded.v), v)

    def test_eager_load_returns_plain_arrays(self, store, embeddings):
        u, v = embeddings
        store.publish("toy", u, v)
        loaded = store.load("toy", mmap=False)
        assert not isinstance(loaded.u, np.memmap)
        assert not isinstance(loaded.v, np.memmap)
        np.testing.assert_array_equal(loaded.u, u)

    def test_checksum_of_memmap_matches_manifest(self, store, embeddings):
        """array_checksum must hash a memmap to the same digest as the
        in-memory array it was saved from (the zero-copy verify path)."""
        u, v = embeddings
        ref = store.publish("toy", u, v)
        loaded = store.load("toy", verify=False)
        assert (
            array_checksum(loaded.v)
            == ref.manifest["files"]["v.npy"]["v"]["blake2b"]
        )
        assert array_checksum(loaded.v) == array_checksum(v)

    def test_layout_is_per_array_npy(self, store, embeddings):
        u, v = embeddings
        ref = store.publish("toy", u, v)
        assert (ref.path / "u.npy").is_file()
        assert (ref.path / "v.npy").is_file()
        assert not (ref.path / EMBEDDINGS_FILE).exists()
        assert ref.manifest["version"] == ARTIFACT_SCHEMA_VERSION
        assert ref.quantize is None


class TestQuantizedArtifacts:
    @pytest.mark.parametrize("quant_dtype", ["float16", "int8"])
    def test_round_trip_codes_and_scales(self, store, embeddings, quant_dtype):
        u, v = embeddings
        ref = store.publish("toy", u, v, quantize=quant_dtype)
        assert ref.quantize == quant_dtype
        assert ref.manifest["dtype"] == quant_dtype
        loaded = store.load("toy")
        assert loaded.quantize == quant_dtype
        assert str(loaded.u.dtype) == quant_dtype
        assert loaded.u_scales.shape == (u.shape[1],)
        assert loaded.v_scales.shape == (v.shape[1],)
        # Dequantization lands within the codec's per-column error bound.
        v_deq = dequantize_columns(np.asarray(loaded.v), loaded.v_scales)
        err = np.abs(v_deq - v).max(axis=0)
        scale = np.abs(v).max(axis=0)
        bound = scale * (2.0**-11 if quant_dtype == "float16" else 1 / 127)
        assert np.all(err <= bound + 1e-12)

    def test_scales_are_checksummed(self, store, embeddings):
        u, v = embeddings
        ref = store.publish("toy", u, v, quantize="int8")
        assert "u_scales.npy" in ref.manifest["files"]
        tampered = np.load(ref.path / "v_scales.npy").copy()
        tampered[0] *= 2.0
        np.save(ref.path / "v_scales.npy", tampered)
        with pytest.raises(ArtifactError, match="checksum mismatch"):
            store.load("toy")

    def test_bad_codec_rejected(self, store, embeddings):
        u, v = embeddings
        with pytest.raises(ArtifactError, match="quantize must be"):
            store.publish("toy", u, v, quantize="int4")

    def test_codes_dtype_cross_checked(self, store, embeddings):
        """Codes swapped for a different dtype must be refused even with
        verification off — the engine's validation is dtype-driven."""
        u, v = embeddings
        ref = store.publish("toy", u, v, quantize="int8")
        codes = np.load(ref.path / "u.npy")
        np.save(ref.path / "u.npy", codes.astype(np.float16))
        with pytest.raises(ArtifactError, match="manifest says"):
            store.load("toy", verify=False)

    def test_quantized_and_exact_versions_coexist(self, store, embeddings):
        u, v = embeddings
        store.publish("toy", u, v)
        store.publish("toy", u, v, quantize="float16")
        assert store.load("toy", 1).quantize is None
        assert store.load("toy", 2).quantize == "float16"


class TestV1LegacyArtifacts:
    """Hand-built schema-v1 artifacts must still resolve, verify, load."""

    def _publish_v1(self, store, u, v):
        base = store.root / "legacy"
        path = base / "v0001"
        path.mkdir(parents=True)
        np.savez_compressed(path / EMBEDDINGS_FILE, u=u, v=v)
        manifest = {
            "schema": ARTIFACT_SCHEMA_NAME,
            "version": 1,
            "name": "legacy",
            "artifact_version": 1,
            "created": "2026-01-01T00:00:00Z",
            "method": None,
            "dataset": None,
            "dimension": int(u.shape[1]),
            "num_u": int(u.shape[0]),
            "num_v": int(v.shape[0]),
            "dtype": str(u.dtype),
            "files": {
                EMBEDDINGS_FILE: {
                    name: {
                        "dtype": str(array.dtype),
                        "shape": [int(dim) for dim in array.shape],
                        "blake2b": array_checksum(array),
                    }
                    for name, array in (("u", u), ("v", v))
                }
            },
            "metadata": {},
        }
        (path / MANIFEST_FILE).write_text(json.dumps(manifest))
        return path

    def test_v1_round_trip(self, store, embeddings):
        u, v = embeddings
        self._publish_v1(store, u, v)
        ref = store.resolve("legacy")
        assert ref.manifest["version"] == 1
        assert ref.quantize is None
        store.verify(ref)
        loaded = store.load("legacy")
        assert not isinstance(loaded.u, np.memmap)  # npz: always eager
        np.testing.assert_array_equal(loaded.u, u)
        np.testing.assert_array_equal(loaded.v, v)
        assert ArtifactStore.v_checksum(ref) == array_checksum(v)

    def test_v1_corruption_detected(self, store, embeddings):
        u, v = embeddings
        path = self._publish_v1(store, u, v)
        arrays = dict(np.load(path / EMBEDDINGS_FILE))
        arrays["u"] = arrays["u"].copy()
        arrays["u"][0, 0] += 1.0
        np.savez_compressed(path / EMBEDDINGS_FILE, **arrays)
        with pytest.raises(ArtifactError, match="checksum mismatch"):
            store.load("legacy")

    def test_republish_upgrades_schema(self, store, embeddings):
        u, v = embeddings
        self._publish_v1(store, u, v)
        ref = store.publish("legacy", u, v)
        assert ref.version == 2
        assert ref.manifest["version"] == ARTIFACT_SCHEMA_VERSION
        assert isinstance(store.load("legacy").u, np.memmap)


class TestLoadEmbeddingArrays:
    def test_valid_bundle_round_trips(self, tmp_path, embeddings):
        u, v = embeddings
        path = tmp_path / "emb.npz"
        np.savez_compressed(path, u=u, v=v)
        u2, v2 = load_embedding_arrays(path)
        np.testing.assert_array_equal(u2, u)
        np.testing.assert_array_equal(v2, v)

    def test_missing_array_rejected(self, tmp_path, embeddings):
        u, _ = embeddings
        path = tmp_path / "emb.npz"
        np.savez_compressed(path, u=u)
        with pytest.raises(ArtifactError, match="missing arrays"):
            load_embedding_arrays(path)

    def test_wrong_rank_rejected(self, tmp_path):
        path = tmp_path / "emb.npz"
        np.savez_compressed(path, u=np.zeros(4), v=np.zeros((4, 2)))
        with pytest.raises(ArtifactError, match="'u' must be 2-D"):
            load_embedding_arrays(path)

    def test_integer_dtype_rejected(self, tmp_path):
        path = tmp_path / "emb.npz"
        np.savez_compressed(
            path, u=np.zeros((3, 2), dtype=np.int64), v=np.zeros((3, 2))
        )
        with pytest.raises(ArtifactError, match="must be floating"):
            load_embedding_arrays(path)

    def test_nan_rejected(self, tmp_path):
        path = tmp_path / "emb.npz"
        u = np.zeros((3, 2))
        u[1, 1] = np.nan
        np.savez_compressed(path, u=u, v=np.zeros((3, 2)))
        with pytest.raises(ArtifactError, match="non-finite"):
            load_embedding_arrays(path)

    def test_dimension_mismatch_rejected(self, tmp_path):
        path = tmp_path / "emb.npz"
        np.savez_compressed(path, u=np.zeros((3, 2)), v=np.zeros((3, 4)))
        with pytest.raises(ArtifactError, match="dimension mismatch"):
            load_embedding_arrays(path)

    def test_missing_file_reports_path(self, tmp_path):
        with pytest.raises(ArtifactError, match="cannot read embedding bundle"):
            load_embedding_arrays(tmp_path / "nope.npz")

    def test_non_npz_garbage_rejected(self, tmp_path):
        path = tmp_path / "emb.npz"
        path.write_bytes(b"not a zip archive")
        with pytest.raises(ArtifactError, match="cannot read embedding bundle"):
            load_embedding_arrays(path)


class TestIndexProvenance:
    """The "index from another artifact version" failure mode.

    ``repro index`` stamps the built IVF index with the served version's
    embedding digest (straight from the manifest); the serving path must
    refuse an index whose digest disagrees with the embeddings it is asked
    to route — pointedly, naming the rebuild command — instead of silently
    returning wrong neighbors.
    """

    def _index_for(self, store, version):
        """Build and save a correct index for ``toy@v<version>``."""
        ref = store.resolve("toy", version)
        loaded = store.load("toy", version)
        digest = ArtifactStore.v_checksum(ref)
        index = IVFIndex.build(
            loaded.v, n_cells=4, seed=0, v_checksum=digest, source=ref.tag
        )
        index.save(ref.path / INDEX_FILE)
        return ref

    def test_matching_index_serves_exactly(self, store, embeddings):
        u, v = embeddings
        store.publish("toy", u, v)
        self._index_for(store, 1)
        plain = EmbeddingService(store, "toy")
        ann = EmbeddingService(store, "toy", ann=True)  # full probe: exact
        users = list(range(u.shape[0]))
        np.testing.assert_array_equal(
            ann.top_items(users, 5)["items"],
            plain.top_items(users, 5)["items"],
        )

    def test_missing_index_names_the_build_command(self, store, embeddings):
        u, v = embeddings
        store.publish("toy", u, v)
        with pytest.raises(ArtifactError, match="repro index"):
            EmbeddingService(store, "toy", ann=True)

    def test_index_from_other_version_rejected(self, store, embeddings):
        """v1's index copied into v2 (same shape, different embeddings):
        the digest cross-check must catch it at load, before any query."""
        u, v = embeddings
        ref_v1 = store.publish("toy", u, v)
        ref_v2 = store.publish("toy", u, v * 1.5)
        self._index_for(store, 1)
        (ref_v2.path / INDEX_FILE).write_bytes(
            (ref_v1.path / INDEX_FILE).read_bytes()
        )
        with pytest.raises(ArtifactError, match="checksum"):
            EmbeddingService(store, "toy", version=2, ann=True)
        # The pointed message tells the operator what to do about it.
        with pytest.raises(ArtifactError, match="repro index"):
            EmbeddingService(store, "toy", version=2, ann=True)

    def test_republished_embeddings_invalidate_index(self, store, embeddings):
        """Same version directory, tampered embeddings: even with manifest
        verification off, the index's own digest check still fires."""
        u, v = embeddings
        ref = store.publish("toy", u, v)
        self._index_for(store, 1)
        tampered = np.load(ref.path / "v.npy").copy()
        tampered[0, 0] += 1.0
        np.save(ref.path / "v.npy", tampered)
        with pytest.raises(ArtifactError, match="checksum"):
            EmbeddingService(store, "toy", ann=True, verify=False)


def _dir_bytes(path):
    return sum(p.stat().st_size for p in path.iterdir() if p.is_file())


class TestDeltaPublish:
    """Schema v3: ``publish(..., base_version=)`` records unchanged files
    as ``file_refs`` pointers instead of rewriting the bytes."""

    def test_unchanged_graph_becomes_a_reference(self, store, embeddings, graph):
        u, v = embeddings
        store.publish("toy", u, v, graph=graph)
        ref = store.publish("toy", u * 2, v * 2, graph=graph, base_version=1)
        assert ref.base_version == 1
        assert ref.file_refs == {"graph.npz": 1}
        assert not (ref.path / "graph.npz").exists()
        assert (ref.path / "u.npy").is_file()

    def test_unchanged_embeddings_become_references(self, store, embeddings, graph):
        """The ingest step: new graph, byte-identical embeddings."""
        u, v = embeddings
        store.publish("toy", u, v, graph=graph)
        ref = store.publish("toy", u, v, graph=graph, base_version=1)
        # Graph is identical too, so everything is a reference.
        assert set(ref.file_refs) == {"u.npy", "v.npy", "graph.npz"}
        assert not (ref.path / "u.npy").exists()

    def test_delta_publish_writes_fewer_bytes_than_full(
        self, store, embeddings, graph
    ):
        u, v = embeddings
        store.publish("toy", u, v, graph=graph)
        delta_ref = store.publish(
            "toy", u * 2, v * 2, graph=graph, base_version=1
        )
        full_ref = store.publish("toy", u * 2, v * 2, graph=graph)
        assert _dir_bytes(delta_ref.path) < _dir_bytes(full_ref.path)

    def test_chain_load_round_trips(self, store, embeddings, graph):
        u, v = embeddings
        store.publish("toy", u, v, graph=graph)
        store.publish("toy", u * 2, v, graph=graph, base_version=1)
        loaded = store.load("toy", 2)
        np.testing.assert_array_equal(np.asarray(loaded.u), u * 2)
        np.testing.assert_array_equal(np.asarray(loaded.v), v)
        assert loaded.graph is not None
        assert loaded.graph.num_edges == graph.num_edges

    def test_transitive_chain_resolves(self, store, embeddings, graph):
        """v3 references v2's graph which is itself a reference to v1."""
        u, v = embeddings
        store.publish("toy", u, v, graph=graph)
        store.publish("toy", u * 2, v, graph=graph, base_version=1)
        ref = store.publish("toy", u * 3, v, graph=graph, base_version=2)
        assert ref.file_refs["graph.npz"] == 2
        store.verify(ref)
        loaded = store.load("toy", 3)
        np.testing.assert_array_equal(np.asarray(loaded.u), u * 3)
        assert loaded.graph is not None

    def test_verify_names_base_version_on_tamper(self, store, embeddings, graph):
        """Corruption in a referenced base must fail the *delta* version's
        verification and say where the broken bytes live."""
        u, v = embeddings
        base = store.publish("toy", u, v, graph=graph)
        store.publish("toy", u * 2, v, graph=graph, base_version=1)
        arrays = dict(np.load(base.path / "graph.npz"))
        arrays["data"] = arrays["data"].copy()
        arrays["data"][0] += 1.0
        np.savez_compressed(base.path / "graph.npz", **arrays)
        with pytest.raises(ArtifactError, match="base version v0001"):
            store.verify(store.resolve("toy", 2))

    def test_missing_base_fails_pointedly(self, store, embeddings, graph):
        u, v = embeddings
        base = store.publish("toy", u, v, graph=graph)
        store.publish("toy", u * 2, v, graph=graph, base_version=1)
        # Simulate an out-of-band deletion that bypassed the delete() guard.
        import shutil

        shutil.rmtree(base.path)
        with pytest.raises(ArtifactError, match="cannot be resolved"):
            store.load("toy", 2)

    def test_unknown_base_version_rejected(self, store, embeddings):
        u, v = embeddings
        store.publish("toy", u, v)
        with pytest.raises(ArtifactError, match="cannot delta-publish"):
            store.publish("toy", u, v, base_version=9)


class TestRetention:
    def test_delete_refuses_referenced_version(self, store, embeddings, graph):
        u, v = embeddings
        store.publish("toy", u, v, graph=graph)
        store.publish("toy", u * 2, v, graph=graph, base_version=1)
        with pytest.raises(ArtifactError, match="reference its files"):
            store.delete("toy", 1)
        # Deleting the referencing version first unblocks the base.
        store.delete("toy", 2)
        store.delete("toy", 1)
        assert store.versions("toy") == []

    def test_prune_keeps_newest_and_chain_closure(self, store, embeddings, graph):
        u, v = embeddings
        store.publish("toy", u, v, graph=graph)  # v1
        store.publish("toy", u * 2, v, graph=graph, base_version=1)  # v2 -> v1
        store.publish("toy", u * 3, v, graph=graph)  # v3 (full)
        store.publish("toy", u * 4, v, graph=graph, base_version=3)  # v4 -> v3
        deleted, retained = store.prune("toy", keep=1)
        # v4 is kept, and it pins v3; v1/v2 go.
        assert deleted == [1, 2]
        assert retained == [3, 4]
        # The survivor still verifies and loads through its chain.
        store.verify(store.resolve("toy", 4))
        assert store.load("toy", 4).graph is not None

    def test_prune_transitive_pinning(self, store, embeddings, graph):
        u, v = embeddings
        store.publish("toy", u, v, graph=graph)  # v1
        store.publish("toy", u * 2, v, graph=graph, base_version=1)  # v2
        store.publish("toy", u * 3, v, graph=graph, base_version=2)  # v3
        deleted, retained = store.prune("toy", keep=1)
        # v3's graph ref chain is v3 -> v2 -> v1: nothing can go.
        assert deleted == []
        assert retained == [1, 2, 3]

    def test_prune_validates_keep(self, store, embeddings):
        u, v = embeddings
        store.publish("toy", u, v)
        with pytest.raises(ArtifactError, match="keep must be >= 1"):
            store.prune("toy", keep=0)


class TestStagingCleanup:
    def test_failed_publish_leaves_no_staging_dir(
        self, store, embeddings, graph, monkeypatch
    ):
        u, v = embeddings
        store.publish("toy", u, v)

        import repro.serve.artifacts as artifacts_module

        def boom(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(artifacts_module, "save_npz", boom)
        with pytest.raises(OSError, match="disk full"):
            store.publish("toy", u, v, graph=graph)
        leftovers = [
            p
            for p in (store.root / "toy").iterdir()
            if p.name.startswith(STAGING_PREFIX)
        ]
        assert leftovers == []
        # The failed attempt consumed no version number.
        assert store.versions("toy") == [1]

    def test_init_sweep_removes_stale_staging(self, tmp_path, embeddings):
        u, v = embeddings
        store = ArtifactStore(tmp_path / "store")
        store.publish("toy", u, v)
        stale = store.root / "toy" / f"{STAGING_PREFIX}v0002-crashed"
        stale.mkdir()
        (stale / "u.npy").write_bytes(b"partial")
        reopened = ArtifactStore(tmp_path / "store")
        assert not stale.exists()
        assert reopened.versions("toy") == [1]
