"""Micro-batcher equivalence and lifecycle tests (repro.serve.batcher).

The load-bearing property: however concurrent single-user requests
interleave, and however the worker happens to slice them into batches, every
caller receives lists **element-identical** to
:meth:`repro.core.base.EmbeddingResult.top_items_batch` — the offline
serving read-out.  That holds because ``select_topn``'s total order (score
descending, index ascending) makes every top-``n`` list the length-``n``
prefix of the top-``m`` list for ``m >= n``, so scoring a batch at
``n_max`` and slicing prefixes loses nothing.

This file is in the Makefile's THREADED_TESTS: it reruns under
``REPRO_NUM_THREADS=4`` so the property also holds when the scoring engine
itself runs on a parallel executor.
"""

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.base import EmbeddingResult
from repro.graph import BipartiteGraph
from repro.serve import BatcherClosed, MicroBatcher, QueueFull
from repro.tasks import TopKEngine

NUM_USERS = 30
NUM_ITEMS = 25
N_CAP = 12  # largest n any generated request asks for


@pytest.fixture(scope="module")
def result():
    rng = np.random.default_rng(7)
    return EmbeddingResult(
        u=rng.standard_normal((NUM_USERS, 5)),
        v=rng.standard_normal((NUM_ITEMS, 5)),
        method="random",
    )


@pytest.fixture(scope="module")
def graph():
    rng = np.random.default_rng(13)
    edges = [
        (int(u), int(v), 1.0)
        for u in range(NUM_USERS)
        for v in rng.choice(NUM_ITEMS, size=4, replace=False)
    ]
    return BipartiteGraph.from_edges(edges)


@pytest.fixture(scope="module")
def reference(result, graph):
    """Offline truth at N_CAP; any smaller n is a prefix of these rows."""
    items = result.top_items_batch(N_CAP, exclude=graph)
    scores = np.take_along_axis(result.u @ result.v.T, items, axis=1)
    return items, scores


@pytest.fixture(scope="module")
def score_fn(result, graph):
    """What the service binds in production: a masked engine read-out."""
    engine = TopKEngine.from_result(result)

    def score(users, n):
        item_blocks, score_blocks = [], []
        for _, items, scores in engine.iter_top_items(
            n, users=users, exclude=graph, with_scores=True
        ):
            item_blocks.append(items)
            score_blocks.append(scores)
        return np.concatenate(item_blocks), np.concatenate(score_blocks)

    return score


class TestEquivalence:
    @settings(deadline=None, max_examples=25)
    @given(
        requests=st.lists(
            st.tuples(
                st.integers(0, NUM_USERS - 1), st.integers(1, N_CAP)
            ),
            min_size=1,
            max_size=32,
        ),
        max_batch=st.integers(1, 16),
        max_wait_ms=st.sampled_from([0.0, 0.5, 2.0]),
    )
    def test_any_interleaving_matches_top_items_batch(
        self, score_fn, reference, requests, max_batch, max_wait_ms
    ):
        """Arbitrary request streams, batch sizes, and coalescing windows
        all reproduce ``top_items_batch`` exactly — mixed ``n`` included."""
        expected_items, _ = reference
        with MicroBatcher(
            score_fn, max_batch=max_batch, max_wait_ms=max_wait_ms
        ) as batcher:
            futures = [batcher.submit(u, n) for u, n in requests]
            for (u, n), future in zip(requests, futures):
                items, scores = future.result(timeout=30)
                np.testing.assert_array_equal(items, expected_items[u][:n])
                assert scores is None

    def test_concurrent_submitters_match_reference(self, score_fn, reference):
        """4 client threads hammering one batcher — still element-identical."""
        expected_items, _ = reference
        mismatches = []
        with MicroBatcher(score_fn, max_batch=8, max_wait_ms=1.0) as batcher:

            def client(seed: int) -> None:
                rng = np.random.default_rng(seed)
                for _ in range(20):
                    user = int(rng.integers(NUM_USERS))
                    n = int(rng.integers(1, N_CAP + 1))
                    items, _ = batcher.submit(user, n).result(timeout=30)
                    if not np.array_equal(items, expected_items[user][:n]):
                        mismatches.append((user, n))

            threads = [
                threading.Thread(target=client, args=(seed,))
                for seed in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert mismatches == []

    def test_with_scores_slices_matching_prefix(self, score_fn, reference):
        expected_items, expected_scores = reference
        with MicroBatcher(score_fn, max_batch=4, max_wait_ms=1.0) as batcher:
            futures = [
                batcher.submit(user, n, with_scores=True)
                for user, n in [(0, 3), (1, N_CAP), (0, 1), (5, 7)]
            ]
            for (user, n), future in zip(
                [(0, 3), (1, N_CAP), (0, 1), (5, 7)], futures
            ):
                items, scores = future.result(timeout=30)
                np.testing.assert_array_equal(items, expected_items[user][:n])
                np.testing.assert_allclose(
                    scores, expected_scores[user][:n], rtol=1e-12
                )

    def test_coalescing_actually_happens(self, score_fn):
        """A pre-filled queue drains as batches, not one GEMM per request."""
        gate = threading.Event()

        def gated(users, n):
            gate.wait(10)
            return score_fn(users, n)

        with MicroBatcher(gated, max_batch=16, max_wait_ms=50.0) as batcher:
            futures = [batcher.submit(u % NUM_USERS, 3) for u in range(12)]
            gate.set()
            for future in futures:
                future.result(timeout=30)
            stats = batcher.stats.snapshot()
        assert stats["requests"] == 12
        assert stats["batches"] < 12
        assert stats["max_batch_observed"] > 1
        assert stats["mean_batch"] > 1.0


class TestLifecycle:
    def test_queue_full_sheds_instead_of_blocking(self, score_fn):
        started, gate = threading.Event(), threading.Event()

        def blocked(users, n):
            started.set()
            gate.wait(10)
            return score_fn(users, n)

        batcher = MicroBatcher(
            blocked, max_batch=1, max_wait_ms=0.0, max_queue=2
        )
        try:
            first = batcher.submit(0, 3)
            assert started.wait(10)  # worker is busy; queue is free again
            queued = [batcher.submit(u, 3) for u in (1, 2)]
            with pytest.raises(QueueFull, match="at capacity"):
                batcher.submit(3, 3)
            gate.set()
            for future in (first, *queued):
                future.result(timeout=30)
        finally:
            gate.set()
            batcher.close()

    def test_close_drains_then_rejects(self, score_fn, reference):
        expected_items, _ = reference
        batcher = MicroBatcher(score_fn, max_batch=4, max_wait_ms=0.0)
        futures = [batcher.submit(u, 4) for u in range(6)]
        batcher.close()
        for user, future in enumerate(futures):
            items, _ = future.result(timeout=30)
            np.testing.assert_array_equal(items, expected_items[user][:4])
        # The typed subclass the HTTP tier maps to a clean 503 — a request
        # racing stop() is an availability event, not a 500.
        with pytest.raises(BatcherClosed, match="closed"):
            batcher.submit(0, 3)
        assert issubclass(BatcherClosed, RuntimeError)
        batcher.close()  # idempotent

    def test_scoring_error_reaches_every_caller(self, score_fn):
        calls = []

        def flaky(users, n):
            calls.append(users.size)
            if len(calls) == 1:
                raise ValueError("model exploded")
            return score_fn(users, n)

        gate = threading.Event()

        def gated(users, n):
            gate.wait(10)
            return flaky(users, n)

        with MicroBatcher(gated, max_batch=8, max_wait_ms=50.0) as batcher:
            doomed = [batcher.submit(u, 3) for u in range(3)]
            gate.set()
            for future in doomed:
                with pytest.raises(ValueError, match="model exploded"):
                    future.result(timeout=30)
            # The worker survives a scoring failure and keeps serving.
            items, _ = batcher.submit(0, 3).result(timeout=30)
            assert items.shape == (3,)

    def test_invalid_parameters_rejected(self, score_fn):
        with pytest.raises(ValueError, match="max_batch"):
            MicroBatcher(score_fn, max_batch=0)
        with pytest.raises(ValueError, match="max_wait_ms"):
            MicroBatcher(score_fn, max_wait_ms=-1.0)
        with pytest.raises(ValueError, match="max_queue"):
            MicroBatcher(score_fn, max_queue=0)
        with MicroBatcher(score_fn) as batcher:
            with pytest.raises(ValueError, match="n must be"):
                batcher.submit(0, -1)
