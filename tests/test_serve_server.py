"""End-to-end tests for the HTTP serving front end (repro.serve.server).

The acceptance path from the serving design: publish an artifact, stand the
server up in-process, hammer ``POST /v1/topk`` from concurrent client
threads, and require every response **element-identical** to the offline
:class:`~repro.tasks.topk.TopKEngine` read-out.  Load-shedding (429 on a
full admission queue, 503 on a blown deadline) and hot reload under live
traffic are exercised against a real socket, not mocks.

Runs under ``REPRO_NUM_THREADS=4`` as well (Makefile THREADED_TESTS): the
whole tier must hold regardless of how the scoring executor is sized.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.base import EmbeddingResult
from repro.graph import BipartiteGraph
from repro.serve import (
    ArtifactStore,
    EmbeddingServer,
    EmbeddingService,
    ServerConfig,
)
from repro.serve.server import MAX_BODY_BYTES
from repro.tasks import TopKEngine


@pytest.fixture(scope="module")
def result():
    rng = np.random.default_rng(21)
    return EmbeddingResult(
        u=rng.standard_normal((50, 8)),
        v=rng.standard_normal((30, 8)),
        method="random",
    )


@pytest.fixture(scope="module")
def graph():
    rng = np.random.default_rng(22)
    edges = [
        (int(u), int(v), 1.0)
        for u in range(50)
        for v in rng.choice(30, size=4, replace=False)
    ]
    return BipartiteGraph.from_edges(edges)


@pytest.fixture
def store(tmp_path, result, graph):
    store = ArtifactStore(tmp_path / "store")
    store.publish("toy", result.u, result.v, graph=graph, method="random")
    return store


@pytest.fixture
def service(store):
    return EmbeddingService(store, "toy")


@pytest.fixture
def server(service):
    with EmbeddingServer(service, ServerConfig()) as srv:
        yield srv


def _call(server, path, payload=None, *, method=None, raw=None):
    """One HTTP round trip; returns (status, decoded JSON body)."""
    data = raw
    if data is None and payload is not None:
        data = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        server.url + path,
        data=data,
        method=method or ("POST" if data is not None else "GET"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        body = error.read()
        return error.code, json.loads(body) if body else {}


def _slow_service(service, delay):
    """Shadow ``top_items`` with a delayed version (admission/deadline tests)."""
    original = service.top_items

    def slow(users, n, **kwargs):
        time.sleep(delay)
        return original(users, n, **kwargs)

    service.top_items = slow


class TestRoundTrip:
    def test_concurrent_clients_match_offline_engine(
        self, server, result, graph
    ):
        """The acceptance criterion: publish -> serve -> 4 concurrent client
        threads -> every list element-identical to the offline engine."""
        engine = TopKEngine.from_result(result)
        expected = engine.top_items(8, exclude=graph)
        failures = []

        def client(seed: int) -> None:
            rng = np.random.default_rng(seed)
            for _ in range(10):
                user = int(rng.integers(50))
                status, body = _call(
                    server, "/v1/topk", {"user": user, "n": 8}
                )
                if status != 200:
                    failures.append((user, status, body))
                elif body["items"][0] != expected[user].tolist():
                    failures.append((user, "mismatch", body["items"][0]))

        threads = [
            threading.Thread(target=client, args=(seed,)) for seed in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert failures == []

        status, metrics = _call(server, "/metrics")
        assert status == 200
        assert metrics["counters"]["topk_candidates"] > 0
        assert metrics["counters"]["shed"] == 0

    def test_single_user_rides_the_batcher(self, server, result, graph):
        status, body = _call(server, "/v1/topk", {"user": 3, "n": 5})
        assert status == 200
        assert body["batched"] is True
        assert body["model"] == "toy@v1"
        engine = TopKEngine.from_result(result)
        assert body["items"] == [engine.top_items(5, users=[3], exclude=graph)[0].tolist()]

    def test_multi_user_goes_direct(self, server, result, graph):
        users = [0, 7, 49]
        status, body = _call(server, "/v1/topk", {"users": users, "n": 6})
        assert status == 200
        assert body["batched"] is False
        engine = TopKEngine.from_result(result)
        expected = engine.top_items(6, users=np.array(users), exclude=graph)
        assert body["items"] == [row.tolist() for row in expected]

    def test_with_scores_and_no_exclude(self, server, result):
        status, body = _call(
            server,
            "/v1/topk",
            {"user": 2, "n": 4, "with_scores": True, "exclude": False},
        )
        assert status == 200
        assert body["batched"] is False  # unmasked queries bypass the batcher
        raw = result.u[2] @ result.v.T
        np.testing.assert_allclose(
            body["scores"][0], np.sort(raw)[::-1][:4], rtol=1e-12
        )

    def test_healthz_reports_model(self, server):
        status, body = _call(server, "/healthz")
        assert status == 200
        assert body == {"status": "ok", "model": "toy@v1"}

    def test_metrics_shape(self, server):
        _call(server, "/v1/topk", {"user": 0})
        status, body = _call(server, "/metrics")
        assert status == 200
        assert body["model"] == "toy@v1"
        assert body["queue"]["max"] == 64
        assert body["batcher"]["requests"] >= 1
        assert set(body["counters"]) >= {
            "requests", "batched_requests", "batches", "shed",
            "deadline_exceeded", "reloads", "gemms", "topk_candidates",
        }


class TestValidation:
    @pytest.mark.parametrize(
        "payload, fragment",
        [
            ({}, "exactly one of"),
            ({"user": 1, "users": [2]}, "exactly one of"),
            ({"user": "alice"}, "'user' must be an integer"),
            ({"user": True}, "'user' must be an integer"),
            ({"users": []}, "non-empty integer list"),
            ({"users": "0,1"}, "non-empty integer list"),
            ({"users": [0, "x"]}, "non-empty integer list"),
            ({"user": -1}, "indices must be in"),
            ({"user": 50}, "indices must be in"),
            ({"user": 0, "n": -3}, "non-negative integer"),
            ({"user": 0, "n": 2.5}, "non-negative integer"),
            ({"user": 0, "deadline_ms": 0}, "positive number"),
        ],
    )
    def test_bad_bodies_rejected(self, server, payload, fragment):
        status, body = _call(server, "/v1/topk", payload)
        assert status == 400
        assert fragment in body["error"]

    def test_malformed_json_rejected(self, server):
        status, body = _call(server, "/v1/topk", raw=b"{not json")
        assert status == 400
        assert "malformed JSON" in body["error"]

    def test_non_object_body_rejected(self, server):
        status, body = _call(server, "/v1/topk", raw=b"[1, 2]")
        assert status == 400
        assert "JSON object" in body["error"]

    def test_oversized_body_rejected(self, server):
        # Declare an oversized body without sending it: the server must
        # reject on Content-Length alone, before reading a single byte.
        import http.client

        host, port = server.address
        conn = http.client.HTTPConnection(host, port, timeout=30)
        try:
            conn.putrequest("POST", "/v1/topk")
            conn.putheader("Content-Type", "application/json")
            conn.putheader("Content-Length", str(MAX_BODY_BYTES + 1))
            conn.endheaders()
            response = conn.getresponse()
            assert response.status == 413
            assert response.read()  # body delivered despite the early close
        finally:
            conn.close()

    def test_unknown_paths_404(self, server):
        assert _call(server, "/v2/topk", {"user": 0})[0] == 404
        assert _call(server, "/nope")[0] == 404

    def test_errors_never_kill_the_server(self, server):
        for _ in range(3):
            _call(server, "/v1/topk", raw=b"broken")
        status, _ = _call(server, "/v1/topk", {"user": 1})
        assert status == 200


class TestLoadShedding:
    def test_admission_full_returns_429(self, service):
        """max_queue=1 + a slow service + a burst -> 429s, no crash."""
        _slow_service(service, 0.2)
        config = ServerConfig(max_queue=1, batch=False, deadline_ms=10_000.0)
        with EmbeddingServer(service, config) as server:
            statuses = []
            barrier = threading.Barrier(8)

            def client() -> None:
                barrier.wait(10)
                statuses.append(_call(server, "/v1/topk", {"user": 0})[0])

            threads = [threading.Thread(target=client) for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert statuses.count(200) >= 1
            assert statuses.count(429) >= 1
            assert set(statuses) <= {200, 429}
            # The shed burst did not wedge anything: next request succeeds
            # and the shed counter saw every 429.
            status, metrics = _call(server, "/metrics")
            assert status == 200
            assert metrics["counters"]["shed"] == statuses.count(429)
            assert _call(server, "/v1/topk", {"user": 1})[0] == 200

    def test_blown_deadline_returns_503_direct(self, service):
        _slow_service(service, 0.15)
        config = ServerConfig(batch=False)
        with EmbeddingServer(service, config) as server:
            status, body = _call(
                server, "/v1/topk", {"user": 0, "deadline_ms": 40}
            )
            assert status == 503
            assert "deadline" in body["error"]
            _, metrics = _call(server, "/metrics")
            assert metrics["counters"]["deadline_exceeded"] == 1

    def test_blown_deadline_returns_503_batched(self, service):
        _slow_service(service, 0.25)
        with EmbeddingServer(service, ServerConfig()) as server:
            status, body = _call(
                server, "/v1/topk", {"user": 0, "deadline_ms": 40}
            )
            assert status == 503
            assert "deadline" in body["error"]


class TestReload:
    def test_reload_swaps_versions(self, server, store, result):
        store.publish("toy", result.u * 2.0, result.v, method="random")
        status, body = _call(server, "/admin/reload", {})
        assert status == 200
        assert body == {"previous": "toy@v1", "current": "toy@v2"}
        assert _call(server, "/healthz")[1]["model"] == "toy@v2"
        _, metrics = _call(server, "/metrics")
        assert metrics["counters"]["reloads"] == 1

    def test_reload_unknown_version_409(self, server):
        status, body = _call(server, "/admin/reload", {"version": 99})
        assert status == 409
        assert "reload failed" in body["error"]
        assert _call(server, "/healthz")[1]["model"] == "toy@v1"

    def test_reload_bad_version_type_400(self, server):
        status, _ = _call(server, "/admin/reload", {"version": "latest"})
        assert status == 400

    def test_reload_under_traffic_fails_no_request(
        self, server, store, result, graph
    ):
        """Hot swap with requests in flight: zero non-200 responses.

        v2 doubles U, which rescales every score without reordering any
        list, so responses from either version are element-identical — the
        swap must be invisible to clients.
        """
        engine = TopKEngine.from_result(result)
        expected = engine.top_items(6, exclude=graph)
        failures = []
        stop = threading.Event()

        def client(seed: int) -> None:
            rng = np.random.default_rng(seed)
            while not stop.is_set():
                user = int(rng.integers(50))
                status, body = _call(
                    server, "/v1/topk", {"user": user, "n": 6}
                )
                if status != 200:
                    failures.append((user, status, body))
                elif body["items"][0] != expected[user].tolist():
                    failures.append((user, "mismatch"))

        threads = [
            threading.Thread(target=client, args=(seed,)) for seed in range(4)
        ]
        for thread in threads:
            thread.start()
        store.publish(
            "toy", result.u * 2.0, result.v, graph=graph, method="random"
        )
        status, _ = _call(server, "/admin/reload", {})
        time.sleep(0.2)  # keep traffic flowing on the new model
        stop.set()
        for thread in threads:
            thread.join()
        assert status == 200
        assert failures == []
        assert _call(server, "/healthz")[1]["model"] == "toy@v2"


class TestShutdownRace:
    def test_request_racing_stop_gets_clean_503(self, service):
        """A single-user request that reaches the batcher after stop()
        closed it is an availability event: clean 503 ("server shutting
        down"), never a RuntimeError-turned-500."""
        with EmbeddingServer(service, ServerConfig()) as server:
            # stop() shuts the listener first, then the batcher — a request
            # already past admission can hit the closed batcher.  Reproduce
            # that interleaving deterministically.
            server._batcher.close()
            status, body = _call(server, "/v1/topk", {"user": 0, "n": 5})
        assert status == 503
        assert body["error"] == "server shutting down"
        assert service.metrics["requests"] == 0  # nothing was scored


class TestQuantizedServing:
    @pytest.mark.parametrize("codec", ["float16", "int8"])
    def test_metrics_report_quant_mode_and_residency(
        self, tmp_path, result, graph, codec
    ):
        store = ArtifactStore(tmp_path / "qstore")
        store.publish(
            "toy", result.u, result.v, graph=graph, method="random",
            quantize=codec,
        )
        service = EmbeddingService(store, "toy")
        with EmbeddingServer(service, ServerConfig()) as server:
            status, body = _call(server, "/metrics")
        assert status == 200
        assert body["quantize"] == codec
        assert body["bytes_resident"] == service.bytes_resident() > 0

    def test_metrics_report_exact_mode(self, server, service):
        status, body = _call(server, "/metrics")
        assert status == 200
        assert body["quantize"] is None
        assert body["bytes_resident"] == service.bytes_resident() > 0

    @pytest.mark.parametrize("codec", ["float16", "int8"])
    def test_quantized_responses_match_offline_quant_engine(
        self, tmp_path, result, graph, codec
    ):
        from repro.core.quantize import quantize_columns
        from repro.tasks.topk import QuantizedTopKEngine

        u_codes, u_scales = quantize_columns(result.u, codec)
        v_codes, v_scales = quantize_columns(result.v, codec)
        offline = QuantizedTopKEngine(
            u_codes, u_scales, v_codes, v_scales, quant_dtype=codec
        )
        expected = offline.top_items(6, exclude=graph)
        store = ArtifactStore(tmp_path / "qstore")
        store.publish(
            "toy", result.u, result.v, graph=graph, method="random",
            quantize=codec,
        )
        service = EmbeddingService(store, "toy")
        with EmbeddingServer(service, ServerConfig()) as server:
            status, body = _call(
                server, "/v1/topk", {"users": [0, 7, 49], "n": 6}
            )
        assert status == 200
        assert body["items"] == [
            expected[user].tolist() for user in (0, 7, 49)
        ]


class TestRouteTable:
    def test_routes_declare_every_endpoint(self):
        from repro.serve.server import ROUTES, Route

        table = {(route.verb, route.path) for route in ROUTES}
        assert table == {
            ("GET", "/healthz"),
            ("GET", "/metrics"),
            ("POST", "/v1/topk"),
            ("POST", "/v1/similar"),
            ("POST", "/admin/reload"),
        }
        for route in ROUTES:
            assert isinstance(route, Route)
            assert route.handler.startswith("handle_")

    def test_handlers_exist_on_the_server(self, server):
        from repro.serve.server import ROUTES

        for route in ROUTES:
            assert callable(getattr(server, route.handler))

    def test_unknown_path_is_404(self, server):
        status, body = _call(server, "/v1/nope", {"user": 1})
        assert status == 404


class TestSimilarEndpoint:
    @pytest.fixture(scope="class")
    def offline(self, graph):
        """Offline engines mirroring the service's similarity defaults."""
        from repro.core.pmf import PoissonPMF
        from repro.tasks import SimilarityEngine, transposed_graph

        u_engine = SimilarityEngine(
            graph, PoissonPMF(lam=1.0), 5, normalization="sym"
        )
        v_engine = SimilarityEngine(
            transposed_graph(graph), PoissonPMF(lam=1.0), 5,
            normalization="sym",
        )
        return {"u": u_engine, "v": v_engine}

    def test_single_source_rides_the_batcher(self, server, offline):
        expected, _ = offline["u"].query([3], 5, mode="mhs")
        status, body = _call(server, "/v1/similar", {"source": 3, "n": 5})
        assert status == 200
        assert body["batched"] is True
        assert body["model"] == "toy@v1"
        assert body["mode"] == "mhs" and body["side"] == "u"
        assert body["items"] == expected.tolist()

    def test_multi_source_goes_direct_with_scores(self, server, offline):
        sources = [0, 7, 49]
        expected, scores = offline["u"].query(
            sources, 6, mode="mhs", with_scores=True
        )
        status, body = _call(
            server,
            "/v1/similar",
            {"sources": sources, "n": 6, "with_scores": True},
        )
        assert status == 200
        assert body["batched"] is False
        assert body["items"] == expected.tolist()
        np.testing.assert_allclose(body["scores"], scores, rtol=0, atol=0)

    def test_mhp_mode(self, server, offline):
        expected, _ = offline["u"].query([2, 11], 4, mode="mhp")
        status, body = _call(
            server, "/v1/similar", {"sources": [2, 11], "n": 4, "mode": "mhp"}
        )
        assert status == 200
        assert body["mode"] == "mhp"
        assert body["items"] == expected.tolist()

    def test_v_side(self, server, offline):
        expected, _ = offline["v"].query([0, 29], 5, mode="mhs")
        status, body = _call(
            server, "/v1/similar", {"sources": [0, 29], "n": 5, "side": "v"}
        )
        assert status == 200
        assert body["side"] == "v"
        assert body["items"] == expected.tolist()

    def test_concurrent_batched_matches_offline(self, server, offline):
        expected, _ = offline["u"].query(list(range(50)), 5, mode="mhs")
        failures = []

        def client(seed: int) -> None:
            rng = np.random.default_rng(seed)
            for _ in range(8):
                source = int(rng.integers(50))
                status, body = _call(
                    server, "/v1/similar", {"source": source, "n": 5}
                )
                if status != 200:
                    failures.append((source, status, body))
                elif body["items"][0] != expected[source].tolist():
                    failures.append((source, "mismatch", body["items"][0]))

        threads = [
            threading.Thread(target=client, args=(seed,)) for seed in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert failures == []

    def test_metrics_count_similarity_work(self, server):
        _call(server, "/v1/similar", {"sources": [0, 1], "n": 3})
        _call(server, "/v1/similar", {"source": 5, "n": 3})
        status, body = _call(server, "/metrics")
        assert status == 200
        assert body["counters"]["similar_queries"] >= 3
        assert body["counters"]["similar_matvecs"] > 0
        assert "u/mhs" in body["similar_batchers"]
        assert body["similar_batchers"]["u/mhs"]["requests"] >= 1

    @pytest.mark.parametrize(
        "payload, fragment",
        [
            ({}, "exactly one of"),
            ({"source": 1, "sources": [2]}, "exactly one of"),
            ({"source": "alice"}, "'source' must be an integer"),
            ({"source": True}, "'source' must be an integer"),
            ({"sources": []}, "non-empty integer list"),
            ({"source": 50}, "indices must be in"),
            ({"source": 30, "side": "v"}, "indices must be in"),
            ({"source": 0, "side": "w"}, "side"),
            ({"source": 0, "mode": "cosine"}, "mode"),
            ({"source": 0, "n": -1}, "'n'"),
        ],
    )
    def test_rejects_bad_requests(self, server, payload, fragment):
        status, body = _call(server, "/v1/similar", payload)
        assert status == 400
        assert fragment in body["error"]

    def test_graphless_artifact_answers_409(self, tmp_path, result):
        store = ArtifactStore(tmp_path / "nograph")
        store.publish("toy", result.u, result.v, method="random")
        service = EmbeddingService(store, "toy")
        with EmbeddingServer(service, ServerConfig()) as srv:
            status, body = _call(srv, "/v1/similar", {"source": 0, "n": 3})
            topk_status, _ = _call(srv, "/v1/topk", {"user": 0, "n": 3})
        assert status == 409
        assert "republish" in body["error"]
        assert topk_status == 200  # top-k keeps serving without the graph
