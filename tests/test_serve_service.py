"""Tests for the resident embedding service and the engine's thread contract.

Two jobs live here:

* **Pin the workspace race** the ``TopKEngine`` class notes document: one
  engine instance shared across threads hands callers each other's scores
  through the grow-once buffer.  The race is demonstrated *deterministically*
  (by interleaving the internal steps the way a scheduler could), and
  :meth:`~repro.tasks.topk.TopKEngine.clone_for_worker` is shown to be the
  fix — clones share the embedding arrays but never the buffer.
* Exercise :class:`~repro.serve.service.EmbeddingService`: queries identical
  to the offline engine, hot reload, metrics bookkeeping, and the v4
  RunReport ``service`` section.
"""

import threading

import numpy as np
import pytest

from repro.core.base import EmbeddingResult
from repro.graph import BipartiteGraph
from repro.obs import RunReport
from repro.serve import ArtifactStore, EmbeddingService
from repro.serve.service import ServiceMetrics, percentile
from repro.tasks import TopKEngine


@pytest.fixture(scope="module")
def result():
    rng = np.random.default_rng(3)
    return EmbeddingResult(
        u=rng.standard_normal((60, 8)),
        v=rng.standard_normal((40, 8)),
        method="random",
    )


@pytest.fixture(scope="module")
def graph():
    rng = np.random.default_rng(9)
    edges = [
        (int(u), int(v), 1.0)
        for u in range(60)
        for v in rng.choice(40, size=5, replace=False)
    ]
    return BipartiteGraph.from_edges(edges)


@pytest.fixture
def store(tmp_path, result, graph):
    store = ArtifactStore(tmp_path / "store")
    store.publish(
        "toy", result.u, result.v, graph=graph, method="random", dataset="toy"
    )
    return store


class TestWorkspaceRace:
    """The documented reason a TopKEngine must not be shared across threads."""

    def test_score_buffer_is_shared_between_calls(self, result):
        engine = TopKEngine.from_result(result, block_rows=8)
        first = engine._score_buffer(8)
        second = engine._score_buffer(8)
        assert np.shares_memory(first, second)

    def test_interleaved_scoring_corrupts_shared_engine(self, result):
        """The race, played out deterministically.

        Thread A scores users [0..8) into the shared buffer, the scheduler
        lets thread B score users [8..16) through the same engine, then A
        selects.  A's selection runs over B's scores — exactly the
        corruption concurrent callers of one instance would see.
        """
        engine = TopKEngine.from_result(result, block_rows=8)
        users_a = np.arange(8, dtype=np.int64)
        users_b = np.arange(8, 16, dtype=np.int64)

        buffer_a = engine._score_buffer(users_a.size)
        engine._score_into(engine._u[users_a], buffer_a)
        # B runs before A selects — same instance, same buffer.
        buffer_b = engine._score_buffer(users_b.size)
        engine._score_into(engine._u[users_b], buffer_b)
        from repro.core.selection import select_topn

        corrupted = select_topn(buffer_a, 5)
        expected_a = engine.top_items(5, users=users_a)
        expected_b = engine.top_items(5, users=users_b)
        assert not np.array_equal(corrupted, expected_a)  # A got B's lists
        np.testing.assert_array_equal(corrupted, expected_b)

    def test_clones_have_independent_buffers(self, result):
        engine = TopKEngine.from_result(result, block_rows=8)
        clone = engine.clone_for_worker()
        users_a = np.arange(8, dtype=np.int64)
        users_b = np.arange(8, 16, dtype=np.int64)
        buffer_a = engine._score_buffer(users_a.size)
        engine._score_into(engine._u[users_a], buffer_a)
        buffer_b = clone._score_buffer(users_b.size)
        clone._score_into(clone._u[users_b], buffer_b)
        assert not np.shares_memory(buffer_a, buffer_b)
        from repro.core.selection import select_topn

        np.testing.assert_array_equal(
            select_topn(buffer_a, 5), engine.top_items(5, users=users_a)
        )

    def test_clone_shares_embeddings_without_copy(self, result):
        engine = TopKEngine.from_result(result)
        clone = engine.clone_for_worker()
        assert clone._u is engine._u
        assert clone._vt is engine._vt
        assert clone._scores_flat is None
        assert clone.block_rows == engine.block_rows
        assert clone.policy is engine.policy

    def test_clone_results_identical(self, result, graph):
        engine = TopKEngine.from_result(result, block_rows=16)
        clone = engine.clone_for_worker()
        np.testing.assert_array_equal(
            engine.top_items(7, exclude=graph), clone.top_items(7, exclude=graph)
        )

    def test_concurrent_clones_match_serial_reference(self, result, graph):
        """Stress: 4 threads, one clone each, full sweep — no corruption."""
        engine = TopKEngine.from_result(result, block_rows=8)
        reference = engine.top_items(5, exclude=graph)
        rounds = 10
        outputs = [None] * 4
        errors = []

        def worker(slot: int) -> None:
            clone = engine.clone_for_worker()
            try:
                for _ in range(rounds):
                    outputs[slot] = clone.top_items(5, exclude=graph)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(slot,)) for slot in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        for output in outputs:
            np.testing.assert_array_equal(output, reference)


class TestEmbeddingService:
    def test_top_items_matches_offline_engine(self, store, result, graph):
        service = EmbeddingService(store, "toy")
        engine = TopKEngine.from_result(result)
        users = np.array([0, 3, 17, 59], dtype=np.int64)
        response = service.top_items(users, 6)
        np.testing.assert_array_equal(
            response["items"], engine.top_items(6, users=users, exclude=graph)
        )
        assert response["model"] == "toy@v1"
        assert response["n"] == 6

    def test_exclude_train_masks_published_graph(self, store, graph):
        service = EmbeddingService(store, "toy")
        masked = service.top_items([5], 40)["items"][0]
        unmasked = service.top_items([5], 40, exclude_train=False)["items"][0]
        neighbors = set(int(v) for v in graph.u_neighbors(5))
        # Training items fall to the tail of the masked list (-inf scores).
        assert neighbors.isdisjoint(masked[: 40 - len(neighbors)].tolist())
        assert not neighbors.isdisjoint(unmasked.tolist())

    def test_scores_and_similar_users(self, store, result):
        service = EmbeddingService(store, "toy")
        np.testing.assert_allclose(
            service.scores(4), result.u[4] @ result.v.T, rtol=1e-12
        )
        np.testing.assert_array_equal(
            service.similar_users(4, 5), result.most_similar_u(4, 5)
        )
        with pytest.raises(ValueError, match="user index"):
            service.scores(60)

    def test_reload_swaps_to_latest(self, store, result):
        service = EmbeddingService(store, "toy")
        assert service.artifact.tag == "toy@v1"
        store.publish("toy", result.u * 2.0, result.v, method="random")
        old, new = service.reload()
        assert (old, new) == ("toy@v1", "toy@v2")
        assert service.artifact.tag == "toy@v2"
        assert service.metrics["reloads"] == 1
        # Doubling U rescales scores but not their order; results still flow.
        assert service.top_items([0], 3)["items"].shape == (1, 3)

    def test_reload_failure_keeps_old_model(self, store):
        service = EmbeddingService(store, "toy")
        with pytest.raises(Exception):
            service.reload(42)  # no such version
        assert service.artifact.tag == "toy@v1"
        assert service.top_items([1], 3)["items"].shape == (1, 3)

    def test_reload_serves_delta_published_version(self, store, result, graph):
        """The incremental pipeline's last hop: a warm refresh delta-publishes
        (graph unchanged -> ``file_refs`` pointer to v1) and a live service
        picks it up via reload, chain verification included."""
        service = EmbeddingService(store, "toy")
        ref = store.publish(
            "toy",
            result.u * 2.0,
            result.v,
            graph=graph,
            method="random",
            base_version=1,
        )
        assert ref.file_refs.get("graph.npz") == 1  # genuinely a delta
        old, new = service.reload()
        assert (old, new) == ("toy@v1", "toy@v2")
        # Served results reflect the new embeddings with the referenced
        # graph still masking training edges.
        expected = TopKEngine(result.u * 2.0, result.v).top_items(
            5, exclude=graph
        )
        np.testing.assert_array_equal(
            service.top_items(range(result.u.shape[0]), 5)["items"], expected
        )

    def test_reload_rejects_broken_delta_chain(self, store, result, graph):
        """A delta version whose referenced base file was corrupted must fail
        chain verification at reload and leave the old model serving."""
        service = EmbeddingService(store, "toy")
        store.publish(
            "toy",
            result.u * 2.0,
            result.v,
            graph=graph,
            method="random",
            base_version=1,
        )
        base_graph_file = store.root / "toy" / "v0001" / "graph.npz"
        arrays = dict(np.load(base_graph_file))
        arrays["data"] = arrays["data"].copy()
        arrays["data"][0] += 1.0
        np.savez_compressed(base_graph_file, **arrays)
        with pytest.raises(Exception):
            service.reload()
        assert service.artifact.tag == "toy@v1"
        assert service.top_items([1], 3)["items"].shape == (1, 3)

    def test_worker_threads_get_private_engines(self, store):
        service = EmbeddingService(store, "toy")
        engines = {}

        def worker(name: str) -> None:
            engines[name] = service._engine()[0]

        threads = [
            threading.Thread(target=worker, args=(f"t{i}",)) for i in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        distinct = {id(engine) for engine in engines.values()}
        assert len(distinct) == 3

    def test_metrics_count_requests_and_candidates(self, store):
        service = EmbeddingService(store, "toy")
        service.top_items([0, 1, 2], 4)
        snapshot = service.metrics.snapshot()
        assert snapshot["counters"]["requests"] == 1
        assert snapshot["counters"]["topk_candidates"] == 3 * 40
        assert snapshot["counters"]["gemms"] >= 1
        assert snapshot["stages"]["score"]["count"] == 1

    def test_service_report_slots_into_v4_run_report(self, store):
        service = EmbeddingService(store, "toy")
        service.top_items([0], 5)
        service.metrics.observe("request", 0.01)
        report = RunReport(
            method="serve", wall_seconds=0.1,
            service=service.metrics.service_report(),
        )
        payload = report.to_dict()  # validates
        assert payload["service"]["requests"] == 1
        assert payload["service"]["latency_ms"]["p50"] > 0


class TestServiceMetrics:
    def test_unknown_counter_rejected(self):
        with pytest.raises(KeyError):
            ServiceMetrics().count("bogus")

    def test_queue_gauge_tracks_high_water(self):
        metrics = ServiceMetrics()
        metrics.queue_entered()
        metrics.queue_entered()
        metrics.queue_left()
        snapshot = metrics.snapshot()
        assert snapshot["queue"] == {"depth": 1, "depth_max": 2}

    def test_percentile_nearest_rank(self):
        samples = [10.0, 20.0, 30.0, 40.0]
        assert percentile(samples, 50) == 20.0
        assert percentile(samples, 95) == 40.0
        assert percentile([], 50) == 0.0
        assert percentile([7.0], 99) == 7.0


class TestQuantizedService:
    """Serving a quantized artifact: exact over the dequantized arrays."""

    @pytest.fixture(params=["float16", "int8"])
    def codec(self, request):
        return request.param

    @pytest.fixture
    def quant_store(self, tmp_path, result, graph, codec):
        store = ArtifactStore(tmp_path / "qstore")
        store.publish(
            "toy", result.u, result.v, graph=graph, method="random",
            quantize=codec,
        )
        return store

    def _offline(self, result, codec):
        from repro.core.quantize import quantize_columns
        from repro.tasks.topk import QuantizedTopKEngine

        u_codes, u_scales = quantize_columns(result.u, codec)
        v_codes, v_scales = quantize_columns(result.v, codec)
        return QuantizedTopKEngine(
            u_codes, u_scales, v_codes, v_scales, quant_dtype=codec
        )

    def test_top_items_matches_offline_quant_engine(
        self, quant_store, result, graph, codec
    ):
        service = EmbeddingService(quant_store, "toy")
        assert service.quantize == codec
        offline = self._offline(result, codec)
        expected = offline.top_items(8, exclude=graph)
        out = service.top_items(range(result.u.shape[0]), 8)
        np.testing.assert_array_equal(out["items"], expected)

    def test_scores_are_exact_dequantized_dots(
        self, quant_store, result, codec
    ):
        service = EmbeddingService(quant_store, "toy")
        offline = self._offline(result, codec)
        np.testing.assert_array_equal(
            service.scores(11), offline.user_scores(11)
        )

    def test_quantized_rejects_sharded_and_ann_modes(self, quant_store):
        from repro.serve import ArtifactError, ShardConfig

        with pytest.raises(ArtifactError, match="republish without"):
            EmbeddingService(quant_store, "toy", shards=ShardConfig(n_shards=2))
        with pytest.raises(ArtifactError, match="republish without"):
            EmbeddingService(quant_store, "toy", ann=True)

    def test_quantized_resident_smaller_than_exact(
        self, quant_store, store, codec
    ):
        quant = EmbeddingService(quant_store, "toy")
        exact = EmbeddingService(store, "toy")
        assert 0 < quant.bytes_resident() < exact.bytes_resident()

    def test_reload_crosses_codec_boundary(
        self, quant_store, result, graph, codec
    ):
        """v1 quantized -> v2 exact: reload swaps engines cleanly."""
        service = EmbeddingService(quant_store, "toy")
        assert service.quantize == codec
        quant_store.publish(
            "toy", result.u, result.v, graph=graph, method="random"
        )
        old, new = service.reload()
        assert (old, new) == ("toy@v1", "toy@v2")
        assert service.quantize is None
        expected = TopKEngine(result.u, result.v).top_items(5, exclude=graph)
        np.testing.assert_array_equal(
            service.top_items(range(result.u.shape[0]), 5)["items"], expected
        )


class TestSimilarQueries:
    @pytest.fixture
    def service(self, store):
        return EmbeddingService(store, "toy")

    @pytest.fixture(scope="class")
    def offline(self, graph):
        from repro.core.pmf import PoissonPMF
        from repro.tasks import SimilarityEngine, transposed_graph

        build = lambda g: SimilarityEngine(
            g, PoissonPMF(lam=1.0), 5, normalization="sym"
        )
        return {"u": build(graph), "v": build(transposed_graph(graph))}

    @pytest.mark.parametrize("mode", ["mhs", "mhp"])
    @pytest.mark.parametrize("side", ["u", "v"])
    def test_matches_offline_engine(self, service, offline, mode, side):
        sources = np.array([0, 5, 17], dtype=np.int64)
        expected, scores = offline[side].query(
            sources, 6, mode=mode, with_scores=True
        )
        response = service.similar(
            sources, 6, mode=mode, side=side, with_scores=True
        )
        np.testing.assert_array_equal(response["items"], expected)
        np.testing.assert_array_equal(response["scores"], scores)
        assert response["model"] == "toy@v1"
        assert response["mode"] == mode and response["side"] == side

    def test_counts_queries_and_matvecs(self, service):
        sources = np.array([1, 2, 3, 4], dtype=np.int64)
        service.similar(sources, 5, mode="mhp")
        counters = service.metrics.snapshot()["counters"]
        assert counters["similar_queries"] == 4
        # PoissonPMF tau=5 MHP: 2*5 hops + 1 W^T apply per source.
        assert counters["similar_matvecs"] == 11 * 4
        assert counters["requests"] >= 1

    def test_rejects_bad_arguments(self, service):
        with pytest.raises(ValueError, match="mode"):
            service.similar(np.array([0]), 5, mode="cosine")
        with pytest.raises(ValueError, match="side"):
            service.similar(np.array([0]), 5, side="w")

    def test_graphless_artifact_raises_pointed_error(self, tmp_path, result):
        from repro.serve import ArtifactError

        store = ArtifactStore(tmp_path / "nograph")
        store.publish("toy", result.u, result.v, method="random")
        service = EmbeddingService(store, "toy")
        with pytest.raises(ArtifactError, match="republish"):
            service.similar(np.array([0]), 5)

    def test_reload_swaps_the_similarity_engines(self, service, store, graph,
                                                 result):
        before = service.similar(np.array([0]), 5)
        store.publish(
            "toy", result.u, result.v, graph=graph, method="random"
        )
        assert service.reload() == ("toy@v1", "toy@v2")
        after = service.similar(np.array([0]), 5)
        assert after["model"] == "toy@v2"
        np.testing.assert_array_equal(after["items"], before["items"])

    def test_concurrent_threads_match_serial(self, service, offline):
        expected, _ = offline["u"].query(np.arange(20), 5, mode="mhs")
        failures = []

        def worker(seed):
            rng = np.random.default_rng(seed)
            for _ in range(6):
                source = int(rng.integers(20))
                response = service.similar(np.array([source]), 5)
                if response["items"][0].tolist() != expected[source].tolist():
                    failures.append(source)

        threads = [
            threading.Thread(target=worker, args=(seed,)) for seed in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert failures == []
