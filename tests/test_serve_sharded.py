"""Differential and fault-injection tests for the scatter-gather tier.

The sharded serving mode (:mod:`repro.serve.sharded`) claims an *exact*
merge: pooling per-shard top-``n`` lists, restoring ascending global id
order, and re-running ``select_topn`` yields element-identical lists to one
engine scoring every item — the prefix property of the total order
``(score desc, id asc)``.  This suite pins that claim across shard counts
and thread counts, down to all-ties integer embeddings where only the
id-ascending tie-break separates candidates, and exercises the failure
policy with injected slow and dead shards (``shard_hook``): deadlines fire,
``on_failure="fail"`` raises / answers HTTP 503, ``on_failure="degrade"``
returns a partial answer that says so.

Runs under ``REPRO_NUM_THREADS=4`` as well (Makefile THREADED_TESTS): the
merge must hold however the per-shard scoring executors are sized.
"""

import threading
import time

import numpy as np
import pytest

from repro.core.selection import select_topn
from repro.graph import BipartiteGraph
from repro.linalg.policy import DtypePolicy
from repro.serve import (
    ArtifactStore,
    EmbeddingServer,
    EmbeddingService,
    ServerConfig,
    ShardConfig,
    ShardFailure,
    ShardedTopK,
)
from repro.tasks import TopKEngine

NUM_USERS, NUM_ITEMS, DIM = 40, 120, 8


@pytest.fixture(scope="module")
def embeddings():
    rng = np.random.default_rng(11)
    return (
        rng.standard_normal((NUM_USERS, DIM)),
        rng.standard_normal((NUM_ITEMS, DIM)),
    )


@pytest.fixture(scope="module")
def graph():
    rng = np.random.default_rng(12)
    edges = [
        (int(u), int(v), 1.0)
        for u in range(NUM_USERS)
        for v in rng.choice(NUM_ITEMS, size=5, replace=False)
    ]
    return BipartiteGraph.from_edges(edges)


def _sharded(u, v, **kwargs):
    """Context-managed ShardedTopK so scatter pools never leak."""

    class _Ctx:
        def __enter__(self):
            self.tier = ShardedTopK(u, v, **kwargs)
            return self.tier

        def __exit__(self, *exc):
            self.tier.close()

    return _Ctx()


class TestMergeDifferential:
    """The headline guarantee: shard count and thread count never change a list."""

    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    @pytest.mark.parametrize("threads", [1, 4])
    def test_identical_to_single_engine(
        self, embeddings, graph, n_shards, threads
    ):
        u, v = embeddings
        policy = DtypePolicy.default().with_threads(threads)
        expected = TopKEngine(u, v, policy=policy).top_items(10, exclude=graph)
        with _sharded(
            u,
            v,
            config=ShardConfig(n_shards=n_shards),
            graph=graph,
            policy=policy,
        ) as tier:
            result = tier.top_items(10)
        assert result["degraded"] is False
        assert result["failed_shards"] == []
        np.testing.assert_array_equal(result["items"], expected)

    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_all_ties_integer_embeddings(self, n_shards):
        """Every score identical: only the id-ascending tie-break orders the
        merge, which is exactly where a shard-order merge would diverge."""
        u = np.ones((12, 4))
        v = np.ones((60, 4))
        expected = TopKEngine(u, v).top_items(9)
        with _sharded(u, v, config=ShardConfig(n_shards=n_shards)) as tier:
            result = tier.top_items(9, with_scores=True)
        np.testing.assert_array_equal(result["items"], expected)
        np.testing.assert_array_equal(result["scores"], np.full((12, 9), 4.0))

    def test_scores_match_single_engine(self, embeddings, graph):
        u, v = embeddings
        engine = TopKEngine(u, v)
        blocks = list(
            engine.iter_top_items(7, exclude=graph, with_scores=True)
        )
        expected_scores = np.concatenate([block[2] for block in blocks])
        with _sharded(
            u, v, config=ShardConfig(n_shards=3), graph=graph
        ) as tier:
            result = tier.top_items(7, with_scores=True)
        np.testing.assert_array_equal(result["scores"], expected_scores)

    def test_user_subset_and_no_exclusion(self, embeddings, graph):
        u, v = embeddings
        users = np.array([3, 17, 38], dtype=np.int64)
        expected = TopKEngine(u, v).top_items(5, users=users)
        with _sharded(
            u, v, config=ShardConfig(n_shards=4), graph=graph
        ) as tier:
            result = tier.top_items(5, users=users, exclude=False)
        np.testing.assert_array_equal(result["items"], expected)

    def test_n_larger_than_every_shard(self, embeddings):
        """n exceeding each shard's local item count still merges exactly —
        per-shard lists clamp locally, the pool still covers the winners."""
        u, v = embeddings
        expected = TopKEngine(u, v).top_items(50)
        with _sharded(u, v, config=ShardConfig(n_shards=4)) as tier:
            result = tier.top_items(50)
        np.testing.assert_array_equal(result["items"], expected)

    def test_shards_capped_at_item_count(self, embeddings):
        u, v = embeddings
        with _sharded(u, v[:3], config=ShardConfig(n_shards=8)) as tier:
            assert tier.n_shards == 3
            expected = TopKEngine(u, v[:3]).top_items(2)
            np.testing.assert_array_equal(tier.top_items(2)["items"], expected)

    def test_concurrent_clones_stay_identical(self, embeddings, graph):
        """Four caller threads on private clones over the shared scatter
        pool: every wave element-identical to the offline engine."""
        u, v = embeddings
        expected = TopKEngine(u, v).top_items(8, exclude=graph)
        failures = []
        with _sharded(
            u, v, config=ShardConfig(n_shards=3), graph=graph
        ) as tier:

            def caller() -> None:
                clone = tier.clone_for_worker()
                for _ in range(5):
                    result = clone.top_items(8)
                    if not np.array_equal(result["items"], expected):
                        failures.append(result["items"])

            threads = [threading.Thread(target=caller) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert failures == []


class TestShardConfig:
    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError, match="n_shards"):
            ShardConfig(n_shards=0)

    def test_rejects_non_positive_deadline(self):
        with pytest.raises(ValueError, match="deadline_ms"):
            ShardConfig(deadline_ms=0)

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="on_failure"):
            ShardConfig(on_failure="retry")


def _dead_shard(target):
    """A shard_hook that kills one shard outright."""

    def hook(shard: int) -> None:
        if shard == target:
            raise RuntimeError(f"injected: shard {shard} is dead")

    return hook


def _slow_shard(target, delay):
    """A shard_hook that makes one shard blow any reasonable deadline."""

    def hook(shard: int) -> None:
        if shard == target:
            time.sleep(delay)

    return hook


class TestFaultInjection:
    def test_dead_shard_fail_policy_raises(self, embeddings):
        u, v = embeddings
        with _sharded(
            u,
            v,
            config=ShardConfig(n_shards=3, on_failure="fail"),
            shard_hook=_dead_shard(1),
        ) as tier:
            with pytest.raises(ShardFailure) as excinfo:
                tier.top_items(5)
            assert excinfo.value.failed == [1]

    def test_dead_shard_degrade_returns_partial_flagged(self, embeddings):
        u, v = embeddings
        with _sharded(
            u,
            v,
            config=ShardConfig(n_shards=3, on_failure="degrade"),
            shard_hook=_dead_shard(1),
        ) as tier:
            lo, hi = tier.ranges[1]
            result = tier.top_items(10, with_scores=True)
        assert result["degraded"] is True
        assert result["failed_shards"] == [1]
        # The partial answer is exactly the top-n with the dead shard's
        # items masked out — still ordered, still tie-broken by id.
        scores = u @ v.T
        scores[:, lo:hi] = -np.inf
        expected = select_topn(scores, 10)
        np.testing.assert_array_equal(result["items"], expected)

    def test_slow_shard_deadline_fires_fail_policy(self, embeddings):
        u, v = embeddings
        with _sharded(
            u,
            v,
            config=ShardConfig(
                n_shards=2, deadline_ms=50.0, on_failure="fail"
            ),
            shard_hook=_slow_shard(0, 1.5),
        ) as tier:
            with pytest.raises(ShardFailure, match="deadline"):
                tier.top_items(5)

    def test_slow_shard_deadline_fires_degrade_policy(self, embeddings):
        u, v = embeddings
        with _sharded(
            u,
            v,
            config=ShardConfig(
                n_shards=2, deadline_ms=50.0, on_failure="degrade"
            ),
            shard_hook=_slow_shard(1, 1.5),
        ) as tier:
            result = tier.top_items(5)
        assert result["degraded"] is True
        assert result["failed_shards"] == [1]

    def test_timed_out_engine_is_retired(self, embeddings):
        """After a timeout wave the straggler's engine is replaced; once the
        fault clears, the next wave is exact again (no poisoned workspace)."""
        u, v = embeddings
        fault = {"active": True}

        def hook(shard: int) -> None:
            if shard == 0 and fault["active"]:
                time.sleep(1.0)

        expected = TopKEngine(u, v).top_items(6)
        with _sharded(
            u,
            v,
            config=ShardConfig(
                n_shards=2, deadline_ms=50.0, on_failure="degrade"
            ),
            shard_hook=hook,
        ) as tier:
            degraded = tier.top_items(6)
            assert degraded["degraded"] is True
            fault["active"] = False
            time.sleep(1.2)  # let the cancelled straggler finish writing
            healthy = tier.top_items(6)
        assert healthy["degraded"] is False
        np.testing.assert_array_equal(healthy["items"], expected)

    def test_all_shards_dead_raises_even_degraded(self, embeddings):
        u, v = embeddings

        def hook(shard: int) -> None:
            raise RuntimeError("injected: total outage")

        with _sharded(
            u,
            v,
            config=ShardConfig(n_shards=2, on_failure="degrade"),
            shard_hook=hook,
        ) as tier:
            with pytest.raises(ShardFailure, match="nothing to degrade"):
                tier.top_items(5)

    def test_degraded_rows_pad_when_survivors_run_short(self, embeddings):
        """n close to num_items with a dead shard: the surviving pool holds
        fewer than n candidates, so rows right-pad with -1 / -inf."""
        u, v = embeddings
        with _sharded(
            u,
            v,
            config=ShardConfig(n_shards=2, on_failure="degrade"),
            shard_hook=_dead_shard(0),
        ) as tier:
            lo, hi = tier.ranges[0]
            survivors = NUM_ITEMS - (hi - lo)
            result = tier.top_items(NUM_ITEMS, with_scores=True)
        assert result["degraded"] is True
        assert np.all(result["items"][:, survivors:] == -1)
        assert np.all(np.isneginf(result["scores"][:, survivors:]))
        assert np.all(result["items"][:, :survivors] >= 0)

    def test_all_slow_wave_costs_one_deadline_not_n(self, embeddings):
        """A wave of 4 all-slow shards is bounded by ~1x ``deadline_ms``.

        The gather spends every ``future.result`` timeout from one shared
        wave clock; the per-future bug this pins against charged each slow
        shard its own full budget, so k stragglers cost k * deadline_ms.
        Here 4 shards each sleep well past a 150 ms deadline: the stacked
        version needs >= 0.6 s just in timeouts, the wave clock ~0.15 s.
        """
        u, v = embeddings

        def hook(shard: int) -> None:
            time.sleep(2.0)

        with _sharded(
            u,
            v,
            config=ShardConfig(
                n_shards=4, deadline_ms=150.0, on_failure="fail"
            ),
            shard_hook=hook,
        ) as tier:
            start = time.monotonic()
            with pytest.raises(ShardFailure) as excinfo:
                tier.top_items(5)
            elapsed = time.monotonic() - start
        assert excinfo.value.failed == [0, 1, 2, 3]
        assert elapsed >= 0.10  # the deadline did actually run down
        assert elapsed < 0.45, (
            f"4-shard all-slow wave took {elapsed:.3f}s; per-future "
            "deadlines are stacking instead of sharing one wave clock"
        )

    def test_straggler_keeps_submit_time_engine(self, embeddings):
        """A timed-out straggler scores with the engine bound at submit.

        Wave 1's shard-0 worker parks on an event until after the deadline
        fires and the gather retires ``_engines[0]``.  When released, the
        straggler must finish against the *retired* engine it was handed at
        submit time — reading ``self._engines[0]`` at run time would grab
        the replacement and race the next wave's workspace.
        """
        u, v = embeddings
        release = threading.Event()
        parked = threading.Event()
        state = {"first": True}

        def hook(shard: int) -> None:
            if shard == 0 and state["first"]:
                state["first"] = False
                parked.set()
                release.wait(timeout=10.0)

        calls = []

        def trace(engine, label):
            inner = engine.iter_top_items

            def wrapper(*args, **kwargs):
                calls.append(label)
                return inner(*args, **kwargs)

            engine.iter_top_items = wrapper

        try:
            with _sharded(
                u,
                v,
                config=ShardConfig(
                    n_shards=2, deadline_ms=50.0, on_failure="degrade"
                ),
                shard_hook=hook,
            ) as tier:
                original = tier._engines[0]
                trace(original, "original")
                degraded = tier.top_items(5)
                assert parked.is_set()
                assert degraded["degraded"] is True
                assert degraded["failed_shards"] == [0]
                replacement = tier._engines[0]
                assert replacement is not original
                trace(replacement, "replacement")
                release.set()
                deadline = time.monotonic() + 5.0
                while "original" not in calls and time.monotonic() < deadline:
                    time.sleep(0.01)
                assert "original" in calls, (
                    "released straggler never scored with its submit-time "
                    "engine"
                )
                assert "replacement" not in calls, (
                    "straggler re-read self._engines after retirement and "
                    "raced the replacement's workspace"
                )
                healthy = tier.top_items(5)
                assert healthy["degraded"] is False
                assert "replacement" in calls  # wave 2 uses the new engine
        finally:
            release.set()  # never leave the worker parked on failure


def _shard_thread_count() -> int:
    return sum(
        thread.name.startswith("repro-shard")
        for thread in threading.enumerate()
    )


def _settle_shard_threads(at_most: int, timeout: float = 10.0) -> bool:
    """Poll until the scatter-pool thread count drops to ``at_most``.

    ``close()`` drains with ``shutdown(wait=False)``, so retired workers
    (including cancelled stragglers finishing an injected sleep) exit
    asynchronously — counting without a settle window would be flaky.
    """
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if _shard_thread_count() <= at_most:
            return True
        time.sleep(0.05)
    return False


@pytest.fixture(scope="module")
def published(tmp_path_factory, embeddings, graph):
    store = ArtifactStore(tmp_path_factory.mktemp("store") / "artifacts")
    u, v = embeddings
    store.publish("toy", u, v, graph=graph, method="random")
    return store


class TestServiceIntegration:
    def test_sharded_service_matches_plain_service(
        self, published, embeddings, graph
    ):
        u, v = embeddings
        users = list(range(NUM_USERS))
        plain = EmbeddingService(published, "toy")
        sharded = EmbeddingService(
            published, "toy", shards=ShardConfig(n_shards=3)
        )
        try:
            expected = plain.top_items(users, 8)
            result = sharded.top_items(users, 8)
            np.testing.assert_array_equal(result["items"], expected["items"])
            assert result["degraded"] is False
            assert result["failed_shards"] == []
            assert result["model"] == "toy@v1"
        finally:
            sharded.close()

    def test_degrade_flags_response_and_counts(self, published):
        service = EmbeddingService(
            published,
            "toy",
            shards=ShardConfig(n_shards=3, on_failure="degrade"),
            shard_hook=_dead_shard(2),
        )
        try:
            result = service.top_items([0, 1], 5)
            assert result["degraded"] is True
            assert result["failed_shards"] == [2]
            assert service.metrics["degraded"] == 1
            assert service.metrics["shard_failures"] == 0
        finally:
            service.close()

    def test_fail_policy_raises_and_counts(self, published):
        service = EmbeddingService(
            published,
            "toy",
            shards=ShardConfig(n_shards=3, on_failure="fail"),
            shard_hook=_dead_shard(0),
        )
        try:
            with pytest.raises(ShardFailure):
                service.top_items([0], 5)
            assert service.metrics["shard_failures"] == 1
        finally:
            service.close()

    def test_ann_and_shards_are_mutually_exclusive(self, published):
        with pytest.raises(ValueError, match="mutually exclusive"):
            EmbeddingService(
                published, "toy", shards=ShardConfig(n_shards=2), ann=True
            )

    def test_nprobe_requires_ann(self, published):
        with pytest.raises(ValueError, match="nprobe requires"):
            EmbeddingService(published, "toy", nprobe=4)


class TestHttpTier:
    def _call(self, server, payload):
        import json
        import urllib.error
        import urllib.request

        request = urllib.request.Request(
            server.url + "/v1/topk",
            data=json.dumps(payload).encode("utf-8"),
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=30) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            body = error.read()
            return error.code, json.loads(body) if body else {}

    def test_sharded_responses_match_offline_engine(
        self, published, embeddings, graph
    ):
        u, v = embeddings
        expected = TopKEngine(u, v).top_items(6, exclude=graph)
        service = EmbeddingService(
            published, "toy", shards=ShardConfig(n_shards=3)
        )
        try:
            with EmbeddingServer(service, ServerConfig(batch=False)) as server:
                status, body = self._call(
                    server, {"users": [0, 5, 39], "n": 6}
                )
            assert status == 200
            assert body["degraded"] is False
            assert body["items"] == [
                expected[user].tolist() for user in (0, 5, 39)
                ]
        finally:
            service.close()

    def test_dead_shard_fail_policy_answers_503(self, published):
        service = EmbeddingService(
            published,
            "toy",
            shards=ShardConfig(n_shards=3, on_failure="fail"),
            shard_hook=_dead_shard(1),
        )
        try:
            with EmbeddingServer(service, ServerConfig(batch=False)) as server:
                status, body = self._call(server, {"users": [0, 1], "n": 5})
            assert status == 503
            assert "shard failure" in body["error"]
            assert service.metrics["shard_failures"] == 1
        finally:
            service.close()

    def test_dead_shard_degrade_answers_200_flagged(self, published):
        service = EmbeddingService(
            published,
            "toy",
            shards=ShardConfig(n_shards=3, on_failure="degrade"),
            shard_hook=_dead_shard(1),
        )
        try:
            with EmbeddingServer(service, ServerConfig(batch=False)) as server:
                status, body = self._call(server, {"users": [0, 1], "n": 5})
            assert status == 200
            assert body["degraded"] is True
            assert body["failed_shards"] == [1]
        finally:
            service.close()


class TestReloadLifecycle:
    """reload() must retire the old model's scatter pool, not leak it."""

    def test_ten_reloads_zero_thread_growth(self, published):
        """10 reloads leave exactly one pool's worth of shard threads.

        Every reload swaps in a fresh ``ShardedTopK`` (its own
        ``n_shards``-thread pool); the retired model's pool is drain-closed
        after the swap.  The leak this pins against kept every generation's
        pool alive, growing the process by ``n_shards`` threads per reload.
        """
        assert _settle_shard_threads(0), (
            "shard threads leaked in from earlier tests"
        )
        service = EmbeddingService(
            published, "toy", shards=ShardConfig(n_shards=3)
        )
        try:
            service.top_items([0, 1], 5)  # spin up the first pool's workers
            baseline = _shard_thread_count()
            assert 1 <= baseline <= 3
            for _ in range(10):
                service.reload()
                result = service.top_items([0, 1], 5)
                assert result["degraded"] is False
            assert _settle_shard_threads(baseline), (
                f"{_shard_thread_count()} shard threads alive after 10 "
                f"reloads (baseline {baseline}); retired pools are leaking"
            )
        finally:
            service.close()
        assert _settle_shard_threads(0), (
            "close() left the final scatter pool running"
        )
