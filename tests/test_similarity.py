"""Differential and property tests for the similarity engine (repro.tasks).

The load-bearing contract: :class:`~repro.tasks.SimilarityEngine` must
produce top-n lists *element-identical* to ranking the dense
``repro.core.measures`` references (``mhs_matrix`` / ``mhp_matrix``) with
the shared :func:`~repro.core.selection.select_topn` — same items, same
order, same tie-breaks — at every block size and thread count, because a
one-hot column evolves independently through the hop recurrence and the
diagonal scaling replicates the dense elementwise order.  The blocked
applies are a pure batching knob: per-source rows are bit-identical for
every ``block_sources`` and every executor width.
"""

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.core.measures import h_matrix, mhp_matrix, mhs_matrix
from repro.core.pmf import PoissonPMF, UniformPMF
from repro.core.selection import select_topn
from repro.datasets import erdos_renyi_bipartite
from repro.graph import BipartiteGraph, build_graph_store
from repro.linalg import DtypePolicy
from repro.tasks import (
    DEFAULT_BLOCK_SOURCES,
    SIMILARITY_MODES,
    SimilarityEngine,
    transposed_graph,
)

TAU = 4
PMF = PoissonPMF(lam=1.5)

# {1, 7, all}: degenerate single-source blocks, a width that never divides
# the source count evenly, and one block swallowing every source at once.
BLOCKS = (1, 7, 10_000)
THREADS = (1, 2, 4)


def _engine(graph, *, block=DEFAULT_BLOCK_SOURCES, threads=1, pmf=PMF, tau=TAU):
    policy = DtypePolicy.default().with_threads(threads)
    return SimilarityEngine(
        graph, pmf, tau, normalization="none", policy=policy,
        block_sources=block,
    )


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi_bipartite(40, 25, 220, weighted=True, seed=5)


@pytest.fixture(scope="module")
def dense(graph):
    """Dense reference scores: raw Eq. 3-5 over the same graph."""
    s = mhs_matrix(graph, PMF, TAU)
    np.fill_diagonal(s, -np.inf)
    return {"mhs": s, "mhp": mhp_matrix(graph, PMF, TAU)}


@pytest.fixture(scope="module")
def ties_graph():
    """All-ties fixture: complete unweighted K_{8,5}.

    Every H entry (and every MHP entry) collapses onto a handful of exactly
    representable integer-arithmetic values, so rankings are decided almost
    entirely by the lexicographic tie-break — the harshest test of list
    identity.
    """
    edges = [(u, v) for u in range(8) for v in range(5)]
    return BipartiteGraph.from_edges(edges, num_u=8, num_v=5)


# ---------------------------------------------------------------------------
# Differential: engine lists == dense reference lists
# ---------------------------------------------------------------------------
class TestDifferential:
    @pytest.mark.parametrize("mode", SIMILARITY_MODES)
    @pytest.mark.parametrize("block", BLOCKS)
    @pytest.mark.parametrize("threads", THREADS)
    def test_lists_identical_to_dense_reference(
        self, graph, dense, mode, block, threads
    ):
        sources = np.arange(graph.num_u, dtype=np.int64)
        expected = select_topn(dense[mode], 10)
        engine = _engine(graph, block=block, threads=threads)
        items, scores = engine.query(sources, 10, mode=mode, with_scores=True)
        np.testing.assert_array_equal(items, expected)
        assert scores.shape == items.shape

    @pytest.mark.parametrize("block", BLOCKS)
    def test_rows_bitwise_identical_across_blocks(self, graph, block):
        # The block width is pure batching: per-source rows never move a bit.
        sources = np.arange(graph.num_u, dtype=np.int64)
        anchor = _engine(graph, block=DEFAULT_BLOCK_SOURCES)
        engine = _engine(graph, block=block)
        np.testing.assert_array_equal(
            engine.h_rows(sources), anchor.h_rows(sources)
        )
        np.testing.assert_array_equal(
            engine.mhp_rows(sources), anchor.mhp_rows(sources)
        )
        np.testing.assert_array_equal(
            engine.mhs_rows(sources), anchor.mhs_rows(sources)
        )

    @pytest.mark.parametrize("threads", THREADS)
    def test_rows_bitwise_identical_across_threads(self, graph, threads):
        sources = np.arange(graph.num_u, dtype=np.int64)
        anchor = _engine(graph, threads=1)
        engine = _engine(graph, threads=threads)
        np.testing.assert_array_equal(
            engine.h_rows(sources), anchor.h_rows(sources)
        )
        np.testing.assert_array_equal(
            engine.mhs_rows(sources), anchor.mhs_rows(sources)
        )

    def test_h_rows_match_dense_h(self, graph):
        h = h_matrix(graph, PMF, TAU)
        engine = _engine(graph)
        np.testing.assert_allclose(
            engine.h_rows(np.arange(graph.num_u)), h, rtol=1e-12, atol=1e-12
        )

    def test_self_similarity_pinned(self, graph):
        # Lemma 2.1(ii): s(u, u) = 1 exactly; exclude_self masks it to -inf.
        engine = _engine(graph)
        sources = np.arange(graph.num_u, dtype=np.int64)
        rows = engine.mhs_rows(sources, exclude_self=False)
        np.testing.assert_array_equal(
            rows[sources, sources], np.ones(graph.num_u)
        )
        masked = engine.mhs_rows(sources, exclude_self=True)
        assert np.all(np.isneginf(masked[sources, sources]))

    @pytest.mark.parametrize("mode", SIMILARITY_MODES)
    @pytest.mark.parametrize("block", (1, 3, 10_000))
    def test_all_ties_integer_weights(self, ties_graph, mode, block):
        # Massive exact ties: the lexicographic tie-break alone decides.
        reference = {
            "mhs": mhs_matrix(ties_graph, PMF, TAU),
            "mhp": mhp_matrix(ties_graph, PMF, TAU),
        }[mode]
        if mode == "mhs":
            reference = reference.copy()
            np.fill_diagonal(reference, -np.inf)
        n = reference.shape[1]
        expected = select_topn(reference, n)
        engine = _engine(ties_graph, block=block)
        items, _ = engine.query(
            np.arange(ties_graph.num_u), n, mode=mode
        )
        np.testing.assert_array_equal(items, expected)

    def test_v_side_via_transposed_graph(self, graph):
        # The V-side engine runs the same Eq. 3-4 series over W^T, i.e. the
        # dense reference is mhs_matrix of the transposed graph.  (This is
        # deliberately NOT measures.mhs_matrix_v_side, which is Lemma 2.2's
        # shifted series.)
        expected_s = mhs_matrix(graph.transpose(), PMF, TAU)
        np.fill_diagonal(expected_s, -np.inf)
        engine = _engine(transposed_graph(graph))
        assert engine.num_u == graph.num_v
        items, _ = engine.query(np.arange(graph.num_v), 10, mode="mhs")
        np.testing.assert_array_equal(items, select_topn(expected_s, 10))
        # V-side MHP ranks U-nodes: scores are the dense P^T rows.
        expected_p = mhp_matrix(graph, PMF, TAU).T
        items, _ = engine.query(np.arange(graph.num_v), 10, mode="mhp")
        np.testing.assert_array_equal(items, select_topn(expected_p, 10))

    @settings(max_examples=25, deadline=None)
    @given(
        num_u=st.integers(2, 10),
        num_v=st.integers(1, 8),
        tau=st.integers(0, 4),
        n=st.integers(1, 6),
        block=st.integers(1, 12),
        integer_weights=st.booleans(),
        seed=st.integers(0, 10_000),
    )
    def test_property_random_graphs(
        self, num_u, num_v, tau, n, block, integer_weights, seed
    ):
        rng = np.random.default_rng(seed)
        num_edges = int(rng.integers(1, num_u * num_v + 1))
        graph = erdos_renyi_bipartite(
            num_u, num_v, num_edges, weighted=not integer_weights, seed=seed
        )
        pmf = UniformPMF(tau=max(tau, 1))
        s = mhs_matrix(graph, pmf, tau)
        np.fill_diagonal(s, -np.inf)
        p = mhp_matrix(graph, pmf, tau)
        engine = _engine(graph, block=block, pmf=pmf, tau=tau)
        sources = np.arange(num_u, dtype=np.int64)
        items, _ = engine.query(sources, n, mode="mhs")
        np.testing.assert_array_equal(items, select_topn(s, n))
        items, _ = engine.query(sources, n, mode="mhp")
        np.testing.assert_array_equal(items, select_topn(p, n))


# ---------------------------------------------------------------------------
# Store-backed (mmap) graphs
# ---------------------------------------------------------------------------
class TestStoreBacked:
    @pytest.fixture(scope="class")
    def store_pair(self, tmp_path_factory):
        # Both sides parse the same TSV, so node indexing is identical and
        # mmap-vs-resident comparisons can demand bitwise equality.
        root = tmp_path_factory.mktemp("similarity-store")
        graph = erdos_renyi_bipartite(30, 18, 140, weighted=True, seed=11)
        path = root / "edges.tsv"
        coo = graph.w.tocoo()
        with open(path, "w", encoding="utf-8") as handle:
            for u, v, weight in zip(
                coo.row.tolist(), coo.col.tolist(), coo.data.tolist()
            ):
                handle.write(f"{u}\t{v}\t{weight!r}\n")
        from repro.graph import read_edge_list

        store, _ = build_graph_store(path, root / "store", chunk_edges=64)
        return read_edge_list(path), store.graph()

    def test_mmap_rows_bitwise_identical_to_resident(self, store_pair):
        resident, mmapped = store_pair
        sources = np.arange(resident.num_u, dtype=np.int64)
        anchor = _engine(resident)
        engine = _engine(mmapped)
        np.testing.assert_array_equal(
            engine.h_rows(sources), anchor.h_rows(sources)
        )
        np.testing.assert_array_equal(
            engine.mhs_rows(sources), anchor.mhs_rows(sources)
        )
        np.testing.assert_array_equal(
            engine.mhp_rows(sources), anchor.mhp_rows(sources)
        )

    def test_mmap_transposed_lists_match_resident(self, store_pair):
        resident, mmapped = store_pair
        sources = np.arange(resident.num_v, dtype=np.int64)
        anchor = _engine(transposed_graph(resident))
        engine = _engine(transposed_graph(mmapped))
        for mode in SIMILARITY_MODES:
            expected, _ = anchor.query(sources, 5, mode=mode)
            items, _ = engine.query(sources, 5, mode=mode)
            np.testing.assert_array_equal(items, expected)


# ---------------------------------------------------------------------------
# Diagonal probing
# ---------------------------------------------------------------------------
class TestDiagonal:
    def test_matches_dense_diagonal(self, graph):
        h = h_matrix(graph, PMF, TAU)
        diag = _engine(graph).h_diagonal()
        np.testing.assert_allclose(diag, np.diag(h), rtol=1e-12, atol=1e-12)

    @pytest.mark.parametrize("block_size", (1, 5, 64, 1000))
    def test_bitwise_identical_at_every_block_size(self, graph, block_size):
        anchor = _engine(graph).h_diagonal()
        probed = _engine(graph).h_diagonal(block_size)
        np.testing.assert_array_equal(probed, anchor)

    def test_seed_fixes_schedule_not_values(self, graph):
        anchor = _engine(graph).h_diagonal()
        for seed in (0, 1, 99):
            np.testing.assert_array_equal(
                _engine(graph).h_diagonal(7, seed=seed), anchor
            )

    def test_cached_after_first_probe(self, graph):
        engine = _engine(graph)
        first = engine.h_diagonal()
        assert engine.h_diagonal(block_size=3) is first


# ---------------------------------------------------------------------------
# Worker clones
# ---------------------------------------------------------------------------
class TestClone:
    def test_clone_shares_diagonal_and_matches(self, graph):
        engine = _engine(graph)
        diag = engine.h_diagonal()
        clone = engine.clone_for_worker()
        assert clone._diag is diag
        sources = np.arange(graph.num_u, dtype=np.int64)
        for mode in SIMILARITY_MODES:
            expected, _ = engine.query(sources, 8, mode=mode)
            items, _ = clone.query(sources, 8, mode=mode)
            np.testing.assert_array_equal(items, expected)

    def test_concurrent_clones_never_contend(self, graph):
        engine = _engine(graph)
        engine.h_diagonal()
        sources = np.arange(graph.num_u, dtype=np.int64)
        expected, _ = engine.query(sources, 6, mode="mhs")
        results = {}

        def worker(slot):
            clone = engine.clone_for_worker()
            for _ in range(5):
                items, _ = clone.query(sources, 6, mode="mhs")
                results.setdefault(slot, []).append(items)

        threads = [
            threading.Thread(target=worker, args=(k,)) for k in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(results) == 4
        for rounds in results.values():
            for items in rounds:
                np.testing.assert_array_equal(items, expected)


# ---------------------------------------------------------------------------
# Cost accounting
# ---------------------------------------------------------------------------
class TestAccounting:
    @pytest.mark.parametrize("mode", SIMILARITY_MODES)
    def test_matvecs_counted_at_linalg_layer(self, graph, mode):
        engine = _engine(graph)
        engine.h_diagonal()  # pre-pay the probe outside the window
        sources = np.arange(13, dtype=np.int64)
        with obs.collect() as collector:
            engine.query(sources, 5, mode=mode)
        assert collector.ops.sparse_matvecs == (
            engine.matvecs_per_source(mode) * sources.size
        )

    def test_per_source_cost_formula(self, graph):
        engine = _engine(graph)
        assert engine.matvecs_per_source("mhs") == 2 * TAU
        assert engine.matvecs_per_source("mhp") == 2 * TAU + 1
        assert engine.diagonal_matvecs() == 2 * TAU * graph.num_u

    def test_workspace_reused_across_queries(self, graph):
        engine = _engine(graph)
        engine.query([0, 1, 2], 5, mode="mhp")
        held = engine.workspace_bytes()
        assert held > 0
        engine.query(np.arange(graph.num_u), 5, mode="mhs")
        # Wider batches may grow the one-hot buffer once; repeating the
        # same shapes must not.
        grown = engine.workspace_bytes()
        engine.query(np.arange(graph.num_u), 5, mode="mhs")
        assert engine.workspace_bytes() == grown


# ---------------------------------------------------------------------------
# Validation
# ---------------------------------------------------------------------------
class TestValidation:
    def test_rejects_bad_parameters(self, graph):
        with pytest.raises(ValueError, match="tau"):
            SimilarityEngine(graph, PMF, -1)
        with pytest.raises(ValueError, match="block_sources"):
            SimilarityEngine(graph, PMF, 2, block_sources=0)

    def test_rejects_unknown_mode(self, graph):
        engine = _engine(graph)
        with pytest.raises(ValueError, match="mode"):
            engine.query([0], 3, mode="cosine")
        with pytest.raises(ValueError, match="mode"):
            engine.matvecs_per_source("cosine")

    def test_rejects_out_of_range_sources(self, graph):
        engine = _engine(graph)
        with pytest.raises(IndexError, match="out of range"):
            engine.query([graph.num_u], 3)
        with pytest.raises(IndexError, match="out of range"):
            engine.h_rows([-1])

    def test_rejects_bad_diagonal_block(self, graph):
        with pytest.raises(ValueError, match="block_size"):
            _engine(graph).h_diagonal(0)
