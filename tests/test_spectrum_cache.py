"""Tests for :class:`repro.linalg.SpectrumCache` and its GEBE^p wiring.

The SVD of the normalized ``W`` is lambda-independent (Algorithm 2 applies
``lambda`` only through the spectral map), so a lambda sweep sharing one
cache must perform **exactly one randomized SVD** — asserted here via the
obs ``svd_factorizations`` counter, not wall time.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro import obs
from repro.core import GEBEPoisson
from repro.datasets import toy_graph
from repro.linalg import DtypePolicy, SpectrumCache, matrix_fingerprint


@pytest.fixture
def w(rng):
    dense = np.where(rng.random((12, 8)) < 0.5, rng.random((12, 8)), 0.0)
    dense[0, 0] = 1.0
    return sp.csr_matrix(dense)


class TestMatrixFingerprint:
    def test_deterministic_and_copy_invariant(self, w):
        assert matrix_fingerprint(w) == matrix_fingerprint(w.copy())

    def test_sensitive_to_values(self, w):
        other = w.copy()
        other.data[0] += 1.0
        assert matrix_fingerprint(w) != matrix_fingerprint(other)

    def test_sensitive_to_structure(self, w):
        other = sp.csr_matrix(w.toarray().T)
        assert matrix_fingerprint(w) != matrix_fingerprint(other)

    def test_accepts_non_csr_input(self, w):
        assert matrix_fingerprint(sp.coo_matrix(w)) == matrix_fingerprint(w)


class TestSpectrumCache:
    def test_miss_then_hit_returns_identical_result(self, w):
        cache = SpectrumCache()
        first, event1 = cache.get_or_compute(w, 4, 0.1, strategy="power", seed=7)
        second, event2 = cache.get_or_compute(w, 4, 0.1, strategy="power", seed=7)
        assert (event1, event2) == ("miss", "hit")
        assert second is first
        assert (cache.hits, cache.misses) == (1, 1)

    def test_hit_with_smaller_k_slices(self, w):
        cache = SpectrumCache()
        full, _ = cache.get_or_compute(w, 6, 0.1, strategy="power", seed=7)
        sliced, event = cache.get_or_compute(w, 3, 0.1, strategy="power", seed=7)
        assert event == "hit"
        assert sliced.rank == 3
        np.testing.assert_array_equal(sliced.u, full.u[:, :3])
        np.testing.assert_array_equal(sliced.s, full.s[:3])
        np.testing.assert_array_equal(sliced.vt, full.vt[:3])

    def test_larger_k_is_a_miss_and_replaces_entry(self, w):
        cache = SpectrumCache()
        cache.get_or_compute(w, 3, 0.1, strategy="power", seed=7)
        bigger, event = cache.get_or_compute(w, 6, 0.1, strategy="power", seed=7)
        assert event == "miss"
        assert bigger.rank == 6
        assert len(cache) == 1  # same key, replaced

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"seed": 8},
            {"epsilon": 0.2},
            {"strategy": "block_krylov"},
            {"policy": DtypePolicy.float32()},
        ],
    )
    def test_key_sensitivity(self, w, kwargs):
        cache = SpectrumCache()
        base = dict(epsilon=0.1, strategy="power", seed=7, policy=None)
        cache.get_or_compute(w, 4, base["epsilon"], strategy=base["strategy"],
                             seed=base["seed"], policy=base["policy"])
        varied = dict(base, **{k: v for k, v in kwargs.items() if k != "epsilon"})
        epsilon = kwargs.get("epsilon", base["epsilon"])
        _, event = cache.get_or_compute(
            w, 4, epsilon, strategy=varied["strategy"], seed=varied["seed"],
            policy=varied["policy"],
        )
        assert event == "miss"

    def test_thread_count_does_not_split_the_key(self, w):
        # Parallelism is bit-identical, so results are shareable across
        # thread counts.
        cache = SpectrumCache()
        cache.get_or_compute(w, 4, 0.1, strategy="power", seed=7,
                             policy=DtypePolicy())
        _, event = cache.get_or_compute(w, 4, 0.1, strategy="power", seed=7,
                                        policy=DtypePolicy().with_threads(4))
        assert event == "hit"

    def test_unseeded_requests_bypass(self, w):
        cache = SpectrumCache()
        _, event = cache.get_or_compute(w, 4, 0.1, strategy="power", seed=None)
        assert event == "bypass"
        assert cache.bypasses == 1
        assert len(cache) == 0

    def test_lru_eviction(self, w, rng):
        cache = SpectrumCache(capacity=2)
        for seed in (1, 2, 3):
            cache.get_or_compute(w, 3, 0.1, strategy="power", seed=seed)
        assert len(cache) == 2
        _, event = cache.get_or_compute(w, 3, 0.1, strategy="power", seed=1)
        assert event == "miss"  # seed=1 was evicted

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            SpectrumCache(capacity=0)

    def test_clear_drops_entries(self, w):
        cache = SpectrumCache()
        cache.get_or_compute(w, 3, 0.1, strategy="power", seed=7)
        cache.clear()
        assert len(cache) == 0
        _, event = cache.get_or_compute(w, 3, 0.1, strategy="power", seed=7)
        assert event == "miss"


class TestGEBEPoissonIntegration:
    def test_cached_fit_matches_uncached(self):
        graph = toy_graph()
        plain = GEBEPoisson(8, seed=0).fit(graph)
        cached = GEBEPoisson(8, seed=0, spectrum_cache=SpectrumCache()).fit(graph)
        np.testing.assert_array_equal(cached.u, plain.u)
        np.testing.assert_array_equal(cached.v, plain.v)

    def test_metadata_records_cache_events(self):
        graph = toy_graph()
        cache = SpectrumCache()
        first = GEBEPoisson(8, seed=0, spectrum_cache=cache).fit(graph)
        second = GEBEPoisson(8, lam=2.5, seed=0, spectrum_cache=cache).fit(graph)
        assert first.metadata["spectrum_cache"] == "miss"
        assert second.metadata["spectrum_cache"] == "hit"
        plain = GEBEPoisson(8, seed=0).fit(graph)
        assert "spectrum_cache" not in plain.metadata

    def test_lambda_sweep_performs_exactly_one_svd(self):
        # The tentpole acceptance criterion: a lambda sweep over a shared
        # cache factorizes W once; only the spectral map is recomputed.
        graph = toy_graph()
        cache = SpectrumCache()
        lambdas = (0.5, 1.0, 2.0, 4.0)
        with obs.collect() as collector:
            for lam in lambdas:
                GEBEPoisson(8, lam=lam, seed=0, spectrum_cache=cache).fit(graph)
        ops = collector.report(method="sweep", wall_seconds=0.0).ops
        assert ops["svd_factorizations"] == 1
        assert cache.misses == 1
        assert cache.hits == len(lambdas) - 1

        # The uncached control: one factorization per cell.
        with obs.collect() as collector:
            for lam in lambdas:
                GEBEPoisson(8, lam=lam, seed=0).fit(graph)
        uncached = collector.report(method="sweep", wall_seconds=0.0).ops
        assert uncached["svd_factorizations"] == len(lambdas)

    def test_unseeded_solver_bypasses_cache(self):
        graph = toy_graph()
        cache = SpectrumCache()
        result = GEBEPoisson(8, spectrum_cache=cache).fit(graph)
        assert result.metadata["spectrum_cache"] == "bypass"
        assert len(cache) == 0
