"""Unit tests for the link prediction task."""

import numpy as np
import pytest

from repro.core.base import EmbeddingResult
from repro.tasks import (
    LinkPredictionTask,
    evaluate_link_prediction,
    link_prediction_split,
)


def oracle_result(graph, data, dimension=16):
    """Embeddings from the FULL graph (sees held-out edges): near-perfect."""
    dense = graph.to_dense()
    u_svd, s, vt = np.linalg.svd(dense, full_matrices=False)
    k = min(dimension, s.size)
    return EmbeddingResult(
        u=u_svd[:, :k] * s[:k], v=vt[:k].T, method="oracle"
    )


class TestEvaluate:
    def test_oracle_scores_well_above_chance(self, block_graph):
        # The protocol's linear classifier on concatenated features cannot
        # represent the u.v interaction, so even an oracle tops out well
        # below 1.0 — but must clear chance by a wide margin.
        data = link_prediction_split(block_graph, 0.4, seed=0)
        report = evaluate_link_prediction(
            oracle_result(block_graph, data), data
        )
        assert report.auc_roc > 0.7
        assert report.auc_pr > 0.7

    def test_random_embeddings_near_chance(self, block_graph):
        data = link_prediction_split(block_graph, 0.4, seed=0)
        rng = np.random.default_rng(0)
        random_result = EmbeddingResult(
            u=rng.standard_normal((block_graph.num_u, 8)),
            v=rng.standard_normal((block_graph.num_v, 8)),
            method="random",
        )
        report = evaluate_link_prediction(random_result, data)
        assert report.auc_roc == pytest.approx(0.5, abs=0.1)

    def test_report_fields(self, block_graph):
        data = link_prediction_split(block_graph, 0.4, seed=0)
        report = evaluate_link_prediction(oracle_result(block_graph, data), data)
        assert report.method == "oracle"
        assert report.num_test == data.test_labels.size
        assert "AUC-ROC=" in report.row()


class TestLinkPredictionTask:
    def test_run_produces_report(self, block_graph):
        from repro.core import GEBEPoisson

        task = LinkPredictionTask(block_graph, seed=0)
        report = task.run(GEBEPoisson(dimension=16, seed=0))
        assert 0.5 < report.auc_roc <= 1.0
        assert report.method == "GEBE^p"

    def test_methods_fit_on_residual_graph(self, block_graph):
        task = LinkPredictionTask(block_graph, seed=0)
        assert task.data.train.num_edges < block_graph.num_edges

    def test_same_split_across_methods(self, block_graph):
        from repro.core import GEBEPoisson, MHPOnlyBNE

        task = LinkPredictionTask(block_graph, seed=0)
        before = task.data.test_u.copy()
        task.run(GEBEPoisson(dimension=8, seed=0))
        task.run(MHPOnlyBNE(dimension=8, seed=0))
        np.testing.assert_array_equal(task.data.test_u, before)

    def test_structure_aware_beats_random(self, block_graph):
        from repro.core import GEBEPoisson

        task = LinkPredictionTask(block_graph, seed=0)
        report = task.run(GEBEPoisson(dimension=16, seed=0))
        rng = np.random.default_rng(1)
        random_result = EmbeddingResult(
            u=rng.standard_normal((block_graph.num_u, 16)),
            v=rng.standard_normal((block_graph.num_v, 16)),
        )
        random_report = evaluate_link_prediction(random_result, task.data)
        assert report.auc_roc > random_report.auc_roc + 0.1
