"""Unit tests for the from-scratch logistic regression."""

import numpy as np
import pytest

from repro.tasks import LogisticRegression


@pytest.fixture
def separable(rng):
    x_neg = rng.normal(-2.0, 0.5, size=(100, 3))
    x_pos = rng.normal(2.0, 0.5, size=(100, 3))
    x = np.vstack([x_neg, x_pos])
    y = np.r_[np.zeros(100), np.ones(100)]
    return x, y


class TestFit:
    def test_separable_data_classified(self, separable):
        x, y = separable
        model = LogisticRegression().fit(x, y)
        assert (model.predict(x) == y).mean() > 0.99

    def test_probabilities_in_unit_interval(self, separable):
        x, y = separable
        model = LogisticRegression().fit(x, y)
        probs = model.predict_proba(x)
        assert (probs >= 0).all() and (probs <= 1).all()

    def test_probabilities_ordered_by_score(self, separable):
        x, y = separable
        model = LogisticRegression().fit(x, y)
        scores = model.decision_function(x)
        probs = model.predict_proba(x)
        order = np.argsort(scores)
        assert (np.diff(probs[order]) >= -1e-12).all()

    def test_one_dimensional_threshold(self):
        x = np.linspace(0, 1, 50).reshape(-1, 1)
        y = (x.ravel() > 0.5).astype(float)
        model = LogisticRegression(l2=1e-4).fit(x, y)
        assert model.predict(np.array([[0.1]]))[0] == 0
        assert model.predict(np.array([[0.9]]))[0] == 1

    def test_regularization_shrinks_weights(self, separable):
        x, y = separable
        loose = LogisticRegression(l2=1e-6).fit(x, y)
        tight = LogisticRegression(l2=100.0).fit(x, y)
        assert np.linalg.norm(tight.weights) < np.linalg.norm(loose.weights)

    def test_constant_feature_handled(self, rng):
        x = np.hstack([np.ones((40, 1)), rng.standard_normal((40, 1))])
        y = (x[:, 1] > 0).astype(float)
        model = LogisticRegression().fit(x, y)
        assert np.isfinite(model.weights).all()

    def test_class_prior_learned(self):
        # All-informative-free data: probabilities approach the base rate.
        rng = np.random.default_rng(0)
        x = rng.standard_normal((400, 2))
        y = np.r_[np.ones(300), np.zeros(100)]
        model = LogisticRegression().fit(x, y)
        assert model.predict_proba(x).mean() == pytest.approx(0.75, abs=0.05)


class TestValidation:
    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            LogisticRegression().predict_proba(np.zeros((2, 2)))

    def test_non_binary_labels(self, rng):
        with pytest.raises(ValueError):
            LogisticRegression().fit(rng.random((4, 2)), np.array([0, 1, 2, 1]))

    def test_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            LogisticRegression().fit(rng.random((4, 2)), np.zeros(3))

    def test_non_2d_features(self):
        with pytest.raises(ValueError):
            LogisticRegression().fit(np.zeros(4), np.zeros(4))

    def test_negative_l2(self):
        with pytest.raises(ValueError):
            LogisticRegression(l2=-1.0)
