"""Unit tests for node classification from normalized embeddings."""

import numpy as np
import pytest

from repro.core import GEBEPoisson
from repro.core.base import EmbeddingResult
from repro.datasets import BlockModel, stochastic_block_bipartite
from repro.tasks import (
    NodeClassificationTask,
    OneVsRestClassifier,
    macro_f1,
)


@pytest.fixture(scope="module")
def labeled_graph():
    model = BlockModel(
        num_u=300, num_v=220, num_blocks=4, num_edges=3600, in_out_ratio=8.0
    )
    return stochastic_block_bipartite(model, seed=3, return_blocks=True)


class TestMacroF1:
    def test_perfect(self):
        labels = np.array([0, 0, 1, 1, 2])
        assert macro_f1(labels, labels) == 1.0

    def test_hand_computed(self):
        labels = np.array([0, 0, 1, 1])
        predictions = np.array([0, 1, 1, 1])
        # class 0: P=1, R=0.5 -> F1 = 2/3; class 1: P=2/3, R=1 -> F1 = 0.8.
        assert macro_f1(labels, predictions) == pytest.approx((2 / 3 + 0.8) / 2)

    def test_missing_class_scores_zero(self):
        labels = np.array([0, 1])
        predictions = np.array([0, 0])
        # class 1 never predicted: F1 = 0; class 0: P=0.5, R=1 -> 2/3.
        assert macro_f1(labels, predictions) == pytest.approx((2 / 3) / 2)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            macro_f1(np.zeros(3), np.zeros(2))


class TestOneVsRest:
    def test_separable_three_classes(self, rng):
        centers = np.array([[0.0, 5.0], [5.0, 0.0], [-5.0, -5.0]])
        labels = np.repeat([0, 1, 2], 40)
        features = centers[labels] + 0.3 * rng.standard_normal((120, 2))
        model = OneVsRestClassifier().fit(features, labels)
        assert (model.predict(features) == labels).mean() > 0.98

    def test_decision_matrix_shape(self, rng):
        features = rng.standard_normal((30, 3))
        labels = rng.integers(0, 3, size=30)
        labels[:3] = [0, 1, 2]
        model = OneVsRestClassifier().fit(features, labels)
        assert model.decision_matrix(features).shape == (30, 3)

    def test_single_class_rejected(self, rng):
        with pytest.raises(ValueError):
            OneVsRestClassifier().fit(rng.random((5, 2)), np.zeros(5))

    def test_predict_before_fit(self, rng):
        with pytest.raises(RuntimeError):
            OneVsRestClassifier().predict(rng.random((2, 2)))


class TestNodeClassificationTask:
    def test_gebe_p_recovers_planted_blocks(self, labeled_graph):
        graph, blocks_u, _ = labeled_graph
        task = NodeClassificationTask(graph, blocks_u, side="u", seed=0)
        report = task.run(GEBEPoisson(dimension=16, seed=0))
        assert report.accuracy > 0.7
        assert report.macro_f1 > 0.7

    def test_random_embeddings_near_chance(self, labeled_graph):
        graph, blocks_u, _ = labeled_graph
        task = NodeClassificationTask(graph, blocks_u, side="u", seed=0)
        rng = np.random.default_rng(0)
        random_result = EmbeddingResult(
            u=rng.standard_normal((graph.num_u, 16)),
            v=rng.standard_normal((graph.num_v, 16)),
            method="random",
        )
        report = task.evaluate(random_result)
        assert report.accuracy < 0.5  # 4 classes -> chance ~0.25

    def test_v_side(self, labeled_graph):
        graph, _, blocks_v = labeled_graph
        task = NodeClassificationTask(graph, blocks_v, side="v", seed=0)
        report = task.run(GEBEPoisson(dimension=16, seed=0))
        assert report.side == "v"
        assert report.accuracy > 0.6

    def test_split_is_disjoint(self, labeled_graph):
        graph, blocks_u, _ = labeled_graph
        task = NodeClassificationTask(graph, blocks_u, seed=0)
        assert not set(task.train_nodes) & set(task.test_nodes)
        assert task.train_nodes.size + task.test_nodes.size == graph.num_u

    def test_report_row(self, labeled_graph):
        graph, blocks_u, _ = labeled_graph
        task = NodeClassificationTask(graph, blocks_u, seed=0)
        report = task.run(GEBEPoisson(dimension=8, seed=0))
        assert "acc=" in report.row()

    def test_validation(self, labeled_graph):
        graph, blocks_u, _ = labeled_graph
        with pytest.raises(ValueError):
            NodeClassificationTask(graph, blocks_u, side="w")
        with pytest.raises(ValueError):
            NodeClassificationTask(graph, blocks_u[:-1])
        with pytest.raises(ValueError):
            NodeClassificationTask(graph, blocks_u, train_fraction=1.0)
