"""Unit tests for the top-N recommendation task."""

import numpy as np
import pytest

from repro.core.base import BipartiteEmbedder, EmbeddingResult
from repro.tasks import (
    RecommendationTask,
    evaluate_recommendation,
    ground_truth_lists,
    recommend_top_n,
    split_edges,
)


class _OracleEmbedder(BipartiteEmbedder):
    """Cheating embedder whose scores equal the *full* graph's weights."""

    name = "oracle"

    def __init__(self, full_graph):
        super().__init__(dimension=min(full_graph.num_u, full_graph.num_v))
        self._full = full_graph

    def _embed(self, graph):
        dense = self._full.to_dense()
        u_svd, s, vt = np.linalg.svd(dense, full_matrices=False)
        k = self.dimension
        return u_svd[:, :k] * s[:k], vt[:k].T, {}


class TestGroundTruth:
    def test_ranked_by_weight(self, rating_graph):
        split = split_edges(rating_graph, 0.6, seed=0)
        truths = ground_truth_lists(split)
        for user, items in list(truths.items())[:10]:
            weights = [
                split.test_w[
                    np.flatnonzero(
                        (split.test_u == user) & (split.test_v == item)
                    )[0]
                ]
                for item in items
            ]
            assert weights == sorted(weights, reverse=True)

    def test_only_test_users_present(self, rating_graph):
        split = split_edges(rating_graph, 0.6, seed=0)
        truths = ground_truth_lists(split)
        assert set(truths) == set(split.test_u.tolist())


class TestRecommendTopN:
    def test_excludes_training_items(self, rating_graph):
        split = split_edges(rating_graph, 0.6, seed=0)
        result = EmbeddingResult(
            u=np.ones((rating_graph.num_u, 2)),
            v=np.ones((rating_graph.num_v, 2)),
        )
        user = int(split.train.edge_array()[0][0])
        recommended = recommend_top_n(result, split.train, user, 10)
        seen = set(split.train.u_neighbors(user).tolist())
        assert not seen & set(recommended)

    def test_returns_n_items(self, rating_graph):
        split = split_edges(rating_graph, 0.6, seed=0)
        result = EmbeddingResult(
            u=np.random.default_rng(0).random((rating_graph.num_u, 3)),
            v=np.random.default_rng(1).random((rating_graph.num_v, 3)),
        )
        recommended = recommend_top_n(result, split.train, 0, 7)
        assert len(recommended) == 7
        assert len(set(recommended)) == 7

    def test_ordered_by_score(self, rating_graph):
        split = split_edges(rating_graph, 0.6, seed=0)
        rng = np.random.default_rng(2)
        result = EmbeddingResult(
            u=rng.random((rating_graph.num_u, 3)),
            v=rng.random((rating_graph.num_v, 3)),
        )
        recommended = recommend_top_n(result, split.train, 0, 5)
        scores = [result.score(0, item) for item in recommended]
        assert scores == sorted(scores, reverse=True)


class TestEvaluate:
    def test_oracle_beats_random(self, rating_graph):
        split = split_edges(rating_graph, 0.6, seed=0)
        oracle = _OracleEmbedder(rating_graph).fit(split.train)
        oracle_report = evaluate_recommendation(oracle, split, n=10)

        rng = np.random.default_rng(0)
        random_result = EmbeddingResult(
            u=rng.standard_normal((rating_graph.num_u, 8)),
            v=rng.standard_normal((rating_graph.num_v, 8)),
            method="random",
        )
        random_report = evaluate_recommendation(random_result, split, n=10)
        assert oracle_report.f1 > random_report.f1
        assert oracle_report.ndcg > random_report.ndcg
        assert oracle_report.mrr > random_report.mrr

    def test_report_fields(self, rating_graph):
        split = split_edges(rating_graph, 0.6, seed=0)
        result = EmbeddingResult(
            u=np.ones((rating_graph.num_u, 2)),
            v=np.ones((rating_graph.num_v, 2)),
            method="ones",
            elapsed_seconds=1.5,
        )
        report = evaluate_recommendation(result, split, n=5)
        assert report.method == "ones"
        assert report.n == 5
        assert report.elapsed_seconds == 1.5
        assert report.num_users > 0
        assert "F1=" in report.row()


class TestRecommendationTask:
    def test_core_filter_applied(self, rating_graph):
        task = RecommendationTask(rating_graph, core=5, seed=0)
        assert task.graph.u_degrees().min() >= 5

    def test_same_split_for_all_methods(self, rating_graph):
        task = RecommendationTask(rating_graph, core=3, seed=0)
        first = task.split.test_u.copy()
        task.run(_OracleEmbedder(rating_graph))
        np.testing.assert_array_equal(task.split.test_u, first)

    def test_too_aggressive_core_rejected(self, rating_graph):
        with pytest.raises(ValueError, match="core"):
            RecommendationTask(rating_graph, core=10_000, seed=0)
