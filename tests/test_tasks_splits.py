"""Unit tests for edge splitting and negative sampling."""

import numpy as np
import pytest

from repro.tasks import link_prediction_split, sample_negative_edges, split_edges


class TestSplitEdges:
    def test_proportions(self, rating_graph):
        split = split_edges(rating_graph, 0.6, seed=0)
        expected_train = round(0.6 * rating_graph.num_edges)
        assert split.train.num_edges == expected_train
        assert split.num_test_edges == rating_graph.num_edges - expected_train

    def test_partition_is_exact(self, rating_graph):
        split = split_edges(rating_graph, 0.7, seed=1)
        train_edges = set(zip(*split.train.edge_array()[:2]))
        test_edges = set(zip(split.test_u, split.test_v))
        assert not train_edges & test_edges
        all_edges = set(zip(*rating_graph.edge_array()[:2]))
        assert train_edges | test_edges == all_edges

    def test_weights_preserved(self, rating_graph):
        split = split_edges(rating_graph, 0.5, seed=2)
        for u, v, w in zip(split.test_u[:20], split.test_v[:20], split.test_w[:20]):
            assert rating_graph.weight(int(u), int(v)) == w

    def test_node_sets_unchanged(self, rating_graph):
        split = split_edges(rating_graph, 0.6, seed=0)
        assert split.train.num_u == rating_graph.num_u
        assert split.train.num_v == rating_graph.num_v

    def test_reproducible(self, rating_graph):
        a = split_edges(rating_graph, 0.6, seed=9)
        b = split_edges(rating_graph, 0.6, seed=9)
        np.testing.assert_array_equal(a.test_u, b.test_u)

    def test_different_seeds_differ(self, rating_graph):
        a = split_edges(rating_graph, 0.6, seed=1)
        b = split_edges(rating_graph, 0.6, seed=2)
        assert not np.array_equal(a.test_u, b.test_u)

    def test_fraction_validated(self, rating_graph):
        with pytest.raises(ValueError):
            split_edges(rating_graph, 0.0)
        with pytest.raises(ValueError):
            split_edges(rating_graph, 1.0)


class TestNegativeSampling:
    def test_negatives_are_non_edges(self, block_graph):
        neg_u, neg_v = sample_negative_edges(block_graph, 500, seed=0)
        for u, v in zip(neg_u, neg_v):
            assert not block_graph.has_edge(int(u), int(v))

    def test_count_and_distinct(self, block_graph):
        neg_u, neg_v = sample_negative_edges(block_graph, 400, seed=1)
        assert neg_u.size == 400
        assert len(set(zip(neg_u, neg_v))) == 400

    def test_exclude_respected(self, block_graph):
        first_u, first_v = sample_negative_edges(block_graph, 300, seed=2)
        second_u, second_v = sample_negative_edges(
            block_graph, 300, seed=3, exclude=(first_u, first_v)
        )
        assert not set(zip(first_u, first_v)) & set(zip(second_u, second_v))

    def test_impossible_count_rejected(self):
        from repro.datasets import complete_bipartite

        graph = complete_bipartite(3, 3)
        with pytest.raises(ValueError, match="non-edges"):
            sample_negative_edges(graph, 1, seed=0)


class TestLinkPredictionSplit:
    def test_balanced_test_set(self, block_graph):
        data = link_prediction_split(block_graph, 0.4, seed=0)
        assert data.test_labels.sum() == data.test_labels.size / 2

    def test_positive_test_edges_removed_from_train(self, block_graph):
        data = link_prediction_split(block_graph, 0.4, seed=0)
        positives = data.test_labels == 1
        for u, v in zip(data.test_u[positives][:50], data.test_v[positives][:50]):
            assert not data.train.has_edge(int(u), int(v))

    def test_negative_test_pairs_not_edges(self, block_graph):
        data = link_prediction_split(block_graph, 0.4, seed=0)
        negatives = data.test_labels == 0
        for u, v in zip(data.test_u[negatives][:50], data.test_v[negatives][:50]):
            assert not block_graph.has_edge(int(u), int(v))

    def test_training_negatives_disjoint_from_test_negatives(self, block_graph):
        data = link_prediction_split(block_graph, 0.4, seed=0)
        negatives = data.test_labels == 0
        test_neg = set(zip(data.test_u[negatives], data.test_v[negatives]))
        train_neg = set(zip(data.train_neg_u, data.train_neg_v))
        assert not test_neg & train_neg

    def test_training_positives_match_train_graph(self, block_graph):
        data = link_prediction_split(block_graph, 0.4, seed=0)
        assert data.train_pos_u.size == data.train.num_edges

    def test_reproducible(self, block_graph):
        a = link_prediction_split(block_graph, 0.4, seed=5)
        b = link_prediction_split(block_graph, 0.4, seed=5)
        np.testing.assert_array_equal(a.test_u, b.test_u)
        np.testing.assert_array_equal(a.train_neg_v, b.train_neg_v)
