"""Tests for the batched top-k retrieval engine and the selection primitive.

The load-bearing guarantee is *differential*: ``TopKEngine.top_items`` must
be element-for-element identical to the per-user
:meth:`~repro.core.base.EmbeddingResult.top_items` path for every block size
and thread count.  Determinism holds by construction — both paths select
with :func:`~repro.core.selection.select_topn` — and is pinned here against
random embeddings (well-separated scores) and integer-valued embeddings
(every dot product exactly representable, so even the GEMV-vs-GEMM
summation-order difference cannot reorder ties).
"""

import numpy as np
import pytest

from repro import obs
from repro.core.base import EmbeddingResult
from repro.core.selection import select_topn
from repro.graph import BipartiteGraph
from repro.linalg import DtypePolicy
from repro.metrics import RankingScores
from repro.tasks import (
    DEFAULT_BLOCK_ROWS,
    TopKEngine,
    evaluate_recommendation,
    ground_truth_lists,
    split_edges,
)


@pytest.fixture(scope="module")
def random_result(rating_graph_module):
    rng = np.random.default_rng(7)
    graph = rating_graph_module
    return EmbeddingResult(
        u=rng.standard_normal((graph.num_u, 8)),
        v=rng.standard_normal((graph.num_v, 8)),
        method="random",
    )


@pytest.fixture(scope="module")
def rating_graph_module():
    from repro.datasets import RatingModel, latent_factor_ratings

    return latent_factor_ratings(
        RatingModel(
            num_users=120,
            num_items=60,
            edges_per_user=12,
            num_factors=8,
            num_communities=4,
            noise=0.2,
        ),
        seed=3,
    )


def per_user_reference(result, n, graph=None):
    exclude = (lambda u: graph.u_neighbors(u)) if graph is not None else (
        lambda u: None
    )
    return np.stack(
        [
            result.top_items(user, n, exclude=exclude(user))
            for user in range(result.u.shape[0])
        ]
    )


# ---------------------------------------------------------------------------
# select_topn
# ---------------------------------------------------------------------------
class TestSelectTopn:
    def test_matches_lexsort_reference(self):
        # (score desc, index asc) is exactly lexsort((arange, -scores)).
        rng = np.random.default_rng(0)
        for _ in range(200):
            m = int(rng.integers(1, 40))
            n = int(rng.integers(0, 45))
            scores = rng.integers(0, 6, size=m).astype(float)
            want = np.lexsort((np.arange(m), -scores))[: min(n, m)]
            np.testing.assert_array_equal(select_topn(scores, n), want)

    def test_2d_rows_independent(self):
        rng = np.random.default_rng(1)
        block = rng.standard_normal((9, 30))
        picked = select_topn(block, 5)
        assert picked.shape == (9, 5)
        for i in range(9):
            np.testing.assert_array_equal(picked[i], select_topn(block[i], 5))

    def test_ties_break_to_smallest_index(self):
        scores = np.array([1.0, 3.0, 3.0, 3.0, 0.0])
        np.testing.assert_array_equal(select_topn(scores, 2), [1, 2])
        np.testing.assert_array_equal(select_topn(scores, 4), [1, 2, 3, 0])

    def test_n_larger_than_m_returns_all_sorted(self):
        scores = np.array([0.5, 2.0, 1.0])
        np.testing.assert_array_equal(select_topn(scores, 10), [1, 2, 0])

    def test_n_zero_and_empty_rows(self):
        assert select_topn(np.array([1.0, 2.0]), 0).shape == (0,)
        assert select_topn(np.empty((0, 5)), 3).shape == (0, 3)

    def test_rejects_bad_rank(self):
        with pytest.raises(ValueError, match="1-D or 2-D"):
            select_topn(np.zeros((2, 2, 2)), 1)

    def test_neginf_markers_sort_last_in_index_order(self):
        scores = np.array([-np.inf, 4.0, -np.inf, 1.0])
        np.testing.assert_array_equal(select_topn(scores, 4), [1, 3, 0, 2])


# ---------------------------------------------------------------------------
# Differential: batched engine vs per-user path
# ---------------------------------------------------------------------------
class TestDifferential:
    @pytest.mark.parametrize("block_rows", [1, 7, 1000])
    @pytest.mark.parametrize("threads", [1, 2, 4])
    def test_identical_to_per_user(
        self, random_result, rating_graph_module, block_rows, threads
    ):
        split = split_edges(rating_graph_module, 0.6, seed=0)
        reference = per_user_reference(random_result, 10, split.train)
        engine = TopKEngine.from_result(
            random_result,
            policy=DtypePolicy.default().with_threads(threads),
            block_rows=block_rows,
        )
        batched = engine.top_items(10, exclude=split.train)
        np.testing.assert_array_equal(batched, reference)

    @pytest.mark.parametrize("block_rows", [1, 13, 999])
    def test_tie_determinism_with_integer_embeddings(self, block_rows):
        # Constant user rows against small-integer item rows produce massive
        # score ties; every dot is exactly representable, so any summation
        # order gives bit-identical scores and the index tie-break decides.
        rng = np.random.default_rng(5)
        result = EmbeddingResult(
            u=np.ones((50, 4)),
            v=rng.integers(0, 3, size=(30, 4)).astype(float),
        )
        reference = per_user_reference(result, 7)
        for threads in (1, 2, 4):
            engine = TopKEngine.from_result(
                result,
                policy=DtypePolicy.default().with_threads(threads),
                block_rows=block_rows,
            )
            np.testing.assert_array_equal(engine.top_items(7), reference)

    def test_float32_policy_agrees_on_separated_scores(self, rating_graph_module):
        # Integer-valued embeddings are exact in both dtypes, so the float32
        # serving policy must produce the same lists as float64.
        rng = np.random.default_rng(11)
        result = EmbeddingResult(
            u=rng.integers(-4, 5, size=(40, 6)).astype(float),
            v=rng.integers(-4, 5, size=(25, 6)).astype(float),
        )
        lists64 = TopKEngine.from_result(
            result, policy=DtypePolicy.default()
        ).top_items(8)
        lists32 = TopKEngine.from_result(
            result, policy=DtypePolicy.float32()
        ).top_items(8)
        np.testing.assert_array_equal(lists32, lists64)

    def test_with_scores_matches_score_method(self, random_result):
        engine = TopKEngine.from_result(random_result, block_rows=16)
        users = np.array([3, 9, 40])
        for block_users, items, scores in engine.iter_top_items(
            5, users=users, with_scores=True
        ):
            for user, row, row_scores in zip(block_users, items, scores):
                expected = [
                    random_result.score(int(user), int(item)) for item in row
                ]
                np.testing.assert_allclose(row_scores, expected)


# ---------------------------------------------------------------------------
# Engine edge cases
# ---------------------------------------------------------------------------
class TestEngineEdges:
    def test_n_larger_than_item_count(self, random_result):
        engine = TopKEngine.from_result(random_result)
        out = engine.top_items(10_000)
        assert out.shape == (engine.num_users, engine.num_items)
        # Every row is a permutation of the full candidate set.
        np.testing.assert_array_equal(
            np.sort(out, axis=1),
            np.tile(np.arange(engine.num_items), (engine.num_users, 1)),
        )

    def test_all_items_excluded(self):
        rng = np.random.default_rng(3)
        result = EmbeddingResult(
            u=rng.standard_normal((12, 4)), v=rng.standard_normal((9, 4))
        )
        full = BipartiteGraph.from_dense(np.ones((12, 9)))
        out = TopKEngine.from_result(result, block_rows=5).top_items(
            4, exclude=full
        )
        # Everything is -inf: ties resolve to ascending index order, the
        # historical per-user behavior.
        np.testing.assert_array_equal(out, np.tile(np.arange(4), (12, 1)))

    def test_users_subset_and_empty(self, random_result):
        engine = TopKEngine.from_result(random_result)
        subset = engine.top_items(6, users=np.array([5, 2, 5]))
        assert subset.shape == (3, 6)
        np.testing.assert_array_equal(subset[0], subset[2])
        empty = engine.top_items(6, users=np.array([], dtype=np.int64))
        assert empty.shape == (0, 6)

    def test_rejects_out_of_range_users(self, random_result):
        engine = TopKEngine.from_result(random_result)
        with pytest.raises(ValueError, match="user indices"):
            engine.top_items(3, users=np.array([0, engine.num_users]))

    def test_rejects_oversized_exclusion_items(self, random_result):
        engine = TopKEngine.from_result(random_result)
        too_wide = BipartiteGraph.from_dense(
            np.ones((engine.num_users, engine.num_items + 1))
        )
        with pytest.raises(ValueError, match="exclusion graph"):
            engine.top_items(3, exclude=too_wide)

    def test_rejects_mismatched_dimensions(self):
        with pytest.raises(ValueError, match="dimension mismatch"):
            TopKEngine(np.zeros((4, 3)), np.zeros((5, 2)))
        with pytest.raises(ValueError, match="block_rows"):
            TopKEngine(np.zeros((4, 3)), np.zeros((5, 3)), block_rows=0)

    def test_default_block_rows(self, random_result):
        assert TopKEngine.from_result(random_result).block_rows == (
            DEFAULT_BLOCK_ROWS
        )


# ---------------------------------------------------------------------------
# Observability contract
# ---------------------------------------------------------------------------
class TestObsContract:
    def test_counters_and_watermark(self, random_result):
        engine_users = random_result.u.shape[0]
        num_items = random_result.v.shape[0]
        block = 32
        with obs.collect() as collector:
            engine = TopKEngine.from_result(random_result, block_rows=block)
            engine.top_items(5)
        blocks = -(-engine_users // block)  # ceil division
        assert collector.ops.gemms == blocks
        assert collector.ops.topk_candidates == engine_users * num_items
        # One block_rows x num_items compute-dtype buffer.
        assert collector.memory.workspace_bytes == block * num_items * 8

    def test_no_workspace_policy_allocates_per_block(self, random_result):
        policy = DtypePolicy.legacy()
        assert not policy.workspace
        with obs.collect() as collector:
            engine = TopKEngine.from_result(
                random_result, policy=policy, block_rows=16
            )
            engine.top_items(5)
        assert engine.workspace_bytes() == 0
        assert collector.memory.workspace_bytes == 0

    def test_null_collector_path_unaffected(self, random_result):
        # No collector active: the engine still produces correct output.
        engine = TopKEngine.from_result(random_result, block_rows=16)
        assert engine.top_items(5).shape == (random_result.u.shape[0], 5)


# ---------------------------------------------------------------------------
# Batched evaluation path
# ---------------------------------------------------------------------------
class TestBatchedEvaluation:
    def test_ground_truth_matches_reference(self, rating_graph_module):
        split = split_edges(rating_graph_module, 0.6, seed=0)
        reference = {}
        for u, v, w in zip(split.test_u, split.test_v, split.test_w):
            reference.setdefault(int(u), []).append((float(w), int(v)))
        reference = {
            u: [v for _, v in sorted(pairs, key=lambda p: (-p[0], p[1]))]
            for u, pairs in reference.items()
        }
        assert ground_truth_lists(split) == reference

    def test_ground_truth_empty_split(self, rating_graph_module):
        split = split_edges(rating_graph_module, 0.6, seed=0)
        empty = type(split)(
            train=split.train,
            test_u=np.empty(0, dtype=split.test_u.dtype),
            test_v=np.empty(0, dtype=split.test_v.dtype),
            test_w=np.empty(0, dtype=split.test_w.dtype),
        )
        assert ground_truth_lists(empty) == {}

    @pytest.mark.parametrize("block_rows", [1, 7, None])
    def test_batched_equals_legacy(
        self, random_result, rating_graph_module, block_rows
    ):
        split = split_edges(rating_graph_module, 0.6, seed=0)
        batched = evaluate_recommendation(
            random_result, split, n=10, batched=True, block_rows=block_rows
        )
        legacy = evaluate_recommendation(
            random_result, split, n=10, batched=False
        )
        for metric in ("f1", "ndcg", "mrr", "precision", "recall", "num_users"):
            assert getattr(batched, metric) == getattr(legacy, metric)

    def test_timing_split_populated(self, random_result, rating_graph_module):
        split = split_edges(rating_graph_module, 0.6, seed=0)
        report = evaluate_recommendation(random_result, split, n=10)
        assert report.scoring_seconds > 0
        assert report.metrics_seconds > 0
        assert "score" in report.row()

    def test_update_batch_equals_streaming_updates(self):
        truths = [[1, 2], [], [3]]
        recommendations = [[1, 5], [2, 3], [3, 1]]
        one = RankingScores()
        one.update_batch(recommendations, truths)
        two = RankingScores()
        for rec, truth in zip(recommendations, truths):
            two.update(rec, truth)
        assert one.summary() == two.summary()
        assert one.num_users == two.num_users == 2
