"""Unit tests for the random-walk substrate (alias, corpus, skip-gram)."""

import numpy as np
import pytest

from repro.datasets import figure1_graph, path_graph
from repro.graph import BipartiteGraph
from repro.walks import (
    AliasTable,
    SkipGramConfig,
    SkipGramTrainer,
    WalkSampler,
    extract_window_pairs,
    walks_to_sentences,
)


class TestAliasTable:
    def test_uniform_distribution(self, rng):
        table = AliasTable([1.0, 1.0, 1.0, 1.0])
        draws = table.sample(40_000, rng=rng)
        counts = np.bincount(draws, minlength=4) / draws.size
        np.testing.assert_allclose(counts, 0.25, atol=0.02)

    def test_skewed_distribution(self, rng):
        table = AliasTable([1.0, 3.0])
        draws = table.sample(50_000, rng=rng)
        assert (draws == 1).mean() == pytest.approx(0.75, abs=0.02)

    def test_zero_weight_never_drawn(self, rng):
        table = AliasTable([0.0, 1.0, 0.0])
        draws = table.sample(5_000, rng=rng)
        assert set(np.unique(draws)) == {1}

    def test_single_element(self, rng):
        table = AliasTable([7.0])
        assert (table.sample(100, rng=rng) == 0).all()

    def test_sample_one(self, rng):
        table = AliasTable([1.0, 2.0, 3.0])
        draws = [table.sample_one(rng) for _ in range(1000)]
        assert set(draws) <= {0, 1, 2}

    def test_reproducible(self):
        table = AliasTable([1.0, 2.0])
        a = table.sample(20, rng=np.random.default_rng(3))
        b = table.sample(20, rng=np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            AliasTable([])
        with pytest.raises(ValueError):
            AliasTable([-1.0, 2.0])
        with pytest.raises(ValueError):
            AliasTable([0.0, 0.0])


class TestWalkSampler:
    @pytest.fixture
    def sampler(self):
        return WalkSampler(figure1_graph().adjacency())

    def test_walks_follow_edges(self, sampler, rng):
        adjacency = figure1_graph().adjacency()
        walks = sampler.first_order_walks(3, 8, rng=rng)
        for row in walks:
            for a, b in zip(row[:-1], row[1:]):
                if a >= 0 and b >= 0:
                    assert adjacency[a, b] > 0

    def test_walk_shape(self, sampler, rng):
        walks = sampler.first_order_walks(2, 5, rng=rng)
        assert walks.shape == (2 * 9, 6)

    def test_bipartite_alternation(self, sampler, rng):
        # In a bipartite graph consecutive walk nodes are on opposite sides.
        walks = sampler.first_order_walks(2, 6, rng=rng)
        for row in walks:
            for a, b in zip(row[:-1], row[1:]):
                if a >= 0 and b >= 0:
                    assert (a < 4) != (b < 4)

    def test_dead_end_terminates(self, rng):
        # u0 -> v0 and nothing else from v0's other neighbor side.
        graph = BipartiteGraph.from_dense([[1.0]])
        sampler = WalkSampler(graph.adjacency())
        walks = sampler.first_order_walks(1, 5, rng=rng)
        # walk bounces u0-v0 forever (undirected), so no -1 here; instead
        # verify dead ends on a directed-ish isolated node case:
        import scipy.sparse as sp

        lonely = sp.csr_matrix((2, 2))  # no edges at all
        sampler2 = WalkSampler(lonely)
        walks2 = sampler2.first_order_walks(1, 3, rng=rng)
        assert (walks2[:, 1:] == -1).all()

    def test_explicit_starts(self, sampler, rng):
        starts = np.array([0, 0, 3])
        walks = sampler.first_order_walks(0, 4, rng=rng, starts=starts)
        np.testing.assert_array_equal(walks[:, 0], starts)

    def test_weighted_bias(self, rng):
        # u0 connects to v0 (weight 9) and v1 (weight 1).
        graph = BipartiteGraph.from_dense([[9.0, 1.0]])
        sampler = WalkSampler(graph.adjacency())
        starts = np.zeros(6000, dtype=np.int64)
        walks = sampler.first_order_walks(0, 1, rng=rng, starts=starts)
        first_step = walks[:, 1]
        assert (first_step == 1).mean() == pytest.approx(0.9, abs=0.02)

    def test_node2vec_walks_follow_edges(self, sampler, rng):
        adjacency = figure1_graph().adjacency()
        walks = sampler.node2vec_walks(3, 6, p=0.5, q=2.0, rng=rng)
        for row in walks:
            for a, b in zip(row[:-1], row[1:]):
                if a >= 0 and b >= 0:
                    assert adjacency[a, b] > 0

    def test_node2vec_return_bias(self, rng):
        # On a path graph, small p -> frequent immediate returns.
        graph = path_graph(6)
        sampler = WalkSampler(graph.adjacency())
        returny = sampler.node2vec_walks(30, 8, p=0.05, q=1.0, rng=np.random.default_rng(0))
        wandery = sampler.node2vec_walks(30, 8, p=20.0, q=1.0, rng=np.random.default_rng(0))

        def return_rate(walks):
            hits = total = 0
            for row in walks:
                for i in range(2, row.size):
                    if row[i] < 0:
                        break
                    total += 1
                    if row[i] == row[i - 2]:
                        hits += 1
            return hits / max(total, 1)

        assert return_rate(returny) > return_rate(wandery)

    def test_node2vec_validation(self, sampler):
        with pytest.raises(ValueError):
            sampler.node2vec_walks(1, 3, p=0.0)

    def test_non_square_rejected(self):
        import scipy.sparse as sp

        with pytest.raises(ValueError, match="square"):
            WalkSampler(sp.csr_matrix((3, 4)))

    def test_walk_length_validated(self, sampler):
        with pytest.raises(ValueError):
            sampler.first_order_walks(1, 0)


class TestWindowPairs:
    def test_window_one(self):
        walks = np.array([[0, 1, 2]])
        centers, contexts = extract_window_pairs(walks, 1)
        pairs = set(zip(centers.tolist(), contexts.tolist()))
        assert pairs == {(0, 1), (1, 0), (1, 2), (2, 1)}

    def test_window_two_includes_skips(self):
        walks = np.array([[0, 1, 2]])
        centers, contexts = extract_window_pairs(walks, 2)
        pairs = set(zip(centers.tolist(), contexts.tolist()))
        assert (0, 2) in pairs and (2, 0) in pairs

    def test_padding_excluded(self):
        walks = np.array([[0, 1, -1]])
        centers, contexts = extract_window_pairs(walks, 2)
        assert -1 not in centers and -1 not in contexts

    def test_empty_input(self):
        centers, contexts = extract_window_pairs(np.empty((0, 4), dtype=int), 2)
        assert centers.size == 0

    def test_window_validated(self):
        with pytest.raises(ValueError):
            extract_window_pairs(np.array([[0, 1]]), 0)

    def test_walks_to_sentences(self):
        walks = np.array([[0, 1, -1], [2, -1, -1], [3, 4, 5]])
        sentences = walks_to_sentences(walks)
        assert len(sentences) == 2  # the singleton walk is dropped
        np.testing.assert_array_equal(sentences[1], [3, 4, 5])


class TestSkipGram:
    def test_learns_cooccurrence_structure(self):
        # Two disjoint token pairs; embeddings of co-occurring tokens should
        # be more similar than across pairs.
        rng = np.random.default_rng(0)
        centers = np.array([0, 1, 2, 3] * 400)
        contexts = np.array([1, 0, 3, 2] * 400)
        # Tiny vocab: keep batches small so summed duplicate updates stay
        # in the stable SGD regime.
        trainer = SkipGramTrainer(
            SkipGramConfig(
                dimension=8, negatives=3, epochs=4, learning_rate=0.05,
                batch_size=16,
            )
        )
        w_in, w_out = trainer.fit(centers, contexts, 4, rng=rng)

        def cosine(a, b):
            return float(
                w_in[a]
                @ w_out[b]
            )
        assert cosine(0, 1) > cosine(0, 3)
        assert cosine(2, 3) > cosine(2, 1)

    def test_output_shapes(self, rng):
        trainer = SkipGramTrainer(SkipGramConfig(dimension=5, epochs=1))
        w_in, w_out = trainer.fit(
            np.array([0, 1]), np.array([1, 0]), 3, rng=rng
        )
        assert w_in.shape == (3, 5)
        assert w_out.shape == (3, 5)

    def test_empty_pairs(self, rng):
        trainer = SkipGramTrainer(SkipGramConfig(dimension=4))
        w_in, w_out = trainer.fit(
            np.empty(0, dtype=int), np.empty(0, dtype=int), 5, rng=rng
        )
        assert w_in.shape == (5, 4)
        np.testing.assert_array_equal(w_out, 0.0)

    def test_mismatched_pairs_rejected(self, rng):
        trainer = SkipGramTrainer()
        with pytest.raises(ValueError):
            trainer.fit(np.zeros(3, dtype=int), np.zeros(2, dtype=int), 4, rng=rng)

    def test_reproducible(self):
        trainer = SkipGramTrainer(SkipGramConfig(dimension=4, epochs=1))
        centers = np.array([0, 1, 2] * 10)
        contexts = np.array([1, 2, 0] * 10)
        a, _ = trainer.fit(centers, contexts, 3, rng=np.random.default_rng(1))
        b, _ = trainer.fit(centers, contexts, 3, rng=np.random.default_rng(1))
        np.testing.assert_array_equal(a, b)
